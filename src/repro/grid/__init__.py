"""Process grids and 2D block-cyclic distribution arithmetic.

:mod:`repro.grid.block_cyclic` is pure index math (ScaLAPACK conventions,
source process 0); :mod:`repro.grid.process_grid` binds a world communicator
to a ``P x Q`` grid with row and column sub-communicators, matching Fig. 1
of the paper.
"""

from .block_cyclic import (
    global_to_local,
    local_to_global,
    local_indices,
    num_local_before,
    numroc,
    owning_process,
)
from .process_grid import ProcessGrid

__all__ = [
    "numroc",
    "num_local_before",
    "owning_process",
    "global_to_local",
    "local_to_global",
    "local_indices",
    "ProcessGrid",
]
