"""The ``P x Q`` process grid (paper Fig. 1).

Binds a communicator of exactly ``p * q`` ranks to grid coordinates and
builds the two sub-communicators HPL's phases run over:

* ``col_comm`` -- the *process column* (``p`` ranks sharing a grid column):
  panel factorization pivot collectives and row-swap scatterv/allgatherv.
* ``row_comm`` -- the *process row* (``q`` ranks sharing a grid row): the
  panel broadcast (LBCAST).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..simmpi import Communicator
from .block_cyclic import numroc, owning_process


class ProcessGrid:
    """A rank's view of the 2D process grid.

    Args:
        comm: Communicator containing exactly ``p * q`` ranks.
        p: Grid rows.
        q: Grid columns.
        row_major: When true (HPL.dat ``PMAP=Row-major``, the default), rank
            ``r`` sits at ``(r // q, r % q)``; otherwise column-major
            ``(r % p, r // p)``.
    """

    def __init__(self, comm: Communicator, p: int, q: int, row_major: bool = True):
        if p < 1 or q < 1:
            raise ConfigError(f"grid must be at least 1x1, got {p}x{q}")
        if comm.size != p * q:
            raise ConfigError(
                f"grid {p}x{q} needs {p * q} ranks, communicator has {comm.size}"
            )
        self.comm = comm
        self.p = p
        self.q = q
        self.row_major = row_major
        if row_major:
            self.myrow, self.mycol = divmod(comm.rank, q)
        else:
            self.mycol, self.myrow = divmod(comm.rank, p)
        # Ranks within each sub-communicator are ordered by the other
        # coordinate, so col_comm rank == grid row and row_comm rank == grid
        # column.  Both splits are collective over `comm`.
        row_comm = comm.split(color=self.myrow, key=self.mycol)
        col_comm = comm.split(color=self.mycol, key=self.myrow)
        assert row_comm is not None and col_comm is not None
        self.row_comm = row_comm
        self.col_comm = col_comm
        assert self.row_comm.size == q and self.row_comm.rank == self.mycol
        assert self.col_comm.size == p and self.col_comm.rank == self.myrow

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of a rank of the grid communicator."""
        if not 0 <= rank < self.p * self.q:
            raise ConfigError(f"rank {rank} outside grid of {self.p * self.q}")
        if self.row_major:
            return divmod(rank, self.q)
        col, row = divmod(rank, self.p)
        return row, col

    def rank_of(self, row: int, col: int) -> int:
        """Grid-communicator rank at coordinates ``(row, col)``."""
        if not (0 <= row < self.p and 0 <= col < self.q):
            raise ConfigError(f"({row}, {col}) outside {self.p}x{self.q} grid")
        return row * self.q + col if self.row_major else col * self.p + row

    # ------------------------------------------------------------------
    # Distribution helpers bound to this rank
    # ------------------------------------------------------------------
    def local_rows(self, n: int, nb: int) -> int:
        """Local row count of an ``n``-row matrix on this rank."""
        return numroc(n, nb, self.myrow, self.p)

    def local_cols(self, n: int, nb: int) -> int:
        """Local column count of an ``n``-column matrix on this rank."""
        return numroc(n, nb, self.mycol, self.q)

    def row_owner(self, g: int, nb: int) -> int:
        """Grid row owning global row ``g``."""
        return owning_process(g, nb, self.p)

    def col_owner(self, g: int, nb: int) -> int:
        """Grid column owning global column ``g``."""
        return owning_process(g, nb, self.q)

    def owns_col_block(self, j: int, nb: int) -> bool:
        """Does this rank's grid column own global column ``j``?"""
        return self.col_owner(j, nb) == self.mycol

    def __repr__(self) -> str:
        return (
            f"ProcessGrid({self.p}x{self.q}, me=({self.myrow},{self.mycol}), "
            f"{'row' if self.row_major else 'col'}-major)"
        )
