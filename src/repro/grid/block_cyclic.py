"""2D block-cyclic index arithmetic (one dimension at a time).

A global index range ``[0, n)`` is blocked into ``nb``-sized blocks and the
blocks are dealt round-robin to ``nprocs`` processes, block ``b`` going to
process ``b % nprocs`` (ScaLAPACK conventions with source process 0, which
is what HPL uses).  These helpers answer the ownership and translation
questions the solver and the performance ledger both need, and are the
authoritative definition both must agree on.

All functions are pure and are exercised by hypothesis property tests
(partition, round-trip, and monotonicity laws).
"""

from __future__ import annotations

import numpy as np


def _check(nb: int, nprocs: int) -> None:
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")


def owning_process(g: int, nb: int, nprocs: int) -> int:
    """Process owning global index ``g``."""
    _check(nb, nprocs)
    if g < 0:
        raise ValueError(f"global index must be >= 0, got {g}")
    return (g // nb) % nprocs


def num_local_before(g: int, nb: int, iproc: int, nprocs: int) -> int:
    """How many global indices in ``[0, g)`` process ``iproc`` owns.

    This is the local offset at which the trailing range ``[g, n)`` begins
    in ``iproc``'s local storage.
    """
    _check(nb, nprocs)
    if g < 0:
        raise ValueError(f"global index must be >= 0, got {g}")
    if not 0 <= iproc < nprocs:
        raise ValueError(f"iproc {iproc} outside [0, {nprocs})")
    block, offset = divmod(g, nb)
    # Full blocks owned by iproc among blocks [0, block):
    if block > iproc:
        nfull = (block - iproc - 1) // nprocs + 1
    else:
        nfull = 0
    count = nfull * nb
    if block % nprocs == iproc:
        count += offset
    return count


def numroc(n: int, nb: int, iproc: int, nprocs: int) -> int:
    """NUMber of Rows Or Columns: local extent of ``[0, n)`` on ``iproc``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return num_local_before(n, nb, iproc, nprocs)


def num_local_before_array(g, nb: int, iproc, nprocs: int) -> np.ndarray:
    """Vectorized :func:`num_local_before` over ``g`` and/or ``iproc``.

    Pure int64 arithmetic, so the result is exactly the scalar function
    applied elementwise (the fast ledger computes every iteration's local
    extents in one shot through this).
    """
    _check(nb, nprocs)
    g = np.asarray(g, dtype=np.int64)
    iproc = np.asarray(iproc, dtype=np.int64)
    if np.any(g < 0):
        raise ValueError("global indices must be >= 0")
    if np.any(iproc < 0) or np.any(iproc >= nprocs):
        raise ValueError(f"iproc outside [0, {nprocs})")
    block, offset = np.divmod(g, nb)
    nfull = np.where(block > iproc, (block - iproc - 1) // nprocs + 1, 0)
    return nfull * nb + np.where(block % nprocs == iproc, offset, 0)


def numroc_array(n, nb: int, iproc, nprocs: int) -> np.ndarray:
    """Vectorized :func:`numroc` over ``n`` and/or ``iproc``."""
    if np.any(np.asarray(n) < 0):
        raise ValueError("n must be >= 0")
    return num_local_before_array(n, nb, iproc, nprocs)


def global_to_local(g: int, nb: int, nprocs: int) -> tuple[int, int]:
    """Map a global index to ``(owning process, local index)``."""
    _check(nb, nprocs)
    if g < 0:
        raise ValueError(f"global index must be >= 0, got {g}")
    block, offset = divmod(g, nb)
    iproc = block % nprocs
    local_block = block // nprocs
    return iproc, local_block * nb + offset


def local_to_global(loc: int, nb: int, iproc: int, nprocs: int) -> int:
    """Map a local index on ``iproc`` back to its global index."""
    _check(nb, nprocs)
    if loc < 0:
        raise ValueError(f"local index must be >= 0, got {loc}")
    if not 0 <= iproc < nprocs:
        raise ValueError(f"iproc {iproc} outside [0, {nprocs})")
    local_block, offset = divmod(loc, nb)
    return (local_block * nprocs + iproc) * nb + offset


def local_indices(n: int, nb: int, iproc: int, nprocs: int) -> np.ndarray:
    """Global indices owned by ``iproc`` within ``[0, n)``, ascending.

    Vectorized; the result has length ``numroc(n, nb, iproc, nprocs)``.
    """
    _check(nb, nprocs)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    count = numroc(n, nb, iproc, nprocs)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    loc = np.arange(count, dtype=np.int64)
    local_block, offset = np.divmod(loc, nb)
    return (local_block * nprocs + iproc) * nb + offset
