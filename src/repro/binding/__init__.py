"""CPU core time-sharing (paper Section III.B).

:mod:`repro.binding.topology` models the Crusher node's CCD/GCD affinity;
:mod:`repro.binding.coremap` implements the binding computation rocHPL's
launch wrapper performs: root cores per rank, the shared pool partitioned
by process row, and the resulting per-rank OpenMP placements.
"""

from .coremap import Binding, compute_bindings, validate_bindings
from .topology import NodeTopology, crusher_topology

__all__ = [
    "Binding",
    "compute_bindings",
    "validate_bindings",
    "NodeTopology",
    "crusher_topology",
]
