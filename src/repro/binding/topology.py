"""Node topology: which CPU cores sit nearest which GPU device.

On Crusher/Frontier each of the 8 GCDs has a *closest* CCD (they share an
Infinity Fabric connection), and rocHPL binds each rank's root core inside
that CCD.  The mapping is not the identity: per the Crusher quick-start
guide's node diagram, GCD ``i`` pairs with the CCDs in the order below.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: CCD nearest each GCD on a Crusher/Frontier node (GCD index -> CCD index).
CRUSHER_GCD_TO_CCD = (6, 7, 2, 3, 0, 1, 4, 5)


@dataclass(frozen=True)
class NodeTopology:
    """Core/CCD/GPU-device affinity of one node.

    Attributes:
        cores: Total CPU cores.
        ccds: Number of CCDs (cores are split evenly).
        gcd_to_ccd: For each GPU device, its nearest CCD.
    """

    cores: int = 64
    ccds: int = 8
    gcd_to_ccd: tuple[int, ...] = CRUSHER_GCD_TO_CCD

    def __post_init__(self) -> None:
        if self.cores % self.ccds:
            raise ConfigError(f"{self.cores} cores do not tile {self.ccds} CCDs")
        if any(not 0 <= c < self.ccds for c in self.gcd_to_ccd):
            raise ConfigError("gcd_to_ccd references a CCD outside the socket")

    @property
    def gpus(self) -> int:
        return len(self.gcd_to_ccd)

    @property
    def cores_per_ccd(self) -> int:
        return self.cores // self.ccds

    def ccd_cores(self, ccd: int) -> list[int]:
        """Core ids of one CCD."""
        if not 0 <= ccd < self.ccds:
            raise ConfigError(f"CCD {ccd} outside [0, {self.ccds})")
        w = self.cores_per_ccd
        return list(range(ccd * w, (ccd + 1) * w))

    def nearest_cores(self, gcd: int) -> list[int]:
        """Core ids of the CCD nearest GPU device ``gcd``."""
        if not 0 <= gcd < self.gpus:
            raise ConfigError(f"GCD {gcd} outside [0, {self.gpus})")
        return self.ccd_cores(self.gcd_to_ccd[gcd])


def crusher_topology() -> NodeTopology:
    """The Crusher/Frontier node topology."""
    return NodeTopology()
