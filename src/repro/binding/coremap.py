"""The Section III.B core time-sharing computation.

For a node-local ``pl x ql`` process grid on a ``C``-core socket, rocHPL's
launch wrapper computes OpenMP placements so every FACT phase can use
``pl + Cbar`` cores (``Cbar = C - pl*ql``):

1. every rank is bound to a distinct *root core* inside the CCD nearest
   the GCD it manages;
2. the remaining ``Cbar`` cores form a pool, partitioned into ``pl``
   non-overlapping groups of ``Cbar / pl``, one per local process **row**
   (rows, because at any iteration exactly one process *column* factors,
   so ranks that could factor simultaneously sit in different rows and
   must not share cores -- while ranks in the same row never factor at
   the same time and may);
3. each rank binds ``T = 1 + Cbar/pl`` threads: its root plus its row's
   pool group.

In the ``pl x 1`` extreme this degenerates to a plain partition of the
socket; in the ``1 x ql`` extreme sharing is maximal, which is why the
paper's multi-node runs pick ``1 x 8`` node-local grids.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .topology import NodeTopology, crusher_topology


@dataclass(frozen=True)
class Binding:
    """One rank's core placement.

    Attributes:
        rank: Node-local rank (also the GCD it manages).
        row: Local grid row.
        col: Local grid column.
        root_core: The rank's dedicated core.
        pool_cores: Its process row's shared pool group.
    """

    rank: int
    row: int
    col: int
    root_core: int
    pool_cores: tuple[int, ...]

    @property
    def nthreads(self) -> int:
        """OpenMP threads this rank spawns in FACT (``1 + Cbar/pl``)."""
        return 1 + len(self.pool_cores)

    @property
    def cores(self) -> tuple[int, ...]:
        return (self.root_core, *self.pool_cores)


def compute_bindings(
    pl: int, ql: int, topo: NodeTopology | None = None, row_major: bool = True
) -> list[Binding]:
    """Compute the time-sharing bindings for a ``pl x ql`` node-local grid.

    Rank ``r`` manages GCD ``r`` and sits at local coordinates
    ``(r // ql, r % ql)`` (row-major) or ``(r % pl, r // pl)``.
    """
    if topo is None:
        topo = crusher_topology()
    nranks = pl * ql
    if nranks != topo.gpus:
        raise ConfigError(
            f"node-local grid {pl}x{ql} must match {topo.gpus} GPU devices"
        )
    if nranks > topo.cores:
        raise ConfigError(f"{nranks} ranks exceed {topo.cores} cores")

    coords = []
    for rank in range(nranks):
        if row_major:
            coords.append(divmod(rank, ql))
        else:
            col, row = divmod(rank, pl)
            coords.append((row, col))

    # 1. root core: first core of the CCD nearest the managed GCD.
    roots: list[int] = []
    taken: set[int] = set()
    for rank in range(nranks):
        for core in topo.nearest_cores(rank):
            if core not in taken:
                roots.append(core)
                taken.add(core)
                break
        else:
            raise ConfigError(f"no free core in the CCD nearest GCD {rank}")

    # 2. pool partition by process row, locality-first: a row's group is
    # seeded with the non-root cores of its own ranks' CCDs.
    cbar = topo.cores - nranks
    group_size = cbar // pl
    pool = [c for c in range(topo.cores) if c not in taken]
    groups: list[list[int]] = [[] for _ in range(pl)]
    remaining = set(pool)
    for row in range(pl):
        near = []
        for rank in range(nranks):
            if coords[rank][0] == row:
                near.extend(c for c in topo.nearest_cores(rank) if c in remaining)
        for core in near[:group_size]:
            groups[row].append(core)
            remaining.discard(core)
    leftovers = sorted(remaining)
    for row in range(pl):
        while len(groups[row]) < group_size and leftovers:
            groups[row].append(leftovers.pop(0))
        groups[row].sort()

    return [
        Binding(
            rank=rank,
            row=coords[rank][0],
            col=coords[rank][1],
            root_core=roots[rank],
            pool_cores=tuple(groups[coords[rank][0]]),
        )
        for rank in range(nranks)
    ]


def omp_places(binding: Binding) -> str:
    """The ``OMP_PLACES`` string for one rank's binding.

    This is what rocHPL's launch wrapper exports per rank: the root core
    first (thread 0 stays on it), then the row's pool cores.
    """
    return ",".join(f"{{{core}}}" for core in binding.cores)


def launch_script(bindings: list[Binding], command: str = "./rochpl") -> str:
    """A runnable wrapper-script body exporting the per-rank bindings.

    Mirrors the generic wrapper the paper describes ("we have implemented
    a generic wrapper script to compute these OpenMP bindings"): a case
    over the node-local rank setting ``OMP_NUM_THREADS``, ``OMP_PLACES``
    and ``OMP_PROC_BIND`` before exec'ing the benchmark.
    """
    lines = [
        "#!/bin/bash",
        "# generated by pyroHPL: Section III.B core time-sharing bindings",
        'rank="${SLURM_LOCALID:-${OMPI_COMM_WORLD_LOCAL_RANK:-0}}"',
        'case "$rank" in',
    ]
    for b in bindings:
        lines.append(f"  {b.rank})")
        lines.append(f"    export OMP_NUM_THREADS={b.nthreads}")
        lines.append(f'    export OMP_PLACES="{omp_places(b)}"')
        lines.append('    export OMP_PROC_BIND="true"')
        lines.append("    ;;")
    lines.append("esac")
    lines.append(f'exec {command} "$@"')
    return "\n".join(lines) + "\n"


def validate_bindings(bindings: list[Binding], topo: NodeTopology | None = None) -> None:
    """Check the Section III.B invariants; raises ``ConfigError`` on violation.

    * root cores are distinct and disjoint from every pool group;
    * pool groups of different rows are disjoint (simultaneously-factoring
      ranks never share a core);
    * ranks in the same row share the same group (that is the time
      sharing);
    * every FACT phase can use ``pl + Cbar`` cores in total.
    """
    if topo is None:
        topo = crusher_topology()
    roots = [b.root_core for b in bindings]
    if len(set(roots)) != len(roots):
        raise ConfigError("root cores are not distinct")
    by_row: dict[int, tuple[int, ...]] = {}
    for b in bindings:
        if b.root_core in b.pool_cores:
            raise ConfigError(f"rank {b.rank}: root core inside its pool group")
        if b.row in by_row:
            if by_row[b.row] != b.pool_cores:
                raise ConfigError(f"row {b.row}: ranks disagree on the pool group")
        else:
            by_row[b.row] = b.pool_cores
    rows = sorted(by_row)
    for i in rows:
        if set(by_row[i]) & set(roots):
            raise ConfigError(f"row {i}: pool group overlaps a root core")
        for j in rows:
            if i < j and set(by_row[i]) & set(by_row[j]):
                raise ConfigError(f"rows {i} and {j} share pool cores")
    pl = len(rows)
    nranks = len(bindings)
    cbar = topo.cores - nranks
    fact_cores = pl * (1 + cbar // pl)
    if fact_cores > topo.cores:
        raise ConfigError("FACT would use more cores than the socket has")
