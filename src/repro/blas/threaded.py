"""Tiled thread pool for the multi-threaded panel factorization (paper III.A).

The panel being LU-factored is tall and skinny (``M x NB``).  Following the
paper (and the Parallel Cache Assignment technique it cites), the panel's
rows are blocked into ``NB``-row tiles and tile ``t`` is owned by thread
``t % T`` -- round-robin, so the first tile (which holds the upper triangle
and all pivot-source rows) always belongs to the main thread.  Each thread
touches only its own tiles, keeping them hot in the cache private to the
core the thread is bound to.

:class:`TileWorkerPool` provides the OpenMP-style execution model the
factorization needs: a persistent parallel region (`run`) with reusable
barriers, thread-local tile assignment, a broadcast cell and an all-thread
reduction (used for the pivot max-loc search).  The main thread (tid 0) is
the only one that talks to MPI, exactly as in rocHPL.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, TypeVar

T = TypeVar("T")


def tile_slices(nrows: int, tile: int, tid: int, nthreads: int) -> list[slice]:
    """Row slices of the tiles owned by thread ``tid``.

    Rows ``[0, nrows)`` are blocked into ``tile``-row tiles; tile ``t`` is
    owned by thread ``t % nthreads``.  The final tile may be short.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    if not 0 <= tid < nthreads:
        raise ValueError(f"tid {tid} outside [0, {nthreads})")
    out = []
    ntiles = (nrows + tile - 1) // tile
    for t in range(tid, ntiles, nthreads):
        out.append(slice(t * tile, min((t + 1) * tile, nrows)))
    return out


class ParallelAbort(Exception):
    """Internal: a sibling thread failed; unwind quietly."""


class ParallelContext:
    """Per-thread handle inside a :meth:`TileWorkerPool.run` region."""

    def __init__(self, pool: "TileWorkerPool", tid: int):
        self.pool = pool
        self.tid = tid
        self.nthreads = pool.nthreads

    def barrier(self) -> None:
        """Synchronize all threads of the region."""
        if self.nthreads == 1:
            return
        try:
            self.pool._barrier.wait()
        except threading.BrokenBarrierError:
            raise ParallelAbort() from None

    def bcast(self, obj: T | None = None, root: int = 0) -> T:
        """Broadcast ``obj`` from thread ``root`` to every thread."""
        if self.nthreads == 1:
            return obj  # type: ignore[return-value]
        if self.tid == root:
            self.pool._cell = obj
        self.barrier()
        result = self.pool._cell
        self.barrier()  # nobody reuses the cell until all have read it
        return result  # type: ignore[return-value]

    def reduce(self, value: T, combine: Callable[[T, T], T]) -> T:
        """All-thread reduction; every thread returns the combined value.

        The combination order is deterministic (tid order), so
        non-commutative tie-breaking combiners -- like the pivot max-loc --
        give every thread the same answer.
        """
        if self.nthreads == 1:
            return value
        self.pool._slots[self.tid] = value
        self.barrier()
        result = functools.reduce(combine, self.pool._slots)
        self.barrier()
        return result

    def tile_slices(self, nrows: int, tile: int) -> list[slice]:
        """This thread's round-robin tile slices over ``nrows`` rows."""
        return tile_slices(nrows, tile, self.tid, self.nthreads)


class TileWorkerPool:
    """A persistent pool executing OpenMP-style parallel regions.

    The pool owns ``nthreads - 1`` worker threads; the caller of
    :meth:`run` participates as thread 0 (the "main thread" in the paper's
    terminology).  Workers persist across regions, like an OpenMP runtime's
    thread team, so per-panel invocation cost is two barrier crossings.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, nthreads: int):
        if nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        self.nthreads = nthreads
        self._barrier = threading.Barrier(nthreads) if nthreads > 1 else None
        self._slots: list[Any] = [None] * nthreads
        self._cell: Any = None
        self._fn: Callable[[ParallelContext], Any] | None = None
        self._gen = 0
        self._lock = threading.Lock()
        self._go = threading.Condition(self._lock)
        self._done = threading.Barrier(nthreads) if nthreads > 1 else None
        self._stop = False
        self._errors: dict[int, BaseException] = {}
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._started or self.nthreads == 1:
            return
        self._started = True
        for tid in range(1, self.nthreads):
            thread = threading.Thread(
                target=self._worker_loop, args=(tid,), name=f"pfact-worker-{tid}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self, tid: int) -> None:
        last_gen = 0
        while True:
            with self._go:
                while self._gen == last_gen and not self._stop:
                    self._go.wait()
                if self._stop:
                    return
                last_gen = self._gen
                fn = self._fn
            try:
                assert fn is not None
                fn(ParallelContext(self, tid))
            except ParallelAbort:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported to run()
                self._errors[tid] = exc
                if self._barrier is not None:
                    self._barrier.abort()
            finally:
                try:
                    assert self._done is not None
                    self._done.wait()
                except threading.BrokenBarrierError:
                    pass

    # ------------------------------------------------------------------
    def run(self, fn: Callable[[ParallelContext], T]) -> T:
        """Execute ``fn(ctx)`` on all ``nthreads`` threads; return tid 0's result.

        Any exception raised by any thread is re-raised here (the first
        one in tid order), after all threads have left the region.
        """
        if self.nthreads == 1:
            return fn(ParallelContext(self, 0))
        self._ensure_workers()
        self._errors.clear()
        assert self._barrier is not None and self._done is not None
        self._barrier.reset()
        self._done.reset()
        with self._go:
            self._fn = fn
            self._gen += 1
            self._go.notify_all()
        result: T | None = None
        try:
            result = fn(ParallelContext(self, 0))
        except ParallelAbort:
            pass
        except BaseException as exc:  # noqa: BLE001
            self._errors[0] = exc
            self._barrier.abort()
        finally:
            try:
                self._done.wait()
            except threading.BrokenBarrierError:
                pass
        if self._errors:
            raise self._errors[min(self._errors)]
        return result  # type: ignore[return-value]

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent)."""
        if not self._started:
            return
        with self._go:
            self._stop = True
            self._go.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "TileWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
