"""Flop-accounted dense kernels.

All kernels operate *in place* on the output argument wherever the math
allows, following the "in-place operations, views not copies" idiom: the HPL
update phase works on column slices of the local Fortran-ordered matrix, and
these slices must be mutated, not replaced.

Flop accounting is per-thread (:class:`_FlopCounter`): every rank of an SPMD
job and every panel-factorization worker accumulates into its own counter,
and the HPL driver samples/resets it around each phase.  The counts use the
standard LAPACK conventions (a multiply-add is 2 flops).
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.linalg


class _FlopCounter(threading.local):
    """Per-thread flop accumulator."""

    def __init__(self) -> None:
        self.count = 0.0

    def add(self, flops: float) -> None:
        self.count += flops

    def take(self) -> float:
        """Return the current count and reset it."""
        value = self.count
        self.count = 0.0
        return value


#: Global per-thread flop counter used by every kernel in this module.
FLOPS = _FlopCounter()


# ----------------------------------------------------------------------
# Flop-count formulas (shared with the analytic performance ledger)
# ----------------------------------------------------------------------
def flops_dgemm(m: int, n: int, k: int) -> float:
    """Flops of ``C (m x n) += A (m x k) @ B (k x n)``."""
    return 2.0 * m * n * k


def flops_trsm(m: int, n: int) -> float:
    """Flops of a triangular solve with an ``m x m`` triangle and ``n`` RHS."""
    return float(m) * m * n


def flops_getrf(m: int, n: int) -> float:
    """Flops of LU-factoring an ``m x n`` (``m >= n``) matrix.

    The classic ``mn^2 - n^3/3`` leading-order count (for ``m = n`` this is
    the familiar ``2/3 n^3``).
    """
    return float(m) * n * n - (float(n) ** 3) / 3.0


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def dgemm_update(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, alpha: float = -1.0, beta: float = 1.0
) -> None:
    """``C <- beta*C + alpha * A @ B`` in place.

    This is HPL's workhorse: the trailing update calls it with
    ``alpha=-1, beta=1`` (a rank-``NB`` subtraction).
    """
    m, n = c.shape
    k = a.shape[1]
    if a.shape[0] != m or b.shape != (k, n):
        raise ValueError(f"dgemm shape mismatch: C{c.shape} A{a.shape} B{b.shape}")
    if m == 0 or n == 0:
        return
    FLOPS.add(flops_dgemm(m, n, k))
    if k == 0:
        if beta != 1.0:
            c *= beta
        return
    prod = a @ b
    if beta == 1.0 and alpha == -1.0:
        c -= prod
    elif beta == 1.0 and alpha == 1.0:
        c += prod
    else:
        c *= beta
        c += alpha * prod


def dger_update(a: np.ndarray, x: np.ndarray, y: np.ndarray, alpha: float = -1.0) -> None:
    """Rank-1 update ``A <- A + alpha * x y^T`` in place."""
    m, n = a.shape
    if x.shape != (m,) or y.shape != (n,):
        raise ValueError(f"dger shape mismatch: A{a.shape} x{x.shape} y{y.shape}")
    if m == 0 or n == 0:
        return
    FLOPS.add(2.0 * m * n)
    a += alpha * x[:, None] * y[None, :]


def dscal_inplace(x: np.ndarray, alpha: float) -> None:
    """``x <- alpha * x`` in place."""
    FLOPS.add(float(x.size))
    x *= alpha


def idamax(x: np.ndarray) -> int:
    """Index of the entry of largest magnitude (first on ties).

    Raises ``ValueError`` on empty input, like BLAS's undefined behaviour
    made loud.
    """
    if x.size == 0:
        raise ValueError("idamax of empty vector")
    return int(np.argmax(np.abs(x)))


def unit_lower_solve_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``B <- L^{-1} B`` in place, ``L`` unit lower triangular.

    Only the strictly-lower part of ``l`` is referenced, so the caller may
    pass the packed panel triangle (whose upper part holds U).
    """
    m = l.shape[0]
    if l.shape != (m, m) or b.shape[0] != m:
        raise ValueError(f"trsm shape mismatch: L{l.shape} B{b.shape}")
    if m == 0 or b.size == 0:
        return
    FLOPS.add(flops_trsm(m, b.shape[1] if b.ndim == 2 else 1))
    out = scipy.linalg.solve_triangular(
        l, b, lower=True, unit_diagonal=True, check_finite=False
    )
    b[...] = out


def upper_solve(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``U^{-1} b`` for an upper-triangular ``U`` (not in place)."""
    m = u.shape[0]
    if u.shape != (m, m) or b.shape[0] != m:
        raise ValueError(f"trsv shape mismatch: U{u.shape} b{b.shape}")
    if m == 0:
        return b.copy()
    FLOPS.add(flops_trsm(m, b.shape[1] if b.ndim == 2 else 1))
    return scipy.linalg.solve_triangular(u, b, lower=False, check_finite=False)
