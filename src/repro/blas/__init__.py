"""BLAS kernel layer: flop-accounted kernels and the tiled thread pool.

:mod:`repro.blas.kernels` provides the small set of dense kernels HPL needs
(DGEMM, DTRSM, DGER, DSCAL, IDAMAX, unit-lower solves) with per-thread flop
accounting so the numeric engine can report exactly how much arithmetic each
phase performed -- the measured counterpart of the analytic ledger in
:mod:`repro.perf.ledger`.

:mod:`repro.blas.threaded` implements the paper's Section III.A threading
strategy: a persistent pool whose workers own round-robined ``NB``-row tiles
of the tall-skinny panel, with barrier-synchronized steps and a max-loc
reduction for the pivot search.
"""

from .kernels import (
    FLOPS,
    dgemm_update,
    dger_update,
    dscal_inplace,
    flops_dgemm,
    flops_getrf,
    flops_trsm,
    idamax,
    unit_lower_solve_inplace,
    upper_solve,
)
from .threaded import TileWorkerPool, tile_slices

__all__ = [
    "FLOPS",
    "dgemm_update",
    "dger_update",
    "dscal_inplace",
    "idamax",
    "unit_lower_solve_inplace",
    "upper_solve",
    "flops_dgemm",
    "flops_trsm",
    "flops_getrf",
    "TileWorkerPool",
    "tile_slices",
]
