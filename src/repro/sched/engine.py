"""In-order-resource task DAG simulator.

The execution model matches the hardware the paper runs on:

* every :class:`Task` optionally occupies one named *resource* (the GPU
  compute stream, a DMA engine, the NIC, the CPU);
* each resource executes its tasks **in submission order** (a HIP stream,
  a link, and an MPI progression engine are all FIFO);
* a task starts when its dependencies have finished *and* the resource has
  retired everything submitted before it;
* tasks with ``resource=None`` are pure dependency nodes (zero-cost
  markers are the usual use).

Because real issue code enqueues work after its inputs exist, we require
the submission order to be a valid topological order (dependencies must be
submitted first); :func:`simulate` then resolves every start/end time in a
single pass, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScheduleError


@dataclass(eq=False)
class Task:
    """One unit of work in the timeline DAG.

    Attributes:
        name: Human-readable label.
        duration: Seconds of busy time on ``resource``.
        resource: The in-order resource this task occupies, or ``None``.
        deps: Tasks that must finish first (must be submitted earlier).
        phase: Accounting label (``FACT`` / ``MPI`` / ``TRANSFER`` /
            ``GPU`` ...), used for the Fig. 7 breakdown.
        tag: Free-form grouping key (we use the iteration index).
    """

    name: str
    duration: float
    resource: str | None = None
    deps: list["Task"] = field(default_factory=list)
    phase: str = ""
    tag: int = 0
    start: float = -1.0
    end: float = -1.0

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, dur={self.duration:.3e}, res={self.resource}, "
            f"[{self.start:.3e}, {self.end:.3e}])"
        )


@dataclass
class TimelineResult:
    """Outcome of a simulation: scheduled tasks plus aggregates."""

    tasks: list[Task]
    makespan: float
    resource_busy: dict[str, float]
    _by_tag: dict[int, list[Task]] | None = None

    def tasks_tagged(self, tag: int) -> list[Task]:
        if self._by_tag is None:
            index: dict[int, list[Task]] = {}
            for t in self.tasks:
                index.setdefault(t.tag, []).append(t)
            self._by_tag = index
        return self._by_tag.get(tag, [])

    def span_of_tag(self, tag: int) -> tuple[float, float]:
        """(earliest start, latest end) over tasks with this tag."""
        sel = self.tasks_tagged(tag)
        if not sel:
            raise ScheduleError(f"no tasks tagged {tag}")
        return min(t.start for t in sel), max(t.end for t in sel)

    def busy_in_tag(self, tag: int, resource: str) -> float:
        return sum(
            t.duration for t in self.tasks_tagged(tag) if t.resource == resource
        )

    def phase_in_tag(self, tag: int, phase: str) -> float:
        return sum(t.duration for t in self.tasks_tagged(tag) if t.phase == phase)


def simulate(tasks: list[Task]) -> TimelineResult:
    """Resolve start/end times for ``tasks`` (submission order = list order).

    Raises:
        ScheduleError: if a dependency appears after its dependent, a
            duration is negative, or a task depends on an unknown task.
    """
    # Snapshot the submission list: the returned TimelineResult must not
    # alias a caller-owned list, or later caller-side appends would
    # silently skew span_of_tag/busy_in_tag through the lazy _by_tag
    # index and leave makespan out of sync with .tasks.
    tasks = list(tasks)
    index: dict[int, int] = {id(t): i for i, t in enumerate(tasks)}
    if len(index) != len(tasks):
        raise ScheduleError("duplicate task object in submission list")
    resource_free: dict[str, float] = {}
    for i, task in enumerate(tasks):
        if task.duration < 0:
            raise ScheduleError(f"negative duration on {task.name!r}")
        ready = 0.0
        for dep in task.deps:
            j = index.get(id(dep))
            if j is None:
                raise ScheduleError(
                    f"{task.name!r} depends on unsubmitted task {dep.name!r}"
                )
            if j >= i:
                raise ScheduleError(
                    f"{task.name!r} depends on later-submitted {dep.name!r}; "
                    "submission order must be topological"
                )
            ready = max(ready, dep.end)
        if task.resource is not None:
            ready = max(ready, resource_free.get(task.resource, 0.0))
        task.start = ready
        task.end = ready + task.duration
        if task.resource is not None:
            resource_free[task.resource] = task.end
    makespan = max((t.end for t in tasks), default=0.0)
    busy: dict[str, float] = {}
    for task in tasks:
        if task.resource is not None:
            busy[task.resource] = busy.get(task.resource, 0.0) + task.duration
    return TimelineResult(tasks=tasks, makespan=makespan, resource_busy=busy)
