"""Iteration DAG builders for the three schedules (paper Figs. 3 and 6).

Each iteration's phase durations arrive as an :class:`IterCosts`; the
builders chain iterations into one task list for the in-order-resource
engine, reproducing rocHPL's issue order.  The convention matches the
numeric driver: *the row swap for panel ``k`` executes at the start of
iteration ``k``* (between the previous iteration's update and this one's).

* ``classic`` -- everything sequential; the GPU idles through FACT,
  LBCAST and the RS communication.
* ``lookahead`` (Fig. 3) -- the look-ahead columns are swapped and updated
  first and shipped to the CPU; FACT and LBCAST overlap the rest of the
  update; the full row-swap communication stays exposed.
* ``split`` (Fig. 6) -- RS is split: the left section's communication
  hides under the right section's update and vice versa, the right
  section's swap having been communicated one iteration early.  When the
  left section empties, iterations fall back to the look-ahead shape.

Resources: ``gpu`` (compute stream: DTRSM/DGEMM and the row gather/scatter
kernels), ``hd`` (host-device DMA), ``cpu`` (panel factorization), ``mpi``
(the network progression engine at this rank).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScheduleError
from .engine import Task

GPU, HD, CPU, MPI = "gpu", "hd", "cpu", "mpi"


@dataclass
class SectionCosts:
    """Durations for one column section's RS + update pipeline."""

    gather: float = 0.0  # GPU kernel packing outgoing rows
    comm: float = 0.0  # MPI: allgatherv + scatterv
    scatter: float = 0.0  # GPU kernel writing received rows
    dtrsm: float = 0.0  # GPU
    dgemm: float = 0.0  # GPU

    @property
    def empty(self) -> bool:
        return self.comm == 0.0 and self.dgemm == 0.0 and self.gather == 0.0


@dataclass
class IterCosts:
    """All phase durations of one iteration at the focal rank.

    ``mode`` selects the DAG shape; the split schedule degrades to
    ``lookahead`` once the left section is exhausted (the ledger then
    emits the remainder in ``la`` + ``left`` and an empty ``right``).
    ``fact``/``lbcast``/``d2h``/``h2d`` describe panel ``k+1``'s
    factorization, which iteration ``k`` overlaps.
    """

    k: int
    mode: str  # "classic" | "lookahead" | "split"
    fact: float = 0.0
    lbcast: float = 0.0
    d2h: float = 0.0
    h2d: float = 0.0
    la: SectionCosts = field(default_factory=SectionCosts)
    left: SectionCosts = field(default_factory=SectionCosts)
    right: SectionCosts = field(default_factory=SectionCosts)


class _Builder:
    """Accumulates the chained task list across iterations."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self.panel_ready: Task | None = None  # LBCAST end of the live panel
        self.pending_rs2: Task | None = None  # split: RS2 comm for next panel
        self.prev_update: Task | None = None  # classic: last trailing DGEMM

    def add(
        self,
        name: str,
        dur: float,
        res: str | None,
        deps: list[Task | None],
        phase: str,
        tag: int,
    ) -> Task:
        task = Task(
            name=name,
            duration=max(0.0, dur),
            resource=res,
            deps=[d for d in deps if d is not None],
            phase=phase,
            tag=tag,
        )
        self.tasks.append(task)
        return task

    def _fact_chain(self, c: IterCosts, dep: Task | None, tag: int) -> Task:
        """d2h -> FACT -> h2d -> LBCAST; returns the lbcast task."""
        d2h = self.add(f"d2h.{tag}", c.d2h, HD, [dep], "TRANSFER", tag)
        fact = self.add(f"fact.{tag}", c.fact, CPU, [d2h], "FACT", tag)
        h2d = self.add(f"h2d.{tag}", c.h2d, HD, [fact], "TRANSFER", tag)
        return self.add(f"lbcast.{tag}", c.lbcast, MPI, [h2d], "MPI", tag)

    # ------------------------------------------------------------------
    def preamble(self, costs: IterCosts) -> None:
        """FACT + LBCAST of panel 0 before the first iteration."""
        self.panel_ready = self._fact_chain(costs, None, costs.k)

    def classic(self, c: IterCosts) -> None:
        k = c.k
        lb = self._fact_chain(c, self.prev_update, k)
        sec = c.left
        g = self.add(f"rs.gather.{k}", sec.gather, GPU, [lb], "GPU", k)
        cm = self.add(f"rs.comm.{k}", sec.comm, MPI, [g], "MPI", k)
        s = self.add(f"rs.scatter.{k}", sec.scatter, GPU, [cm], "GPU", k)
        t = self.add(f"dtrsm.{k}", sec.dtrsm, GPU, [s], "GPU", k)
        self.prev_update = self.add(f"dgemm.{k}", sec.dgemm, GPU, [t], "GPU", k)

    def lookahead(self, c: IterCosts) -> None:
        """Fig. 3: panel k live; RS for panel k exposed at iteration start."""
        k = c.k
        panel = self.panel_ready
        g = self.add(
            f"rs.gather.{k}", c.la.gather + c.left.gather, GPU, [panel], "GPU", k
        )
        cm = self.add(f"rs.comm.{k}", c.la.comm + c.left.comm, MPI, [g], "MPI", k)
        s = self.add(
            f"rs.scatter.{k}", c.la.scatter + c.left.scatter, GPU, [cm], "GPU", k
        )
        # look-ahead columns: update, ship to host, FACT k+1, LBCAST
        t_la = self.add(f"dtrsm.la.{k}", c.la.dtrsm, GPU, [s, panel], "GPU", k)
        u_la = self.add(f"dgemm.la.{k}", c.la.dgemm, GPU, [t_la], "GPU", k)
        lb = self._fact_chain(c, u_la, k)
        # rest of the trailing update hides FACT/LBCAST when large enough
        t_r = self.add(f"dtrsm.rest.{k}", c.left.dtrsm, GPU, [panel], "GPU", k)
        u_r = self.add(f"dgemm.rest.{k}", c.left.dgemm, GPU, [t_r], "GPU", k)
        self.panel_ready = lb
        self.prev_update = u_r

    def split(self, c: IterCosts) -> None:
        """Fig. 6: panel k live; right section comm done (pending scatter)."""
        k = c.k
        panel = self.panel_ready
        if self.pending_rs2 is None:
            # First split iteration: communicate the right section inline.
            g0 = self.add(f"rs2.gather0.{k}", c.right.gather, GPU, [panel], "GPU", k)
            self.pending_rs2 = self.add(
                f"rs2.comm0.{k}", c.right.comm, MPI, [g0], "MPI", k
            )
        # gather la + left rows; scatter the right section back
        g_lal = self.add(
            f"rs.gather.lal.{k}", c.la.gather + c.left.gather, GPU, [panel], "GPU", k
        )
        sc_r = self.add(
            f"rs2.scatter.{k}", c.right.scatter, GPU, [self.pending_rs2], "GPU", k
        )
        c_la = self.add(f"rs.comm.la.{k}", c.la.comm, MPI, [g_lal], "MPI", k)
        sc_la = self.add(f"rs.scatter.la.{k}", c.la.scatter, GPU, [c_la], "GPU", k)
        # look-ahead update -> host -> FACT -> LBCAST (panel k+1)
        t_la = self.add(f"dtrsm.la.{k}", c.la.dtrsm, GPU, [sc_la, panel], "GPU", k)
        u_la = self.add(f"dgemm.la.{k}", c.la.dgemm, GPU, [t_la], "GPU", k)
        lb = self._fact_chain(c, u_la, k)
        # RS1 communication hides under UPDATE2
        c_l = self.add(f"rs1.comm.{k}", c.left.comm, MPI, [g_lal], "MPI", k)
        t2 = self.add(f"dtrsm.right.{k}", c.right.dtrsm, GPU, [sc_r, panel], "GPU", k)
        u2 = self.add(f"dgemm.right.{k}", c.right.dgemm, GPU, [t2], "GPU", k)
        # gather + communicate the right section for panel k+1
        g_r = self.add(f"rs2.gather.{k}", c.right.gather, GPU, [lb, u2], "GPU", k)
        c_r = self.add(f"rs2.comm.{k}", c.right.comm, MPI, [g_r], "MPI", k)
        # UPDATE1 hides RS2's communication
        sc_l = self.add(f"rs1.scatter.{k}", c.left.scatter, GPU, [c_l], "GPU", k)
        t1 = self.add(f"dtrsm.left.{k}", c.left.dtrsm, GPU, [sc_l, panel], "GPU", k)
        self.prev_update = self.add(f"dgemm.left.{k}", c.left.dgemm, GPU, [t1], "GPU", k)
        self.panel_ready = lb
        self.pending_rs2 = c_r

    def split_to_lookahead(self, c: IterCosts) -> None:
        """First fallback iteration: the pending RS2 covered the remainder."""
        k = c.k
        panel = self.panel_ready
        sc = self.add(
            f"rs2.scatter.{k}",
            c.la.scatter + c.left.scatter,
            GPU,
            [self.pending_rs2],
            "GPU",
            k,
        )
        self.pending_rs2 = None
        t_la = self.add(f"dtrsm.la.{k}", c.la.dtrsm, GPU, [sc, panel], "GPU", k)
        u_la = self.add(f"dgemm.la.{k}", c.la.dgemm, GPU, [t_la], "GPU", k)
        lb = self._fact_chain(c, u_la, k)
        t_r = self.add(f"dtrsm.rest.{k}", c.left.dtrsm, GPU, [panel], "GPU", k)
        u_r = self.add(f"dgemm.rest.{k}", c.left.dgemm, GPU, [t_r], "GPU", k)
        self.panel_ready = lb
        self.prev_update = u_r


def build_run(costs: list[IterCosts]) -> list[Task]:
    """Chain all iterations of a run into one submittable task list.

    The first entry must be the preamble (``k == -1`` by convention) when
    the schedule is look-ahead or split; classic runs need no preamble.
    """
    builder = _Builder()
    was_split = False
    for c in costs:
        if c.k < 0:
            builder.preamble(c)
            continue
        if c.mode == "classic":
            builder.classic(c)
        elif c.mode == "lookahead":
            if was_split and builder.pending_rs2 is not None:
                builder.split_to_lookahead(c)
            else:
                if builder.panel_ready is None:
                    raise ScheduleError("lookahead schedule needs a preamble")
                builder.lookahead(c)
            was_split = False
        elif c.mode == "split":
            if builder.panel_ready is None:
                raise ScheduleError("split schedule needs a preamble")
            builder.split(c)
            was_split = True
        else:
            raise ScheduleError(f"unknown iteration mode {c.mode!r}")
    return builder.tasks
