"""Chrome-trace export of simulated timelines.

``to_chrome_trace`` converts a :class:`~repro.sched.engine.TimelineResult`
into the Trace Event JSON format, so a simulated benchmark run opens
directly in ``chrome://tracing`` / Perfetto with one row per modeled
resource (GPU stream, host-device DMA, CPU, NIC) -- the interactive
version of the paper's Fig. 3/6 diagrams.
"""

from __future__ import annotations

import json

from .engine import TimelineResult

#: Stable row order in the trace viewer.
_RESOURCE_ROWS = {"gpu": 0, "hd": 1, "cpu": 2, "mpi": 3}

#: Colors by accounting phase (Chrome trace color names).
_PHASE_COLORS = {
    "GPU": "thread_state_running",
    "FACT": "thread_state_iowait",
    "MPI": "rail_load",
    "TRANSFER": "rail_animation",
}


def to_chrome_trace(result: TimelineResult, time_unit: float = 1e6) -> dict:
    """Build a Trace Event Format document (``traceEvents`` + metadata).

    Args:
        result: A simulated timeline.
        time_unit: Multiplier from model seconds to trace microseconds
            (the default treats model seconds as real seconds).
    """
    events = []
    for resource, row in sorted(_RESOURCE_ROWS.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": row,
                "args": {"name": resource},
            }
        )
    for task in result.tasks:
        if task.resource is None or task.duration <= 0:
            continue
        row = _RESOURCE_ROWS.get(task.resource)
        if row is None:
            row = len(_RESOURCE_ROWS) + hash(task.resource) % 16
        event = {
            "name": task.name,
            "cat": task.phase or "other",
            "ph": "X",
            "pid": 1,
            "tid": row,
            "ts": task.start * time_unit,
            "dur": task.duration * time_unit,
            "args": {"iteration": task.tag, "phase": task.phase},
        }
        color = _PHASE_COLORS.get(task.phase)
        if color:
            event["cname"] = color
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"makespan_s": result.makespan},
    }


def write_chrome_trace(result: TimelineResult, path: str) -> None:
    """Serialize :func:`to_chrome_trace` to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(result), fh)
