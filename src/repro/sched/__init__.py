"""Discrete-event timeline simulation of HPL iterations.

:mod:`repro.sched.engine` executes a task DAG against *in-order resources*
-- the execution model of the paper's hardware, where the GPU compute
stream, each host-device DMA engine, the NIC progression, and the CPU each
process their submitted work in order, subject to cross-resource
dependencies.  :mod:`repro.sched.timeline` builds the iteration DAGs of the
paper's Figure 3 (look-ahead) and Figure 6 (split update), chained across
iterations exactly as rocHPL issues them.
"""

from .engine import Task, TimelineResult, simulate
from .fastpath import CostArrays, FastTimeline, evaluate
from .timeline import IterCosts, SectionCosts, build_run
from .trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "Task",
    "TimelineResult",
    "simulate",
    "CostArrays",
    "FastTimeline",
    "evaluate",
    "IterCosts",
    "SectionCosts",
    "build_run",
    "to_chrome_trace",
    "write_chrome_trace",
]
