"""Closed-form timeline evaluation of the fixed iteration DAG shapes.

:mod:`repro.sched.timeline` emits one of four task sub-graphs per
iteration (classic / lookahead / split / split-to-lookahead fallback) and
the in-order-resource engine resolves them task by task.  Because the
shapes are fixed, every start/end time the engine would compute is a
closed-form max-plus recurrence over a handful of scalars carried across
iterations -- the four resource frees (gpu / hd / cpu / mpi), the live
panel's LBCAST end, the pending right-section communication, and the
previous trailing update.  :func:`evaluate` walks those recurrences
directly over cost arrays, allocating no :class:`~repro.sched.engine.Task`
objects, and reproduces the engine's timings **bit for bit**: every
``max``/``+`` is performed on the same float values in the same order the
engine would, including the per-task ``max(0.0, duration)`` clamp the
builder applies.

What the fast path does *not* produce: the per-task trace (there are no
tasks) and per-message simmpi events.  Use the full engine
(``fidelity="full"``) when those are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from .timeline import IterCosts

#: Iteration-mode codes used by :class:`CostArrays.mode`.
MODE_CLASSIC, MODE_LOOKAHEAD, MODE_SPLIT = 0, 1, 2
_MODE_NAMES = {MODE_CLASSIC: "classic", MODE_LOOKAHEAD: "lookahead", MODE_SPLIT: "split"}


@dataclass
class CostArrays:
    """All per-iteration phase costs of a run as aligned numpy arrays.

    One row per iteration ``k`` (the preamble, when the schedule needs
    one, rides along as a scalar :class:`IterCosts`).  This is the batch
    twin of ``list[IterCosts]``: same values, produced in one shot by
    :func:`repro.perf.fastledger.run_cost_arrays`.  Treat instances as
    immutable -- they may be shared through a memoization cache.
    """

    k: np.ndarray  # int64 iteration indices [0, nblocks)
    mode: np.ndarray  # int8 MODE_* codes
    fact: np.ndarray
    lbcast: np.ndarray
    d2h: np.ndarray
    h2d: np.ndarray
    la_gather: np.ndarray
    la_comm: np.ndarray
    la_scatter: np.ndarray
    la_dtrsm: np.ndarray
    la_dgemm: np.ndarray
    left_gather: np.ndarray
    left_comm: np.ndarray
    left_scatter: np.ndarray
    left_dtrsm: np.ndarray
    left_dgemm: np.ndarray
    right_gather: np.ndarray
    right_comm: np.ndarray
    right_scatter: np.ndarray
    right_dtrsm: np.ndarray
    right_dgemm: np.ndarray
    preamble: IterCosts | None = None

    @property
    def nblocks(self) -> int:
        return len(self.k)

    def to_iter_costs(self) -> list[IterCosts]:
        """Expand back into the scalar ledger's ``list[IterCosts]`` form."""
        from .timeline import SectionCosts

        out: list[IterCosts] = []
        if self.preamble is not None:
            out.append(self.preamble)
        for i in range(self.nblocks):
            out.append(
                IterCosts(
                    k=int(self.k[i]),
                    mode=_MODE_NAMES[int(self.mode[i])],
                    fact=float(self.fact[i]),
                    lbcast=float(self.lbcast[i]),
                    d2h=float(self.d2h[i]),
                    h2d=float(self.h2d[i]),
                    la=SectionCosts(
                        gather=float(self.la_gather[i]),
                        comm=float(self.la_comm[i]),
                        scatter=float(self.la_scatter[i]),
                        dtrsm=float(self.la_dtrsm[i]),
                        dgemm=float(self.la_dgemm[i]),
                    ),
                    left=SectionCosts(
                        gather=float(self.left_gather[i]),
                        comm=float(self.left_comm[i]),
                        scatter=float(self.left_scatter[i]),
                        dtrsm=float(self.left_dtrsm[i]),
                        dgemm=float(self.left_dgemm[i]),
                    ),
                    right=SectionCosts(
                        gather=float(self.right_gather[i]),
                        comm=float(self.right_comm[i]),
                        scatter=float(self.right_scatter[i]),
                        dtrsm=float(self.right_dtrsm[i]),
                        dgemm=float(self.right_dgemm[i]),
                    ),
                )
            )
        return out


@dataclass
class FastTimeline:
    """Per-iteration timings of a run, computed without task objects.

    Field-for-field these equal what the object engine reports through
    ``span_of_tag`` / ``busy_in_tag`` / ``phase_in_tag``.
    """

    makespan: float
    preamble_end: float  # end of the k=-1 preamble chain (0.0 without one)
    end: np.ndarray  # latest task end per iteration (monotone)
    gpu_busy: np.ndarray  # busy_in_tag(k, "gpu")
    fact_busy: np.ndarray  # phase_in_tag(k, "FACT")
    mpi_busy: np.ndarray  # phase_in_tag(k, "MPI")
    transfer_busy: np.ndarray  # phase_in_tag(k, "TRANSFER")


# Resolved DAG shapes (the builder's was_split / pending_rs2 state machine).
_CLASSIC, _LOOKAHEAD, _SPLIT, _S2L = 0, 1, 2, 3


def _resolve_shapes(
    modes: list[int], has_preamble: bool
) -> tuple[list[int], list[bool]]:
    """Replay ``build_run``'s mode dispatch without building tasks.

    Returns the concrete shape per iteration plus a flag marking split
    iterations that must communicate their right section inline (no
    pending RS2 from a previous split iteration).
    """
    shapes: list[int] = []
    first_split: list[bool] = []
    was_split = False
    pending = False
    panel_live = has_preamble
    for m in modes:
        first = False
        if m == MODE_CLASSIC:
            shape = _CLASSIC
        elif m == MODE_LOOKAHEAD:
            if was_split and pending:
                shape = _S2L
                pending = False
            else:
                if not panel_live:
                    raise ScheduleError("lookahead schedule needs a preamble")
                shape = _LOOKAHEAD
            was_split = False
            panel_live = True
        elif m == MODE_SPLIT:
            if not panel_live:
                raise ScheduleError("split schedule needs a preamble")
            shape = _SPLIT
            first = not pending
            pending = True
            was_split = True
            panel_live = True
        else:
            raise ScheduleError(f"unknown iteration mode {m!r}")
        shapes.append(shape)
        first_split.append(first)
    return shapes, first_split


def evaluate(ca: CostArrays) -> FastTimeline:
    """Resolve the run's timeline with max-plus recurrences over arrays.

    Bit-identical to ``simulate(build_run(ca.to_iter_costs()))`` in every
    reported quantity; see the module docstring for the argument.
    """
    nblocks = ca.nblocks
    shapes, first_split = _resolve_shapes(ca.mode.tolist(), ca.preamble is not None)

    # Task durations exactly as the builder creates them: merged RS tasks
    # sum the la + left components first, and every duration is clamped
    # at zero (Task construction applies max(0.0, dur)).
    z = 0.0
    d2h_a = np.maximum(ca.d2h, z)
    fact_a = np.maximum(ca.fact, z)
    h2d_a = np.maximum(ca.h2d, z)
    lb_a = np.maximum(ca.lbcast, z)
    la_c = np.maximum(ca.la_comm, z)
    la_sc = np.maximum(ca.la_scatter, z)
    la_t = np.maximum(ca.la_dtrsm, z)
    la_u = np.maximum(ca.la_dgemm, z)
    left_g = np.maximum(ca.left_gather, z)
    left_c = np.maximum(ca.left_comm, z)
    left_sc = np.maximum(ca.left_scatter, z)
    left_t = np.maximum(ca.left_dtrsm, z)
    left_u = np.maximum(ca.left_dgemm, z)
    right_g = np.maximum(ca.right_gather, z)
    right_c = np.maximum(ca.right_comm, z)
    right_sc = np.maximum(ca.right_scatter, z)
    right_t = np.maximum(ca.right_dtrsm, z)
    right_u = np.maximum(ca.right_dgemm, z)
    rs_g = np.maximum(ca.la_gather + ca.left_gather, z)
    rs_c = np.maximum(ca.la_comm + ca.left_comm, z)
    rs_sc = np.maximum(ca.la_scatter + ca.left_scatter, z)

    # ------------------------------------------------------------------
    # Per-iteration busy/phase sums: the engine adds task durations in
    # submission order, so each shape gets its literal left-to-right sum.
    # ------------------------------------------------------------------
    shape_a = np.asarray(shapes, dtype=np.int8)
    first_a = np.asarray(first_split, dtype=bool)
    is_classic = shape_a == _CLASSIC
    is_la = shape_a == _LOOKAHEAD
    is_split = shape_a == _SPLIT
    is_split_first = is_split & first_a
    is_split_rest = is_split & ~first_a
    is_s2l = shape_a == _S2L

    transfer_busy = d2h_a + h2d_a
    fact_busy = fact_a
    gpu_busy = np.select(
        [is_classic, is_la, is_split_rest, is_split_first, is_s2l],
        [
            left_g + left_sc + left_t + left_u,
            rs_g + rs_sc + la_t + la_u + left_t + left_u,
            rs_g + right_sc + la_sc + la_t + la_u + right_t + right_u
            + right_g + left_sc + left_t + left_u,
            right_g + rs_g + right_sc + la_sc + la_t + la_u + right_t
            + right_u + right_g + left_sc + left_t + left_u,
            rs_sc + la_t + la_u + left_t + left_u,
        ],
    )
    mpi_busy = np.select(
        [is_classic, is_la, is_split_rest, is_split_first, is_s2l],
        [
            lb_a + left_c,
            rs_c + lb_a,
            la_c + lb_a + left_c + right_c,
            right_c + la_c + lb_a + left_c + right_c,
            lb_a,
        ],
    )

    # ------------------------------------------------------------------
    # The timeline recurrence.  State carried across iterations: resource
    # frees G/H/C/M (gpu, hd, cpu, mpi), the live panel's LBCAST end P,
    # the pending RS2 communication R, and the last trailing update U.
    # Python lists beat numpy scalar indexing by ~5x in this loop.
    # ------------------------------------------------------------------
    d2h_l = d2h_a.tolist()
    fact_l = fact_a.tolist()
    h2d_l = h2d_a.tolist()
    lb_l = lb_a.tolist()
    la_c_l = la_c.tolist()
    la_sc_l = la_sc.tolist()
    la_t_l = la_t.tolist()
    la_u_l = la_u.tolist()
    left_g_l = left_g.tolist()
    left_c_l = left_c.tolist()
    left_sc_l = left_sc.tolist()
    left_t_l = left_t.tolist()
    left_u_l = left_u.tolist()
    right_g_l = right_g.tolist()
    right_c_l = right_c.tolist()
    right_sc_l = right_sc.tolist()
    right_t_l = right_t.tolist()
    right_u_l = right_u.tolist()
    rs_g_l = rs_g.tolist()
    rs_c_l = rs_c.tolist()
    rs_sc_l = rs_sc.tolist()

    G = H = C = M = 0.0
    P = R = U = None
    preamble_end = 0.0
    if ca.preamble is not None:
        c = ca.preamble
        e1 = max(0.0, H) + max(0.0, c.d2h)
        H = e1
        e2 = max(e1, C) + max(0.0, c.fact)
        C = e2
        e3 = max(e2, H) + max(0.0, c.h2d)
        H = e3
        e4 = max(e3, M) + max(0.0, c.lbcast)
        M = e4
        P = e4
        preamble_end = e4

    ends: list[float] = []
    makespan = preamble_end
    for i in range(nblocks):
        shape = shapes[i]
        if shape == _CLASSIC:
            e1 = max(U if U is not None else 0.0, H) + d2h_l[i]
            H = e1
            e2 = max(e1, C) + fact_l[i]
            C = e2
            e3 = max(e2, H) + h2d_l[i]
            H = e3
            e4 = max(e3, M) + lb_l[i]
            M = e4
            e5 = max(e4, G) + left_g_l[i]
            e6 = max(e5, M) + left_c_l[i]
            M = e6
            e7 = max(e6, e5) + left_sc_l[i]
            e8 = e7 + left_t_l[i]
            e9 = e8 + left_u_l[i]
            G = e9
            U = e9
            end = e9
        elif shape == _LOOKAHEAD:
            a1 = max(P, G) + rs_g_l[i]
            a2 = max(a1, M) + rs_c_l[i]
            M = a2
            a3 = max(a2, a1) + rs_sc_l[i]
            a4 = max(max(a3, P), a3) + la_t_l[i]
            a5 = a4 + la_u_l[i]
            G = a5
            e1 = max(a5, H) + d2h_l[i]
            H = e1
            e2 = max(e1, C) + fact_l[i]
            C = e2
            e3 = max(e2, H) + h2d_l[i]
            H = e3
            e4 = max(e3, M) + lb_l[i]
            M = e4
            b1 = max(P, G) + left_t_l[i]
            b2 = b1 + left_u_l[i]
            G = b2
            P = e4
            U = b2
            end = e4 if e4 > b2 else b2
        elif shape == _SPLIT:
            if R is None:
                f1 = max(P, G) + right_g_l[i]
                G = f1
                R = max(f1, M) + right_c_l[i]
                M = R
            s1 = max(P, G) + rs_g_l[i]
            s2 = max(R, s1) + right_sc_l[i]
            m1 = max(s1, M) + la_c_l[i]
            s3 = max(m1, s2) + la_sc_l[i]
            s4 = max(max(s3, P), s3) + la_t_l[i]
            s5 = s4 + la_u_l[i]
            G = s5
            e1 = max(s5, H) + d2h_l[i]
            H = e1
            e2 = max(e1, C) + fact_l[i]
            C = e2
            e3 = max(e2, H) + h2d_l[i]
            H = e3
            e4 = max(e3, m1) + lb_l[i]
            m2 = max(s1, e4) + left_c_l[i]
            g1 = max(max(s2, P), G) + right_t_l[i]
            g2 = g1 + right_u_l[i]
            g3 = max(max(e4, g2), g2) + right_g_l[i]
            m3 = max(g3, m2) + right_c_l[i]
            M = m3
            g4 = max(m2, g3) + left_sc_l[i]
            g5 = max(max(g4, P), g4) + left_t_l[i]
            g6 = g5 + left_u_l[i]
            G = g6
            P = e4
            R = m3
            U = g6
            end = max(e4, m3)
            if g6 > end:
                end = g6
        else:  # _S2L
            a1 = max(R, G) + rs_sc_l[i]
            R = None
            a2 = max(max(a1, P), a1) + la_t_l[i]
            a3 = a2 + la_u_l[i]
            G = a3
            e1 = max(a3, H) + d2h_l[i]
            H = e1
            e2 = max(e1, C) + fact_l[i]
            C = e2
            e3 = max(e2, H) + h2d_l[i]
            H = e3
            e4 = max(e3, M) + lb_l[i]
            M = e4
            b1 = max(P, G) + left_t_l[i]
            b2 = b1 + left_u_l[i]
            G = b2
            P = e4
            U = b2
            end = e4 if e4 > b2 else b2
        ends.append(end)
        if end > makespan:
            makespan = end

    return FastTimeline(
        makespan=makespan,
        preamble_end=preamble_end,
        end=np.asarray(ends, dtype=np.float64),
        gpu_busy=np.asarray(gpu_busy, dtype=np.float64),
        fact_busy=np.asarray(fact_busy, dtype=np.float64),
        mpi_busy=np.asarray(mpi_busy, dtype=np.float64),
        transfer_busy=np.asarray(transfer_busy, dtype=np.float64),
    )
