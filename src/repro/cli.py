"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      -- execute the numeric HPL benchmark on the simulated-MPI
                  runtime and verify the solution.
* ``sim``      -- simulate a full-size run on the Crusher machine model
                  and print the score + Fig. 7 breakdown.
* ``scale``    -- the Fig. 8 weak-scaling sweep.
* ``fact``     -- the Fig. 5 FACT multi-threading sweep.
* ``bindings`` -- print the Section III.B core time-sharing map.
"""

from __future__ import annotations

import argparse
import sys

from .config import BcastVariant, HPLConfig, PFactVariant, Schedule


def _add_grid_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-N", type=int, default=256, help="global problem size")
    p.add_argument("-NB", type=int, default=32, help="blocking factor")
    p.add_argument("-P", type=int, default=2, help="grid rows")
    p.add_argument("-Q", type=int, default=2, help="grid columns")


def _cmd_run(args: argparse.Namespace) -> int:
    from .hpl.api import run_hpl
    from .perf.report import format_hpl_line

    cfg = HPLConfig(
        n=args.N,
        nb=args.NB,
        p=args.P,
        q=args.Q,
        schedule=Schedule(args.schedule),
        pfact=PFactVariant(args.pfact),
        bcast=BcastVariant(args.bcast),
        split_fraction=args.frac,
        fact_threads=args.threads,
        depth=0 if args.schedule == "classic" else 1,
    )
    result = run_hpl(cfg)
    print(
        format_hpl_line(
            cfg.n, cfg.nb, cfg.p, cfg.q, result.wall_seconds,
            cfg.total_flops / result.wall_seconds / 1e12,
        )
    )
    print(f"||Ax-b||_oo / (eps (||A||||x||+||b||) N) = {result.resid:.7f} "
          f"...... {'PASSED' if result.passed else 'FAILED'}")
    return 0 if result.passed else 1


def _cmd_sim(args: argparse.Namespace) -> int:
    from .machine.frontier import crusher_cluster
    from .perf.hplsim import simulate_run
    from .perf.ledger import PerfConfig
    from .perf.report import format_breakdown_table, format_run_report

    cfg = PerfConfig(
        n=args.N,
        nb=args.NB,
        p=args.P,
        q=args.Q,
        pl=args.pl or args.P,
        ql=args.ql or args.Q,
        schedule=Schedule(args.schedule),
        split_fraction=args.frac,
    )
    nodes = (cfg.p // cfg.pl) * (cfg.q // cfg.ql)
    report = simulate_run(cfg, crusher_cluster(nodes))
    print(format_run_report(report))
    if args.breakdown:
        print(format_breakdown_table(report))
    if args.chart:
        from .perf.ascii_chart import fig7_chart

        print(fig7_chart(report))
    if args.trace:
        from .perf.ledger import run_costs
        from .sched.engine import simulate as _simulate
        from .sched.timeline import build_run
        from .sched.trace import write_chrome_trace

        timeline = _simulate(build_run(run_costs(cfg, crusher_cluster(nodes))))
        write_chrome_trace(timeline, args.trace)
        print(f"chrome trace written to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    if args.energy:
        from .machine.frontier import crusher_node
        from .machine.power_model import energy_of_run

        energy = energy_of_run(report, crusher_node(), node_count=nodes)
        print(f"energy      : {energy.joules / 1e6:10.2f} MJ over {nodes} node(s)")
        print(f"mean power  : {energy.mean_node_w:10.0f} W/node "
              f"(peak {energy.peak_node_w:.0f} W)")
        print(f"efficiency  : {energy.gflops_per_w:10.1f} GFLOPS/W")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .perf.report import format_scaling_table
    from .perf.scaling import weak_scaling

    counts = [2**i for i in range(args.max_doublings + 1)]
    points = weak_scaling(counts, n_single=args.N, nb=args.NB)
    print(format_scaling_table(points))
    if args.chart:
        from .perf.ascii_chart import fig8_chart

        print(fig8_chart(points))
    return 0


def _cmd_fact(args: argparse.Namespace) -> int:
    from .perf.factsim import fact_sweep
    from .perf.report import format_fact_table

    curves = fact_sweep(nb=args.NB)
    print(format_fact_table(curves))
    if args.chart:
        from .perf.ascii_chart import fig5_chart

        print(fig5_chart(curves))
    return 0


def _cmd_dat(args: argparse.Namespace) -> int:
    """Run every configuration an HPL.dat file describes, HPL-style."""
    import pathlib

    from .hpl.api import run_hpl
    from .hpl.dat import encode_tv, parse_hpl_dat
    from .perf.report import (
        format_hpl_banner,
        format_hpl_footer,
        format_hpl_result_block,
    )

    dat = parse_hpl_dat(pathlib.Path(args.file).read_text())
    chunks = [format_hpl_banner()]
    nruns = nfailed = 0
    for cfg in dat.configs():
        result = run_hpl(cfg)
        nruns += 1
        nfailed += 0 if result.passed else 1
        tflops = cfg.total_flops / result.wall_seconds / 1e12
        chunks.append(
            format_hpl_result_block(
                encode_tv(cfg), cfg.n, cfg.nb, cfg.p, cfg.q,
                result.wall_seconds, tflops, result.resid, result.passed,
                threshold=dat.threshold,
            )
        )
    chunks.append(format_hpl_footer(nruns, nfailed))
    text = "\n".join(chunks)
    print(text)
    if args.output:
        out = args.output if args.output != "-" else dat.output_file
        pathlib.Path(out).write_text(text)
        print(f"results written to {out}")
    return 0 if nfailed == 0 else 1


def _cmd_bindings(args: argparse.Namespace) -> int:
    from .binding import compute_bindings, crusher_topology, validate_bindings

    topo = crusher_topology()
    bindings = compute_bindings(args.pl, args.ql, topo)
    validate_bindings(bindings, topo)
    print(f"node-local grid {args.pl}x{args.ql}: "
          f"T = {bindings[0].nthreads} threads per rank in FACT")
    for b in bindings:
        pool = ",".join(str(c) for c in b.pool_cores)
        print(f"rank {b.rank} (row {b.row}, col {b.col}): "
              f"root core {b.root_core}; pool [{pool}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="pyroHPL: rocHPL reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="numeric HPL run on simulated MPI")
    _add_grid_args(p_run)
    p_run.add_argument("--schedule", choices=[s.value for s in Schedule],
                       default="split")
    p_run.add_argument("--pfact", choices=[v.value for v in PFactVariant],
                       default="right")
    p_run.add_argument("--bcast", choices=[b.value for b in BcastVariant],
                       default="1ringM")
    p_run.add_argument("--frac", type=float, default=0.5,
                       help="split-update right-section fraction")
    p_run.add_argument("--threads", type=int, default=1,
                       help="FACT threads per rank")
    p_run.set_defaults(fn=_cmd_run)

    p_sim = sub.add_parser("sim", help="performance simulation (Fig. 7)")
    _add_grid_args(p_sim)
    p_sim.set_defaults(N=256000, NB=512, P=4, Q=2)
    p_sim.add_argument("--pl", type=int, default=0, help="node-local grid rows")
    p_sim.add_argument("--ql", type=int, default=0, help="node-local grid cols")
    p_sim.add_argument("--schedule", choices=[s.value for s in Schedule],
                       default="split")
    p_sim.add_argument("--frac", type=float, default=0.5)
    p_sim.add_argument("--breakdown", action="store_true",
                       help="print the per-iteration Fig. 7 table")
    p_sim.add_argument("--chart", action="store_true",
                       help="render Fig. 7 as an ASCII chart")
    p_sim.add_argument("--energy", action="store_true",
                       help="print the run's energy/power accounting")
    p_sim.add_argument("--trace", metavar="FILE", default="",
                       help="write the simulated timeline as a Chrome trace")
    p_sim.set_defaults(fn=_cmd_sim)

    p_scale = sub.add_parser("scale", help="weak scaling sweep (Fig. 8)")
    p_scale.add_argument("-N", type=int, default=256000,
                         help="single-node problem size")
    p_scale.add_argument("-NB", type=int, default=512)
    p_scale.add_argument("--max-doublings", type=int, default=7,
                         help="scale to 2^k nodes")
    p_scale.add_argument("--chart", action="store_true",
                         help="render Fig. 8 as an ASCII chart")
    p_scale.set_defaults(fn=_cmd_scale)

    p_fact = sub.add_parser("fact", help="FACT threading sweep (Fig. 5)")
    p_fact.add_argument("-NB", type=int, default=512)
    p_fact.add_argument("--chart", action="store_true",
                        help="render Fig. 5 as an ASCII chart")
    p_fact.set_defaults(fn=_cmd_fact)

    p_dat = sub.add_parser("dat", help="run every config in an HPL.dat file")
    p_dat.add_argument("file", help="path to an HPL.dat input file")
    p_dat.add_argument("-o", "--output", default="",
                       help="also write results to a file "
                            "('-' = the name from the .dat file)")
    p_dat.set_defaults(fn=_cmd_dat)

    p_bind = sub.add_parser("bindings", help="core time-sharing map (Sec. III.B)")
    p_bind.add_argument("--pl", type=int, default=4)
    p_bind.add_argument("--ql", type=int, default=2)
    p_bind.set_defaults(fn=_cmd_bindings)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
