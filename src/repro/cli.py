"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      -- execute the numeric HPL benchmark on the simulated-MPI
                  runtime and verify the solution.
* ``sim``      -- simulate a full-size run on the Crusher machine model
                  and print the score + Fig. 7 breakdown.
* ``scale``    -- the Fig. 8 weak-scaling sweep.
* ``fact``     -- the Fig. 5 FACT multi-threading sweep.
* ``bindings`` -- print the Section III.B core time-sharing map.

Batch service commands (see ``docs/service.md``):

* ``submit``   -- queue one run or a ``--sweep`` parameter grid.
* ``workers``  -- drain the queue with a multiprocess worker pool;
                  with ``--url`` the pool becomes a *remote fleet
                  member* leasing jobs from a coordinator over HTTP.
* ``serve``    -- run the JSON-over-HTTP front-end (plus an in-process
                  worker pool) so remote clients share one queue;
                  ``--shards N`` (or ``--workdir`` repeated) fans the
                  queue over several workdir shards.
* ``shards``   -- per-shard queue depth and lease stats.
* ``status``   -- job counts and per-job states (filter/paginate with
                  ``--state/--kind/--limit/--offset``).
* ``results``  -- print results of completed jobs.
* ``cancel``   -- cancel queued jobs (idempotent: already-terminal
                  targets are reported, not errors).
* ``campaign`` -- submit a staged JSON spec as a dependency DAG
                  (``campaign submit``) and track its per-stage
                  progress (``campaign status`` / ``campaign list``).

``submit``/``workers``/``status``/``results``/``cancel``/``campaign``
accept ``--url`` to operate against a remote ``repro serve`` instance
instead of a local workdir.
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import BcastVariant, HPLConfig, PFactVariant, Schedule
from .errors import ConfigError, ReproError, UnknownJobError


def _add_grid_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-N", type=int, default=256, help="global problem size")
    p.add_argument("-NB", type=int, default=32, help="blocking factor")
    p.add_argument("-P", type=int, default=2, help="grid rows")
    p.add_argument("-Q", type=int, default=2, help="grid columns")


def _cmd_run(args: argparse.Namespace) -> int:
    from .hpl.api import run_hpl
    from .perf.report import format_hpl_line

    cfg = HPLConfig(
        n=args.N,
        nb=args.NB,
        p=args.P,
        q=args.Q,
        schedule=Schedule(args.schedule),
        pfact=PFactVariant(args.pfact),
        bcast=BcastVariant(args.bcast),
        split_fraction=args.frac,
        fact_threads=args.threads,
        depth=0 if args.schedule == "classic" else 1,
    )
    result = run_hpl(cfg)
    print(
        format_hpl_line(
            cfg.n, cfg.nb, cfg.p, cfg.q, result.wall_seconds,
            cfg.total_flops / result.wall_seconds / 1e12,
        )
    )
    print(f"||Ax-b||_oo / (eps (||A||||x||+||b||) N) = {result.resid:.7f} "
          f"...... {'PASSED' if result.passed else 'FAILED'}")
    return 0 if result.passed else 1


def _cmd_sim(args: argparse.Namespace) -> int:
    from .machine.frontier import crusher_cluster
    from .perf.hplsim import simulate_run
    from .perf.ledger import PerfConfig
    from .perf.report import format_breakdown_table, format_run_report

    cfg = PerfConfig(
        n=args.N,
        nb=args.NB,
        p=args.P,
        q=args.Q,
        pl=args.pl or args.P,
        ql=args.ql or args.Q,
        schedule=Schedule(args.schedule),
        split_fraction=args.frac,
        fidelity=args.fidelity,
    )
    nodes = (cfg.p // cfg.pl) * (cfg.q // cfg.ql)
    report = simulate_run(cfg, crusher_cluster(nodes))
    print(format_run_report(report))
    if args.breakdown:
        print(format_breakdown_table(report))
    if args.chart:
        from .perf.ascii_chart import fig7_chart

        print(fig7_chart(report))
    if args.trace:
        from .perf.ledger import run_costs
        from .sched.engine import simulate as _simulate
        from .sched.timeline import build_run
        from .sched.trace import write_chrome_trace

        timeline = _simulate(build_run(run_costs(cfg, crusher_cluster(nodes))))
        write_chrome_trace(timeline, args.trace)
        print(f"chrome trace written to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    if args.energy:
        from .machine.frontier import crusher_node
        from .machine.power_model import energy_of_run

        energy = energy_of_run(report, crusher_node(), node_count=nodes)
        print(f"energy      : {energy.joules / 1e6:10.2f} MJ over {nodes} node(s)")
        print(f"mean power  : {energy.mean_node_w:10.0f} W/node "
              f"(peak {energy.peak_node_w:.0f} W)")
        print(f"efficiency  : {energy.gflops_per_w:10.1f} GFLOPS/W")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .perf.report import format_scaling_table
    from .perf.scaling import weak_scaling

    counts = [2**i for i in range(args.max_doublings + 1)]
    points = weak_scaling(
        counts, n_single=args.N, nb=args.NB, fidelity=args.fidelity
    )
    print(format_scaling_table(points))
    if args.chart:
        from .perf.ascii_chart import fig8_chart

        print(fig8_chart(points))
    return 0


def _cmd_fact(args: argparse.Namespace) -> int:
    from .perf.factsim import fact_sweep
    from .perf.report import format_fact_table

    curves = fact_sweep(nb=args.NB)
    print(format_fact_table(curves))
    if args.chart:
        from .perf.ascii_chart import fig5_chart

        print(fig5_chart(curves))
    return 0


def _cmd_dat(args: argparse.Namespace) -> int:
    """Run every configuration an HPL.dat file describes, HPL-style."""
    import pathlib

    from .hpl.api import run_hpl
    from .hpl.dat import encode_tv, parse_hpl_dat
    from .perf.report import (
        format_hpl_banner,
        format_hpl_footer,
        format_hpl_result_block,
    )

    dat = parse_hpl_dat(pathlib.Path(args.file).read_text())
    chunks = [format_hpl_banner()]
    nruns = nfailed = 0
    for cfg in dat.configs():
        result = run_hpl(cfg)
        nruns += 1
        nfailed += 0 if result.passed else 1
        tflops = cfg.total_flops / result.wall_seconds / 1e12
        chunks.append(
            format_hpl_result_block(
                encode_tv(cfg), cfg.n, cfg.nb, cfg.p, cfg.q,
                result.wall_seconds, tflops, result.resid, result.passed,
                threshold=dat.threshold,
            )
        )
    chunks.append(format_hpl_footer(nruns, nfailed))
    text = "\n".join(chunks)
    print(text)
    if args.output:
        out = args.output if args.output != "-" else dat.output_file
        pathlib.Path(out).write_text(text)
        print(f"results written to {out}")
    return 0 if nfailed == 0 else 1


def _cmd_bindings(args: argparse.Namespace) -> int:
    from .binding import compute_bindings, crusher_topology, validate_bindings

    topo = crusher_topology()
    bindings = compute_bindings(args.pl, args.ql, topo)
    validate_bindings(bindings, topo)
    print(f"node-local grid {args.pl}x{args.ql}: "
          f"T = {bindings[0].nthreads} threads per rank in FACT")
    for b in bindings:
        pool = ",".join(str(c) for c in b.pool_cores)
        print(f"rank {b.rank} (row {b.row}, col {b.col}): "
              f"root core {b.root_core}; pool [{pool}]")
    return 0


def _values(text: str, cast) -> list:
    """Parse a comma-separated CLI value list (``"64,128"`` -> [64, 128])."""
    try:
        return [cast(part) for part in str(text).split(",") if part != ""]
    except ValueError as exc:
        raise ConfigError(f"bad value list {text!r}: {exc}") from None


def _axis(args_value, cast, sweep: bool, name: str):
    """One sweep axis: a scalar normally, a list under ``--sweep``."""
    values = _values(args_value, cast)
    if not values:
        raise ConfigError(f"no value given for {name}")
    if len(values) > 1 and not sweep:
        raise ConfigError(
            f"{name} lists multiple values ({args_value});"
            " pass --sweep to expand a parameter grid"
        )
    return values if sweep else values[0]


def _fidelity_axis(args_value, sweep: bool):
    """The --fidelity axis, validated eagerly (exit 2, not a worker FAIL)."""
    axis = _axis(args_value, str, sweep, "--fidelity")
    for value in axis if isinstance(axis, list) else [axis]:
        if value not in ("fast", "full"):
            raise ConfigError(
                f"fidelity must be 'fast' or 'full', got {value!r}"
            )
    return axis


def _submit_sweep(args: argparse.Namespace):
    """Build the :class:`~repro.service.Sweep` a ``submit`` call describes."""
    from .service import Sweep

    sweep = args.sweep
    if args.kind == "run":
        axes = {
            "n": _axis(args.N, int, sweep, "-N"),
            "nb": _axis(args.NB, int, sweep, "-NB"),
            "p": _axis(args.P, int, sweep, "-P"),
            "q": _axis(args.Q, int, sweep, "-Q"),
            "schedule": _axis(args.schedule, str, sweep, "--schedule"),
            "pfact": _axis(args.pfact, str, sweep, "--pfact"),
            "bcast": _axis(args.bcast, str, sweep, "--bcast"),
            "split_fraction": _axis(args.frac, float, sweep, "--frac"),
            "fact_threads": _axis(args.threads, int, sweep, "--threads"),
        }
        # Validate every grid point eagerly so a bad corner fails at
        # submit time (exit 2), not inside a worker.
        for payload in Sweep(kind="run", axes=axes).expand():
            depth0 = {"depth": 0} if payload["schedule"] == "classic" else {}
            HPLConfig.from_dict({**payload, **depth0})
        if not sweep:
            if axes["schedule"] == "classic":
                axes = {**axes, "depth": 0}
        else:
            classic_only = axes["schedule"] == ["classic"]
            if classic_only:
                axes = {**axes, "depth": 0}
            elif "classic" in axes["schedule"]:
                raise ConfigError(
                    "--sweep cannot mix 'classic' with look-ahead schedules"
                    " (depth differs); submit them as two sweeps"
                )
        return Sweep(kind="run", axes=axes)
    if args.kind == "sim":
        return Sweep(
            kind="sim",
            axes={
                "n": _axis(args.N, int, sweep, "-N"),
                "nb": _axis(args.NB, int, sweep, "-NB"),
                "p": _axis(args.P, int, sweep, "-P"),
                "q": _axis(args.Q, int, sweep, "-Q"),
                "pl": _axis(args.pl, int, sweep, "--pl"),
                "ql": _axis(args.ql, int, sweep, "--ql"),
                "schedule": _axis(args.schedule, str, sweep, "--schedule"),
                "split_fraction": _axis(args.frac, float, sweep, "--frac"),
                "fidelity": _fidelity_axis(args.fidelity, sweep),
            },
        )
    if args.kind == "scale":
        return Sweep(
            kind="scale",
            axes={"nnodes": _axis(args.nodes, int, sweep, "--nodes")},
            base={"n_single": int(args.N), "nb": int(args.NB),
                  "schedule": args.schedule,
                  "fidelity": _fidelity_axis(args.fidelity, sweep=False)},
        )
    if args.kind == "fact":
        return Sweep(kind="fact", axes={"nb": _axis(args.NB, int, sweep, "-NB")})
    raise ConfigError(f"unknown job kind {args.kind!r}")


def _remote_client(args: argparse.Namespace):
    """The :class:`ServiceClient` for ``--url``, or None for local mode."""
    if not getattr(args, "url", None):
        return None
    from .service.http.client import ServiceClient

    return ServiceClient(args.url)


def _cmd_submit(args: argparse.Namespace) -> int:
    sweep = _submit_sweep(args)
    client = _remote_client(args)
    if client is not None:
        receipt = client.submit_sweep(
            sweep, timeout=args.timeout, max_retries=args.retries,
            batch=getattr(args, "batch", False),
        )
    else:
        from .service import Service

        receipt = Service(args.workdir).submit_sweep(
            sweep, timeout=args.timeout, max_retries=args.retries
        )
    print(f"submitted {len(receipt.new)} new job(s), "
          f"{len(receipt.cached)} served from cache, "
          f"{len(receipt.deduped)} deduplicated against the queue")
    for jid in receipt.new:
        print(f"  queued  {jid}")
    for jid in receipt.cached:
        print(f"  cached  {jid}")
    for jid in receipt.deduped:
        print(f"  dup-of  {jid}")
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    from .service.workers import WorkerOptions

    options = WorkerOptions(
        n=args.n, drain=not args.no_drain, max_seconds=args.max_seconds,
        backoff_base=args.backoff, lease_ttl=args.ttl,
        inline_max=args.inline_max,
    )
    if getattr(args, "url", None):
        from .service.fleet import RemoteWorkerPool

        pool = RemoteWorkerPool(args.url, options=options,
                                worker=args.name or None)
        s = pool.run()
        print(f"fleet worker {pool.worker} finished: {s.claimed} claimed, "
              f"{s.completed} completed, {s.failed} failed, {s.lost} lost")
        c = s.counts
        if c:
            print(f"queue: {c.get('BLOCKED', 0)} blocked, "
                  f"{c['PENDING']} pending, {c['RUNNING']} running, "
                  f"{c['DONE']} done, {c['FAILED']} failed, "
                  f"{c['CANCELLED']} cancelled")
        return 0
    from .service import Service

    service = Service(args.workdir, backoff_base=args.backoff)
    summary = service.run_workers(options)
    c = summary.counts
    print(f"pool finished: {summary.completed} completed, "
          f"{summary.failed} failed, {summary.retried} retried")
    print(f"queue: {c.get('BLOCKED', 0)} blocked, "
          f"{c['PENDING']} pending, {c['RUNNING']} running, "
          f"{c['DONE']} done, {c['FAILED']} failed, "
          f"{c['CANCELLED']} cancelled")
    return 0


def _print_job_rows(jobs) -> None:
    """Render :class:`~repro.service.views.JobView` rows as a table."""
    print(f"{'id':<14}{'kind':<8}{'state':<11}{'tries':<7}note")
    for j in jobs:
        note = "cached" if j.cached else j.error[:60]
        print(f"{j.id:<14}{j.kind:<8}{j.state:<11}{j.attempts:<7}{note}")


def _print_event_row(view) -> None:
    """Render one :class:`~repro.service.views.EventView` as a line."""
    stamp = time.strftime("%H:%M:%S", time.localtime(view.t))
    note = view.data.get("worker") or view.data.get("error", "")
    print(f"{stamp}  {view.job_id:<14}{view.kind:<12}{view.state:<11}"
          f"{str(note)[:50]}", flush=True)


def _follow_remote(client, job_ids) -> int:
    """``status --follow`` against a server: stream watch() rows."""
    try:
        for view in client.watch(job_ids=job_ids or None):
            _print_event_row(view)
    except KeyboardInterrupt:
        return 0
    return 0


def _follow_local(service, job_ids) -> int:
    """``status --follow`` on a workdir: long-poll the local broker."""
    cursor = None
    try:
        pending = set(job_ids) if job_ids else None
        while True:
            views, cursor, _timed_out = service.events_page(
                cursor=cursor, timeout=15.0, job_ids=job_ids or None)
            for view in views:
                _print_event_row(view)
                if pending is not None and view.terminal:
                    pending.discard(view.job_id)
            if pending is not None and not pending:
                return 0
    except KeyboardInterrupt:
        return 0


def _cmd_status(args: argparse.Namespace) -> int:
    filters = dict(state=args.state or None, kind=args.kind or None,
                   limit=args.limit, offset=args.offset)
    client = _remote_client(args)
    if client is not None:
        if args.follow:
            return _follow_remote(client, args.ids)
        if args.ids:
            _print_job_rows([client.job(jid) for jid in args.ids])
            return 0
        page = client.status(**filters)
        where = f"{args.url} ({page.workdir})"
    else:
        from .service import Service

        service = Service(args.workdir)
        if args.follow:
            return _follow_local(service, args.ids)
        if args.ids:
            _print_job_rows([service.job_view(jid) for jid in args.ids])
            return 0
        page = service.status(**filters)
        where = f"workdir {page.workdir}"
    c = page.counts
    print(f"{where}: "
          + ", ".join(f"{c.get(s, 0)} {s.lower()}" for s in
                      ("BLOCKED", "PENDING", "RUNNING", "DONE", "FAILED",
                       "CANCELLED")))
    if page.jobs:
        _print_job_rows(page.jobs)
    if len(page.jobs) < page.total:
        print(f"(showing {len(page.jobs)} of {page.total} matching job(s); "
              f"offset {page.offset})")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    import json as _json

    client = _remote_client(args)
    service = None
    if client is not None:
        ids = args.ids or [j.id for j in client.status(state="DONE").jobs]
    else:
        from .service import JobState, Service

        service = Service(args.workdir)
        ids = args.ids or [j.id for j in service.store.list(JobState.DONE)]
    if args.output:
        return _write_results_file(args.output, ids, client, service)
    if client is not None:
        views = {jid: client.result(jid) for jid in ids}
        results = {jid: view.result for jid, view in views.items()}
    else:
        # A local view may defer a large result to a stream descriptor;
        # resolve it from the cache (local reads are not size-bounded).
        views = service.results(ids)
        results = {
            jid: (service.result(jid) if view.stream is not None
                  else view.result)
            for jid, view in views.items()
        }
    if args.json:
        print(_json.dumps(results, indent=2, sort_keys=True))
        return 0
    missing = 0
    for jid in ids:
        result = results[jid]
        if result is None:
            missing += 1
            print(f"{jid}: (no result yet)")
            continue
        line = ", ".join(
            f"{k}={result[k]:.4g}" if isinstance(result[k], float)
            else f"{k}={result[k]}"
            for k in sorted(result) if not isinstance(result[k], (list, dict))
        )
        print(f"{jid}: {line}")
    return 0 if missing == 0 else 1


def _write_results_file(output: str, ids: list, client, service) -> int:
    """Stream results into ``output`` as one JSON object keyed by job id.

    Never holds a whole result in memory: remote results are
    chunk-downloaded straight into the file via
    ``client.download_result``; local ones are copied file-to-file from
    the result cache.  Jobs without a result yet are written as
    ``null`` and counted toward a non-zero exit.
    """
    import json as _json
    import shutil as _shutil

    missing = 0
    with open(output, "wb") as fh:
        fh.write(b"{")
        first = True
        for jid in ids:
            if not first:
                fh.write(b",")
            first = False
            fh.write(_json.dumps(jid).encode("utf-8") + b":")
            if client is not None:
                if client.download_result(jid, fh) is None:
                    fh.write(b"null")
                    missing += 1
                continue
            from .service import JobState

            job = service.store.get(jid)
            opened = (service.cache.open_result(job.result_key)
                      if job.state is JobState.DONE and job.result_key
                      else None)
            if opened is None:
                fh.write(b"null")
                missing += 1
                continue
            src, _size = opened
            try:
                _shutil.copyfileobj(src, fh)
            finally:
                src.close()
        fh.write(b"}")
    done = len(ids) - missing
    note = f" ({missing} not ready)" if missing else ""
    print(f"wrote {done} result(s) to {output}{note}")
    return 0 if missing == 0 else 1


def _cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel jobs, idempotently.

    Exit 0 when every target is terminal after the call -- including
    jobs that were *already* DONE/FAILED/CANCELLED (reported, not an
    error).  Exit 1 only when a target is still live (e.g. RUNNING,
    which cancel does not preempt); an unknown id exits 2 as usual.
    """
    client = _remote_client(args)
    if client is not None:
        ids = args.ids
        if args.all:
            ids = [j.id for j in client.status(state="BLOCKED").jobs] \
                + [j.id for j in client.status(state="PENDING").jobs]
        if not ids:
            print("nothing to cancel")
            return 0
        outcomes = [client.cancel_job(jid) for jid in ids]
    else:
        from .service import JobState, Service

        service = Service(args.workdir)
        ids = args.ids
        if args.all:
            ids = [j.id for j in service.store.list(JobState.BLOCKED)] \
                + [j.id for j in service.store.list(JobState.PENDING)]
        if not ids:
            print("nothing to cancel")
            return 0
        outcomes = [service.cancel_job(jid) for jid in ids]
    terminal = ("DONE", "FAILED", "CANCELLED")
    flipped = [v for hit, v in outcomes if hit]
    already = [v for hit, v in outcomes if not hit and v.state in terminal]
    live = [v for hit, v in outcomes if not hit and v.state not in terminal]
    note = f", {len(already)} already terminal" if already else ""
    print(f"cancelled {len(flipped)} of {len(ids)} job(s){note}")
    for v in flipped:
        print(f"  cancelled {v.id}")
    for v in already:
        print(f"  already   {v.id} ({v.state})")
    for v in live:
        print(f"  live      {v.id} ({v.state}; cancel does not preempt)")
    return 0 if not live else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign submit|status|list``: staged job DAGs.

    ``submit`` prints each stage's job ids on one line (scripts scrape
    them); ``status`` prints a ``state=<word>`` token plus a per-stage
    progress table, so ``repro campaign status ID | grep state=done``
    is a polling loop's whole condition.
    """
    import json as _json

    client = _remote_client(args)
    service = None
    if client is None:
        from .service import Service

        service = Service(args.workdir)
    if args.action == "submit":
        try:
            with open(args.spec) as fh:
                spec = _json.load(fh)
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read campaign spec: {exc}") from None
        if client is not None:
            view = client.submit_campaign(spec, timeout=args.timeout,
                                          max_retries=args.retries)
        else:
            view = service.submit_campaign(spec, timeout=args.timeout,
                                           max_retries=args.retries)
        print(f"campaign {view.id} ({view.name}): {view.njobs} job(s)"
              f" in {len(view.stages)} stage(s)")
        for stage in view.stages:
            print(f"  stage {stage.name}  {len(stage.job_ids)} job(s):"
                  f" {' '.join(stage.job_ids)}")
        return 0
    if args.action == "list":
        views = client.campaigns() if client is not None \
            else service.list_campaigns()
        print(f"{'id':<14}{'name':<22}{'state':<11}{'jobs':<6}stages")
        for v in views:
            print(f"{v.id:<14}{v.name[:20]:<22}{v.state:<11}{v.njobs:<6}"
                  + ",".join(s.name for s in v.stages))
        return 0
    view = client.campaign(args.id) if client is not None \
        else service.campaign_view(args.id)
    print(f"campaign {view.id} ({view.name}) state={view.state}"
          f" jobs={view.njobs}")
    print(f"{'stage':<14}{'kind':<8}{'state':<11}{'blocked':<9}"
          f"{'pending':<9}{'running':<9}{'done':<7}{'failed':<8}cancelled")
    for s in view.stages:
        c = s.counts
        print(f"{s.name[:12]:<14}{s.kind:<8}{s.state:<11}"
              f"{c.get('BLOCKED', 0):<9}{c.get('PENDING', 0):<9}"
              f"{c.get('RUNNING', 0):<9}{c.get('DONE', 0):<7}"
              f"{c.get('FAILED', 0):<8}{c.get('CANCELLED', 0)}")
    if args.dag:
        dag = client.campaign_dag(view.id) if client is not None \
            else service.campaign_dag(view.id)
        for node in dag.nodes:
            deps = ",".join(node["depends_on"]) or "-"
            print(f"  {node['id']}  {node['stage']:<14}"
                  f"{node['state']:<11}<- {deps}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.http.server import ServiceHTTPServer

    workdirs = args.workdir or [".repro-service"]
    if args.shards < 1:
        raise ConfigError(f"--shards must be >= 1, got {args.shards}")
    if len(workdirs) > 1 and args.shards != 1:
        raise ConfigError(
            "pass either --shards N or --workdir repeated, not both"
        )
    if args.max_queue_depth < 0:
        raise ConfigError(
            f"--max-queue-depth must be >= 0, got {args.max_queue_depth}"
        )
    if args.rate_limit < 0:
        raise ConfigError(
            f"--rate-limit must be >= 0, got {args.rate_limit}"
        )
    server = ServiceHTTPServer(
        workdirs[0], host=args.host, port=args.port,
        workers=args.workers, backoff_base=args.backoff, quiet=args.quiet,
        shards=args.shards,
        shard_workdirs=workdirs if len(workdirs) > 1 else None,
        inline_max=args.inline_max,
        max_queue_depth=args.max_queue_depth,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
    )
    nshards = server.service.nshards
    shard_note = f" across {nshards} shard(s)" if nshards > 1 else ""
    print(f"serving {server.service.workdir} on {server.url} "
          f"with {args.workers} worker slot(s){shard_note}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("server stopped", flush=True)
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    """Per-shard depth/lease figures, local or from a remote healthz."""
    client = _remote_client(args)
    if client is not None:
        health = client.healthz()
        stats = health.get("shards", [])
        where = args.url
    else:
        from .service import Service

        service = Service(args.workdir)
        stats = service.shard_stats()
        where = f"workdir {service.workdir}"
    degraded = [s for s in stats if not s.get("ok", False)]
    print(f"{where}: {len(stats)} shard(s)"
          + (f", {len(degraded)} DEGRADED" if degraded else ""))
    print(f"{'shard':<7}{'blocked':<9}{'pending':<9}{'running':<9}"
          f"{'done':<7}{'failed':<8}{'leases':<8}workdir")
    for s in stats:
        if not s.get("ok", False):
            print(f"{s['index']:<7}{'-':<9}{'-':<9}{'-':<9}{'-':<7}{'-':<8}"
                  f"{'-':<8}{s['workdir']}  DEGRADED:"
                  f" {s.get('error', '')[:80]}")
            continue
        c = s["counts"]
        print(f"{s['index']:<7}{c.get('BLOCKED', 0):<9}{c['PENDING']:<9}"
              f"{c['RUNNING']:<9}{c['DONE']:<7}{c['FAILED']:<8}"
              f"{s['leases']:<8}{s['workdir']}")
    return 1 if degraded else 0


def _add_service_args(p: argparse.ArgumentParser, remote: bool = False,
                      multi_workdir: bool = False) -> None:
    if multi_workdir:
        p.add_argument("--workdir", action="append", default=None,
                       help="service state directory (queue + cache); "
                            "repeat to shard the queue over several "
                            "explicit directories")
    else:
        p.add_argument("--workdir", default=".repro-service",
                       help="service state directory (queue + cache)")
    if remote:
        p.add_argument("--url", default="",
                       help="operate on a remote `repro serve` instance "
                            "instead of a local workdir")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="pyroHPL: rocHPL reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="numeric HPL run on simulated MPI")
    _add_grid_args(p_run)
    p_run.add_argument("--schedule", choices=[s.value for s in Schedule],
                       default="split")
    p_run.add_argument("--pfact", choices=[v.value for v in PFactVariant],
                       default="right")
    p_run.add_argument("--bcast", choices=[b.value for b in BcastVariant],
                       default="1ringM")
    p_run.add_argument("--frac", type=float, default=0.5,
                       help="split-update right-section fraction")
    p_run.add_argument("--threads", type=int, default=1,
                       help="FACT threads per rank")
    p_run.set_defaults(fn=_cmd_run)

    p_sim = sub.add_parser("sim", help="performance simulation (Fig. 7)")
    _add_grid_args(p_sim)
    p_sim.set_defaults(N=256000, NB=512, P=4, Q=2)
    p_sim.add_argument("--pl", type=int, default=0, help="node-local grid rows")
    p_sim.add_argument("--ql", type=int, default=0, help="node-local grid cols")
    p_sim.add_argument("--schedule", choices=[s.value for s in Schedule],
                       default="split")
    p_sim.add_argument("--frac", type=float, default=0.5)
    p_sim.add_argument("--breakdown", action="store_true",
                       help="print the per-iteration Fig. 7 table")
    p_sim.add_argument("--chart", action="store_true",
                       help="render Fig. 7 as an ASCII chart")
    p_sim.add_argument("--energy", action="store_true",
                       help="print the run's energy/power accounting")
    p_sim.add_argument("--trace", metavar="FILE", default="",
                       help="write the simulated timeline as a Chrome trace")
    p_sim.add_argument("--fidelity", choices=["fast", "full"], default="fast",
                       help="simulator engine: closed-form vectorized "
                            "timeline (fast) or per-task object engine "
                            "(full); both produce identical reports")
    p_sim.set_defaults(fn=_cmd_sim)

    p_scale = sub.add_parser("scale", help="weak scaling sweep (Fig. 8)")
    p_scale.add_argument("-N", type=int, default=256000,
                         help="single-node problem size")
    p_scale.add_argument("-NB", type=int, default=512)
    p_scale.add_argument("--max-doublings", type=int, default=7,
                         help="scale to 2^k nodes")
    p_scale.add_argument("--chart", action="store_true",
                         help="render Fig. 8 as an ASCII chart")
    p_scale.add_argument("--fidelity", choices=["fast", "full"],
                         default="fast", help="simulator engine per point")
    p_scale.set_defaults(fn=_cmd_scale)

    p_fact = sub.add_parser("fact", help="FACT threading sweep (Fig. 5)")
    p_fact.add_argument("-NB", type=int, default=512)
    p_fact.add_argument("--chart", action="store_true",
                        help="render Fig. 5 as an ASCII chart")
    p_fact.set_defaults(fn=_cmd_fact)

    p_dat = sub.add_parser("dat", help="run every config in an HPL.dat file")
    p_dat.add_argument("file", help="path to an HPL.dat input file")
    p_dat.add_argument("-o", "--output", default="",
                       help="also write results to a file "
                            "('-' = the name from the .dat file)")
    p_dat.set_defaults(fn=_cmd_dat)

    p_bind = sub.add_parser("bindings", help="core time-sharing map (Sec. III.B)")
    p_bind.add_argument("--pl", type=int, default=4)
    p_bind.add_argument("--ql", type=int, default=2)
    p_bind.set_defaults(fn=_cmd_bindings)

    p_sub = sub.add_parser(
        "submit", help="queue a benchmark run (or --sweep grid) in the service"
    )
    _add_service_args(p_sub, remote=True)
    p_sub.add_argument("--kind", choices=["run", "sim", "scale", "fact"],
                       default="sim", help="what each job executes")
    p_sub.add_argument("--sweep", action="store_true",
                       help="expand comma-separated values into a grid")
    p_sub.add_argument("--batch", action="store_true",
                       help="submit via POST /v1/jobs/batch: one "
                            "round-trip and one store transaction per "
                            "shard (remote --url mode; implied locally)")
    p_sub.add_argument("-N", default="4096", help="problem size(s); for "
                       "--kind scale this is the single-node N")
    p_sub.add_argument("-NB", default="256", help="blocking factor(s)")
    p_sub.add_argument("-P", default="2", help="grid rows (list ok)")
    p_sub.add_argument("-Q", default="2", help="grid columns (list ok)")
    p_sub.add_argument("--pl", default="0", help="node-local grid rows "
                       "(sim; 0 = whole grid)")
    p_sub.add_argument("--ql", default="0", help="node-local grid cols")
    p_sub.add_argument("--schedule", default="split",
                       help="iteration schedule(s)")
    p_sub.add_argument("--pfact", default="right",
                       help="panel factorization variant(s) (run)")
    p_sub.add_argument("--bcast", default="1ringM",
                       help="broadcast variant(s) (run)")
    p_sub.add_argument("--frac", default="0.5",
                       help="split-update fraction(s)")
    p_sub.add_argument("--threads", default="1",
                       help="FACT threads per rank (run)")
    p_sub.add_argument("--nodes", default="1,2,4,8",
                       help="node counts (scale)")
    p_sub.add_argument("--fidelity", default="fast",
                       help="simulator engine(s) for sim/scale jobs "
                            "(fast, full)")
    p_sub.add_argument("--timeout", type=float, default=0.0,
                       help="per-attempt wall-clock limit in seconds")
    p_sub.add_argument("--retries", type=int, default=2,
                       help="extra attempts after a failure")
    p_sub.set_defaults(fn=_cmd_submit)

    p_work = sub.add_parser(
        "workers", help="drain queued jobs with a multiprocess worker pool"
    )
    _add_service_args(p_work, remote=True)
    p_work.add_argument("-n", type=int, default=2, help="worker slots")
    p_work.add_argument("--max-seconds", type=float, default=None,
                        help="stop after this many seconds even if not drained")
    p_work.add_argument("--backoff", type=float, default=0.5,
                        help="retry backoff base (seconds)")
    p_work.add_argument("--no-drain", action="store_true",
                        help="keep serving instead of exiting when drained")
    p_work.add_argument("--ttl", type=float, default=30.0,
                        help="lease TTL in seconds (remote --url mode)")
    p_work.add_argument("--name", default="",
                        help="worker name reported to the coordinator "
                             "(default: hostname-pid)")
    p_work.add_argument("--inline-max", type=int, default=1024 * 1024,
                        help="results larger than this many encoded bytes "
                             "are chunk-streamed to the coordinator "
                             "(remote --url mode)")
    p_work.set_defaults(fn=_cmd_workers)

    p_serve = sub.add_parser(
        "serve", help="serve the queue over HTTP (see docs/service.md)"
    )
    _add_service_args(p_serve, multi_workdir=True)
    p_serve.add_argument("--shards", type=int, default=1,
                         help="fan the queue over this many workdir "
                              "shards under --workdir (1 = plain store)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind")
    p_serve.add_argument("--port", type=int, default=8400,
                         help="port to bind (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="in-process worker slots (0 = serve only; "
                              "run `repro workers` separately)")
    p_serve.add_argument("--backoff", type=float, default=0.5,
                         help="retry backoff base (seconds)")
    p_serve.add_argument("--verbose", dest="quiet", action="store_false",
                         help="log every request to stderr")
    p_serve.add_argument("--inline-max", type=int, default=1024 * 1024,
                         help="results larger than this many encoded "
                              "bytes are served as chunk streams instead "
                              "of inline JSON")
    p_serve.add_argument("--max-queue-depth", type=int, default=0,
                         help="refuse submissions (429 overloaded) while "
                              "this many jobs are outstanding "
                              "(0 = no watermark)")
    p_serve.add_argument("--rate-limit", type=float, default=0.0,
                         help="per-client submit requests per second, "
                              "keyed on X-Client-Id (0 = unlimited)")
    p_serve.add_argument("--rate-burst", type=float, default=None,
                         help="token-bucket burst size "
                              "(default: one second of --rate-limit)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_stat = sub.add_parser("status", help="job counts and per-job states")
    _add_service_args(p_stat, remote=True)
    p_stat.add_argument("ids", nargs="*",
                        help="job ids to show (default: every job)")
    p_stat.add_argument("--state", default="",
                        help="only show jobs in this state (e.g. DONE)")
    p_stat.add_argument("--kind", default="",
                        help="only show jobs of this kind (e.g. sim)")
    p_stat.add_argument("--limit", type=int, default=None,
                        help="show at most this many jobs")
    p_stat.add_argument("--offset", type=int, default=0,
                        help="skip this many jobs (with --limit: paging)")
    p_stat.add_argument("--follow", action="store_true",
                        help="stream job transitions live instead of a "
                             "snapshot (with ids: exits once they finish; "
                             "Ctrl-C to stop)")
    p_stat.set_defaults(fn=_cmd_status)

    p_res = sub.add_parser("results", help="print results of completed jobs")
    _add_service_args(p_res, remote=True)
    p_res.add_argument("ids", nargs="*", help="job ids (default: all DONE)")
    p_res.add_argument("--json", action="store_true",
                       help="dump results as JSON")
    p_res.add_argument("-o", "--output", default="",
                       help="stream results into FILE as JSON instead of "
                            "printing (large results are chunk-downloaded, "
                            "never held in memory)")
    p_res.set_defaults(fn=_cmd_results)

    p_shards = sub.add_parser(
        "shards", help="per-shard queue depth and lease stats"
    )
    _add_service_args(p_shards, remote=True)
    p_shards.set_defaults(fn=_cmd_shards)

    p_can = sub.add_parser("cancel", help="cancel queued jobs (idempotent)")
    _add_service_args(p_can, remote=True)
    p_can.add_argument("ids", nargs="*", help="job ids to cancel")
    p_can.add_argument("--all", action="store_true",
                       help="cancel every blocked or pending job")
    p_can.set_defaults(fn=_cmd_cancel)

    p_camp = sub.add_parser(
        "campaign", help="submit and track staged job DAGs"
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)
    p_camp_sub = camp_sub.add_parser(
        "submit", help="expand a staged JSON spec into a job DAG"
    )
    _add_service_args(p_camp_sub, remote=True)
    p_camp_sub.add_argument("--spec", required=True,
                            help="path to the campaign JSON spec file")
    p_camp_sub.add_argument("--timeout", type=float, default=0.0,
                            help="default per-attempt wall-clock limit")
    p_camp_sub.add_argument("--retries", type=int, default=2,
                            help="default extra attempts after a failure")
    p_camp_sub.set_defaults(fn=_cmd_campaign)
    p_camp_stat = camp_sub.add_parser(
        "status", help="per-stage progress for one campaign"
    )
    _add_service_args(p_camp_stat, remote=True)
    p_camp_stat.add_argument("id", help="campaign id")
    p_camp_stat.add_argument("--dag", action="store_true",
                             help="also print every node and its parents")
    p_camp_stat.set_defaults(fn=_cmd_campaign)
    p_camp_list = camp_sub.add_parser(
        "list", help="every campaign the service knows"
    )
    _add_service_args(p_camp_list, remote=True)
    p_camp_list.set_defaults(fn=_cmd_campaign)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; not an error.
        return 0
    except ConfigError as exc:
        # Invalid configuration: one clean line, exit 2, so scripts and
        # service workers can tell bad input from a crash (which still
        # tracebacks).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except UnknownJobError as exc:
        # Same contract as ConfigError: a job id the caller made up is
        # bad input, not a service failure.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
