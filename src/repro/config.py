"""Run configuration for the HPL benchmark engine.

:class:`HPLConfig` mirrors the tunables of Netlib HPL's ``HPL.dat`` plus the
rocHPL extensions described in the paper (schedule selection, split
fraction).  It is consumed both by the *numeric* engine
(:mod:`repro.hpl.driver`) and by the *performance* simulator
(:mod:`repro.perf.hplsim`), so that one configuration object describes one
benchmark run in either world.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math

from .errors import ConfigError


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Enums are encoded by value so the encoding is stable across enum
    renames and python versions.  Used by :func:`config_key` and the
    service result cache, which require byte-identical encodings for
    semantically identical inputs.
    """

    def _default(o):
        if isinstance(o, enum.Enum):
            return o.value
        raise TypeError(f"{type(o).__name__} is not JSON-serializable")

    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_default
    )


def config_key(mapping) -> str:
    """Stable content hash of a parameter mapping (sha256 hex digest)."""
    return hashlib.sha256(canonical_json(mapping).encode()).hexdigest()


class PFactVariant(enum.Enum):
    """Panel-factorization algorithm, as in Netlib HPL's PFACT/RFACT knobs."""

    LEFT = "left"
    CROUT = "crout"
    RIGHT = "right"


class BcastVariant(enum.Enum):
    """Panel-broadcast algorithm (Netlib HPL's ``BCAST`` knob).

    ``ONE_RING_M`` / ``TWO_RING_M`` are the "modified" variants in which the
    process immediately next to the root is served first so it can start its
    own (likely critical-path) work early.  ``BLONG`` is the
    bandwidth-optimal scatter + ring-allgather spread-roll algorithm.
    """

    ONE_RING = "1ring"
    ONE_RING_M = "1ringM"
    TWO_RING = "2ring"
    TWO_RING_M = "2ringM"
    BLONG = "blong"
    BINOMIAL = "binomial"


class SwapVariant(enum.Enum):
    """Row-swapping algorithm (Netlib HPL's ``SWAP`` knob).

    ``LONG`` is the bandwidth-optimal spread-roll formulation (scatterv +
    ring allgatherv -- what the paper describes and rocHPL uses on wide
    sections); ``BINEXCH`` is the latency-optimal binary exchange
    (``log2 P`` rounds); ``MIX`` switches to binary exchange once a
    section is narrower than ``swap_threshold`` columns.
    """

    BINEXCH = "binexch"
    LONG = "long"
    MIX = "mix"


class Schedule(enum.Enum):
    """Which iteration schedule the driver runs.

    ``CLASSIC``      -- fact, bcast, swap, update, strictly in order.
    ``LOOKAHEAD``    -- depth-1 look-ahead (Fig. 3 of the paper).
    ``SPLIT_UPDATE`` -- look-ahead plus the split left/right trailing update
                        that hides row-swap communication (Fig. 6).
    """

    CLASSIC = "classic"
    LOOKAHEAD = "lookahead"
    SPLIT_UPDATE = "split"


@dataclasses.dataclass(frozen=True)
class HPLConfig:
    """Complete description of one HPL run.

    Parameters mirror ``HPL.dat`` where a counterpart exists; rocHPL
    additions are noted.

    Attributes:
        n: Global problem size (the matrix is ``n x n`` plus one RHS column).
        nb: Blocking factor; panels are ``nb`` columns wide.
        p: Process-grid rows.
        q: Process-grid columns.
        pfact: Recursion-leaf panel factorization variant.
        rfact: Recursive panel factorization variant (outer levels).
        ndiv: Number of subdivisions in the recursive factorization.
        nbmin: Recursion stops when a sub-panel is narrower than this.
        bcast: Panel broadcast algorithm.
        swap: Row-swapping algorithm.
        swap_threshold: Section width (columns) below which ``MIX``
            switches from spread-roll to binary exchange (HPL.dat's
            swapping threshold).
        depth: Look-ahead depth (0 = classic; rocHPL uses 1).
        schedule: Iteration schedule (rocHPL addition).
        split_fraction: Fraction of local columns placed in the *right*
            section of the split update (rocHPL's ``--frac``); the paper
            finds 0.5 optimal on a single node.
        fact_threads: CPU threads used by the tiled multi-threaded panel
            factorization (``1`` = serial reference path).
        seed: Seed of the HPL linear-congruential matrix generator.
        row_major_grid: Rank-to-grid ordering (HPL.dat PMAP).
        check: Run the residual verification after the solve.
    """

    n: int
    nb: int
    p: int
    q: int
    pfact: PFactVariant = PFactVariant.RIGHT
    rfact: PFactVariant = PFactVariant.RIGHT
    ndiv: int = 2
    nbmin: int = 16
    bcast: BcastVariant = BcastVariant.ONE_RING_M
    swap: SwapVariant = SwapVariant.LONG
    swap_threshold: int = 64
    depth: int = 1
    schedule: Schedule = Schedule.SPLIT_UPDATE
    split_fraction: float = 0.5
    fact_threads: int = 1
    seed: int = 42
    row_major_grid: bool = True
    check: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"n must be positive, got {self.n}")
        if self.nb < 1:
            raise ConfigError(f"nb must be positive, got {self.nb}")
        if self.p < 1 or self.q < 1:
            raise ConfigError(f"grid must be at least 1x1, got {self.p}x{self.q}")
        if self.ndiv < 2:
            raise ConfigError(f"ndiv must be >= 2, got {self.ndiv}")
        if self.nbmin < 1:
            raise ConfigError(f"nbmin must be >= 1, got {self.nbmin}")
        if self.depth not in (0, 1):
            raise ConfigError(f"look-ahead depth must be 0 or 1, got {self.depth}")
        if not 0.0 <= self.split_fraction <= 1.0:
            raise ConfigError(
                f"split_fraction must be in [0, 1], got {self.split_fraction}"
            )
        if self.fact_threads < 1:
            raise ConfigError(f"fact_threads must be >= 1, got {self.fact_threads}")
        if self.swap_threshold < 0:
            raise ConfigError(
                f"swap_threshold must be >= 0, got {self.swap_threshold}"
            )
        if self.schedule is not Schedule.CLASSIC and self.depth == 0:
            raise ConfigError("look-ahead/split schedules require depth=1")

    @property
    def nranks(self) -> int:
        """Total number of MPI ranks in the grid."""
        return self.p * self.q

    @property
    def nblocks(self) -> int:
        """Number of ``nb``-wide panel columns (the iteration count)."""
        return math.ceil(self.n / self.nb)

    @property
    def total_flops(self) -> float:
        """The canonical HPL flop count: ``2/3 n^3 + 3/2 n^2``."""
        return (2.0 / 3.0) * self.n**3 + 1.5 * self.n**2

    def replace(self, **kwargs) -> "HPLConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-serializable dict of every field (enums by value)."""
        out = {}
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            out[f.name] = v.value if isinstance(v, enum.Enum) else v
        return out

    @classmethod
    def from_dict(cls, data) -> "HPLConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Enum fields accept either the enum member or its value; unknown
        keys raise :class:`~repro.errors.ConfigError` rather than being
        silently dropped, so stale payloads fail loudly.
        """
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = set(data) - set(fields)
        if unknown:
            raise ConfigError(
                f"unknown HPLConfig field(s): {', '.join(sorted(unknown))}"
            )
        enum_types = {
            "pfact": PFactVariant,
            "rfact": PFactVariant,
            "bcast": BcastVariant,
            "swap": SwapVariant,
            "schedule": Schedule,
        }
        kwargs = {}
        for name, value in data.items():
            etype = enum_types.get(name)
            if etype is not None and not isinstance(value, etype):
                try:
                    value = etype(value)
                except ValueError as exc:
                    raise ConfigError(
                        f"invalid {name} value {value!r}"
                    ) from exc
            kwargs[name] = value
        return cls(**kwargs)

    def config_key(self) -> str:
        """Stable content hash of this configuration (sha256 hex)."""
        return config_key(self.to_dict())
