"""pyroHPL: a Python reproduction of rocHPL (SC 2023).

This package reproduces "Optimizing High-Performance Linpack for Exascale
Accelerated Architectures" (Chalmers, Kurzak, McDougall, Bauman; SC 2023):
AMD's rocHPL benchmark design for the Frontier/Crusher node architecture.

Layers:

* :mod:`repro.simmpi` -- in-process SPMD runtime with MPI-like semantics
  (the substitute for Cray MPICH on real hardware).
* :mod:`repro.grid` -- 2D process grids and block-cyclic distribution math.
* :mod:`repro.blas` -- BLAS kernel layer with flop accounting and the tiled
  multi-threaded panel kernels of the paper's Section III.A.
* :mod:`repro.hpl` -- the numeric HPL benchmark: distributed blocked LU with
  partial pivoting, panel broadcast variants, scatterv/allgatherv row
  swapping, look-ahead and split-update schedules, backsolve, verification.
* :mod:`repro.machine` -- calibrated hardware models of the Crusher node
  (MI250X DGEMM curves, Infinity Fabric / NIC alpha-beta links, CPU FACT
  model).
* :mod:`repro.sched` -- discrete-event timeline simulator executing the
  iteration DAGs of the paper's Figures 3 and 6.
* :mod:`repro.perf` -- benchmark-level performance simulation regenerating
  the paper's Figures 5, 7 and 8 and headline numbers.
* :mod:`repro.binding` -- the CPU core time-sharing computation of
  Section III.B.

Quickstart::

    from repro import HPLConfig, run_hpl

    result = run_hpl(HPLConfig(n=512, nb=64, p=2, q=2))
    print(result.resid, result.passed)
"""

from .config import BcastVariant, HPLConfig, PFactVariant, Schedule
from .errors import ReproError, VerificationError

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy so that `import repro.simmpi` etc. never pulls the whole stack.
    if name in ("HPLResult", "run_hpl", "run_hpl_dat"):
        from .hpl import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "HPLConfig",
    "PFactVariant",
    "BcastVariant",
    "Schedule",
    "HPLResult",
    "run_hpl",
    "run_hpl_dat",
    "ReproError",
    "VerificationError",
    "__version__",
]
