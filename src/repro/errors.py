"""Exception hierarchy for pyroHPL.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all pyroHPL errors.

    Errors that cross the service's HTTP boundary carry two class
    attributes consumed by the v1 wire contract: ``code``, a stable
    machine-readable identifier clients can switch on, and
    ``http_status``, the status the server maps the error to.
    """

    code = "internal"
    http_status = 500


class ConfigError(ReproError, ValueError):
    """An :class:`~repro.config.HPLConfig` (or machine spec) is invalid."""

    code = "bad_config"
    http_status = 400


class CommError(ReproError):
    """Base class for errors raised by the simulated MPI runtime."""


class DeadlockError(CommError):
    """A blocking receive waited longer than the fabric watchdog allows.

    In a correctly written SPMD program every receive is eventually
    matched; a watchdog timeout almost always indicates a communication
    mismatch (wrong tag, wrong peer, or a rank that exited early).
    """


class AbortError(CommError):
    """The fabric was aborted because a peer rank raised an exception.

    Raised inside still-running ranks so the whole SPMD job unwinds
    instead of deadlocking on messages the dead rank will never send.
    """


class TruncationError(CommError):
    """A message was received into a buffer smaller than the payload."""


class SpmdError(ReproError):
    """One or more ranks of an SPMD job raised; wraps the rank errors."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD job failed on rank(s) {ranks}: {type(first).__name__}: {first}"
        )


class VerificationError(ReproError):
    """The HPL residual test failed (the computed solution is wrong)."""


class SingularMatrixError(ReproError):
    """A zero pivot was encountered during panel factorization."""


class ScheduleError(ReproError):
    """The discrete-event timeline simulator was given an invalid DAG."""


class ServiceError(ReproError):
    """Base class for errors raised by the batch job service."""

    code = "service_error"
    http_status = 422


class UnknownJobError(ServiceError):
    """A job id was not found in the service's store."""

    code = "unknown_job"
    http_status = 404


class UnknownJobKindError(ServiceError):
    """A job names a kind with no registered runner."""

    code = "unknown_kind"
    http_status = 422


class MalformedRequestError(ServiceError):
    """A request body is not JSON, not an object, or missing fields."""

    code = "malformed"
    http_status = 400


class UnknownRouteError(ServiceError):
    """A request addressed an endpoint the v1 API does not define."""

    code = "unknown_route"
    http_status = 404


class ShardUnavailableError(ServiceError):
    """A write routed to a shard whose SQLite file cannot be reached.

    Other shards keep serving; the caller may retry once the shard
    recovers (a hung writer released the file lock, the disk came
    back).  Reads and sweeps never raise this -- they skip the wedged
    shard and serve what is reachable.
    """

    code = "shard_unavailable"
    http_status = 503


class ChunkOffsetError(ServiceError):
    """A streamed-result chunk arrived out of order.

    The message names the offset the server expected next; a client may
    restart the upload from offset 0, which discards any staged prefix.
    """

    code = "bad_offset"
    http_status = 422


class ChunkIntegrityError(ServiceError):
    """A streamed-result chunk (or the finished stream) failed its sha256."""

    code = "bad_chunk"
    http_status = 422


class BadCursorError(ServiceError):
    """An event/queue cursor token is malformed or ahead of the log.

    Cursors are opaque continuation tokens; a token the server cannot
    decode, one minted against a different shard count, or one whose
    offsets lie beyond the end of the audit log is rejected outright --
    the client should restart from ``begin`` (or ``now``).
    """

    code = "bad_cursor"
    http_status = 422


class EventsTruncatedError(ServiceError):
    """An event cursor points before a rotated/compacted audit log.

    The events the cursor refers to no longer exist, so resuming from
    it cannot be exactly-once.  The client must accept the gap: restart
    from ``begin`` (replays what survived compaction) or ``now``.
    """

    code = "events_truncated"
    http_status = 410


class CycleError(ServiceError):
    """A submission's dependency edges form a cycle.

    Raised at submit time, before any job of the submission is
    enqueued: a cyclic stage graph can never release.
    """

    code = "cycle_detected"
    http_status = 422


class UnknownParentError(ServiceError):
    """A submission's ``depends_on`` names a job id the store does not know."""

    code = "unknown_parent"
    http_status = 404


class UnknownCampaignError(ServiceError):
    """A campaign id was not found in the service's campaign store."""

    code = "unknown_campaign"
    http_status = 404


class BackpressureError(ServiceError):
    """Base for 429 admission rejections: the request itself is fine.

    Carries ``retry_after`` (seconds), which the server surfaces as the
    HTTP ``Retry-After`` header and the clients honor when retrying
    transparently.  Submissions are dedup-safe, so retrying a rejected
    submit can never enqueue twice.
    """

    code = "backpressure"
    http_status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class OverloadedError(BackpressureError):
    """The queue depth crossed the coordinator's admission watermark.

    New work is refused until workers drain the backlog below the
    watermark; status/result/cancel traffic is never refused.
    """

    code = "overloaded"
    http_status = 429


class RateLimitedError(BackpressureError):
    """One client (by ``X-Client-Id``) exceeded its token-bucket rate."""

    code = "rate_limited"
    http_status = 429


class LeaseConflictError(ServiceError):
    """A lease operation named a job held by a different live lease."""

    code = "conflict"
    http_status = 409


class LeaseExpiredError(LeaseConflictError):
    """The named lease no longer exists (it expired or never was).

    A worker reporting a result under an expired lease must drop the
    job: the store has already requeued it for someone else.
    """

    code = "lease_expired"
    http_status = 409
