"""Exception hierarchy for pyroHPL.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all pyroHPL errors."""


class ConfigError(ReproError, ValueError):
    """An :class:`~repro.config.HPLConfig` (or machine spec) is invalid."""


class CommError(ReproError):
    """Base class for errors raised by the simulated MPI runtime."""


class DeadlockError(CommError):
    """A blocking receive waited longer than the fabric watchdog allows.

    In a correctly written SPMD program every receive is eventually
    matched; a watchdog timeout almost always indicates a communication
    mismatch (wrong tag, wrong peer, or a rank that exited early).
    """


class AbortError(CommError):
    """The fabric was aborted because a peer rank raised an exception.

    Raised inside still-running ranks so the whole SPMD job unwinds
    instead of deadlocking on messages the dead rank will never send.
    """


class TruncationError(CommError):
    """A message was received into a buffer smaller than the payload."""


class SpmdError(ReproError):
    """One or more ranks of an SPMD job raised; wraps the rank errors."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD job failed on rank(s) {ranks}: {type(first).__name__}: {first}"
        )


class VerificationError(ReproError):
    """The HPL residual test failed (the computed solution is wrong)."""


class SingularMatrixError(ReproError):
    """A zero pivot was encountered during panel factorization."""


class ScheduleError(ReproError):
    """The discrete-event timeline simulator was given an invalid DAG."""


class ServiceError(ReproError):
    """Base class for errors raised by the batch job service."""


class UnknownJobError(ServiceError):
    """A job id was not found in the service's store."""


class UnknownJobKindError(ServiceError):
    """A job names a kind with no registered runner."""
