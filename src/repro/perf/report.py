"""rocHPL-style result printers.

HPL prints a characteristic results block; these helpers render our
numeric and simulated runs in that familiar shape, plus tabular dumps of
the Fig. 5 / 7 / 8 series for the benchmark harness.
"""

from __future__ import annotations

import io

from .factsim import FactCurve
from .hplsim import RunReport
from .scaling import ScalePoint, weak_scaling_efficiency


_BANNER = """\
================================================================================
pyroHPL -- reproduction of rocHPL (High-Performance Linpack for exascale
accelerated architectures, SC'23) on a simulated-MPI / modeled-GPU substrate
================================================================================

An explanation of the input/output parameters follows:
T/V    : Wall time / encoded variant.
N      : The order of the coefficient matrix A.
NB     : The partitioning blocking factor.
P      : The number of process rows.
Q      : The number of process columns.
Time   : Time in seconds to solve the linear system.
Gflops : Rate of execution for solving the linear system.
"""


def format_hpl_banner() -> str:
    """The output-file preamble, in the familiar Netlib HPL shape."""
    return _BANNER


def format_hpl_result_block(
    tv: str,
    n: int,
    nb: int,
    p: int,
    q: int,
    seconds: float,
    tflops: float,
    resid: float,
    passed: bool,
    threshold: float = 16.0,
) -> str:
    """One complete per-run block: the T/V row plus the residual check."""
    sep = "-" * 80
    header = (
        f"{'T/V':<16s}{'N':>10s}{'NB':>6s}{'P':>6s}{'Q':>6s}"
        f"{'Time':>16s}{'Gflops':>18s}"
    )
    line = (
        f"{tv:<16s}{n:>10d}{nb:>6d}{p:>6d}{q:>6d}"
        f"{seconds:>16.2f}{tflops * 1000.0:>18.4e}"
    )
    verdict = "PASSED" if passed else "FAILED"
    check = (
        f"||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N)= {resid:16.7f} "
        f"...... {verdict}"
    )
    return f"{sep}\n{header}\n{sep}\n{line}\n{sep}\n{check}\n"


def format_hpl_footer(nruns: int, nfailed: int) -> str:
    sep = "=" * 80
    return (
        f"{sep}\n\nFinished {nruns:6d} tests with the following results:\n"
        f"         {nruns - nfailed:6d} tests completed and passed residual checks,\n"
        f"         {nfailed:6d} tests completed and failed residual checks.\n"
        f"{sep}\nEnd of Tests.\n{sep}\n"
    )


def format_hpl_line(
    n: int, nb: int, p: int, q: int, seconds: float, tflops: float, tag: str = "WR0"
) -> str:
    """One result row in Netlib HPL's output format (Gflops column)."""
    return (
        f"{tag:<16s}{n:>10d}{nb:>6d}{p:>6d}{q:>6d}"
        f"{seconds:>16.2f}{tflops * 1000.0:>18.4e}"
    )


def format_run_report(report: RunReport) -> str:
    """The paper's single-node summary for a simulated run."""
    cfg = report.cfg
    out = io.StringIO()
    header = f"{'T/V':<16s}{'N':>10s}{'NB':>6s}{'P':>6s}{'Q':>6s}{'Time':>16s}{'Gflops':>18s}"
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    out.write(
        format_hpl_line(cfg.n, cfg.nb, cfg.p, cfg.q, report.makespan, report.score_tflops)
        + "\n\n"
    )
    out.write(f"score                : {report.score_tflops:8.1f} TFLOPS\n")
    out.write(f"hidden-time fraction : {report.hidden_time_fraction:8.2f}\n")
    out.write(f"hidden iterations    : {report.hidden_iteration_fraction:8.2f}\n")
    out.write(f"early-regime rate    : {report.early_regime_tflops():8.1f} TFLOPS\n")
    return out.getvalue()


def format_breakdown_table(report: RunReport, stride: int = 25) -> str:
    """The Fig. 7 series, one sampled row per ``stride`` iterations."""
    out = io.StringIO()
    out.write(
        f"{'iter':>6s}{'time_ms':>10s}{'gpu_ms':>10s}{'fact_ms':>10s}"
        f"{'mpi_ms':>10s}{'xfer_ms':>10s}{'hidden':>8s}\n"
    )
    for it in report.iterations[::stride]:
        out.write(
            f"{it.k:>6d}{it.time * 1e3:>10.2f}{it.gpu_active * 1e3:>10.2f}"
            f"{it.fact * 1e3:>10.2f}{it.mpi * 1e3:>10.2f}"
            f"{it.transfer * 1e3:>10.2f}{str(it.hidden):>8s}\n"
        )
    return out.getvalue()


def format_scaling_table(points: list[ScalePoint]) -> str:
    """The Fig. 8 series: score and efficiency per node count."""
    out = io.StringIO()
    out.write(
        f"{'nodes':>6s}{'N':>10s}{'grid':>9s}{'PFLOPS':>10s}{'ideal':>10s}{'eff_%':>8s}\n"
    )
    effs = weak_scaling_efficiency(points)
    base = points[0].tflops / points[0].nnodes if points else 0.0
    for pt, eff in zip(points, effs):
        out.write(
            f"{pt.nnodes:>6d}{pt.n:>10d}{f'{pt.p}x{pt.q}':>9s}"
            f"{pt.tflops / 1e3:>10.2f}{base * pt.nnodes / 1e3:>10.2f}"
            f"{eff * 100.0:>8.1f}\n"
        )
    return out.getvalue()


def format_fact_table(curves: list[FactCurve]) -> str:
    """The Fig. 5 series: FACT GFLOPS vs M, one column per thread count."""
    out = io.StringIO()
    out.write(f"{'M':>9s}")
    for c in curves:
        out.write(f"{f'T={c.threads}':>10s}")
    out.write("\n")
    for i, m in enumerate(curves[0].m_values):
        out.write(f"{m:>9d}")
        for c in curves:
            out.write(f"{c.gflops[i]:>10.1f}")
        out.write("\n")
    return out.getvalue()
