"""The paper's Section V experiment: compute outpacing communication.

The discussion section argues that as generational leaps in accelerator
throughput outpace interconnect improvements, "the performance bottlenecks
shift away from being bound by computation rate", lowering HPL efficiency
as a fraction of peak.  This module makes that argument quantitative: it
scales the GPU's compute rate by a factor while holding the CPU, links and
NIC fixed, re-runs the single-node simulation, and reports how the
fraction-of-ceiling and the hidden-communication window shrink.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..machine.frontier import crusher_cluster
from ..machine.spec import ClusterSpec
from .hplsim import RunReport, simulate_run
from .ledger import PerfConfig


@dataclass
class GenerationPoint:
    """One compute-scaling factor's outcome."""

    compute_scale: float
    score_tflops: float
    ceiling_tflops: float
    hidden_time_fraction: float
    report: RunReport

    @property
    def efficiency(self) -> float:
        """Score as a fraction of the scaled DGEMM ceiling."""
        return self.score_tflops / self.ceiling_tflops


def scaled_cluster(base: ClusterSpec, compute_scale: float) -> ClusterSpec:
    """A cluster whose GPUs are ``compute_scale`` x faster, same network."""
    if compute_scale <= 0:
        raise ValueError(f"compute_scale must be positive, got {compute_scale}")
    gpu = dataclasses.replace(
        base.node.gpu,
        peak_fp64_matrix_tflops=base.node.gpu.peak_fp64_matrix_tflops
        * compute_scale,
    )
    node = dataclasses.replace(base.node, gpu=gpu)
    return dataclasses.replace(base, node=node)


def generational_sweep(
    scales: list[float] | None = None,
    cfg: PerfConfig | None = None,
) -> list[GenerationPoint]:
    """Sweep GPU compute scaling factors at fixed network performance."""
    if scales is None:
        scales = [0.5, 1.0, 2.0, 4.0, 8.0]
    if cfg is None:
        cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)
    base = crusher_cluster(1)
    points = []
    for scale in scales:
        cluster = scaled_cluster(base, scale)
        report = simulate_run(cfg, cluster)
        gpu = cluster.node.gpu
        from ..machine.gemm_model import dgemm_tflops

        ceiling = cluster.node.gpus * dgemm_tflops(gpu, 60_000, 120_000, cfg.nb)
        points.append(
            GenerationPoint(
                compute_scale=scale,
                score_tflops=report.score_tflops,
                ceiling_tflops=ceiling,
                hidden_time_fraction=report.hidden_time_fraction,
                report=report,
            )
        )
    return points
