"""Terminal (ASCII) chart rendering for the paper's figures.

No plotting stack is assumed offline, so the CLI and examples render the
regenerated figures as text: multi-series line charts on a character
canvas with axis scales and a legend.  Good enough to *see* Fig. 5's
thread fan, Fig. 7's two regimes and Fig. 8's near-ideal scaling.
"""

from __future__ import annotations

import math
from typing import Sequence

_MARKS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    t = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(t * (cells - 1)))))


def line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logx: bool = False,
) -> str:
    """Render labeled (xs, ys) series on one character canvas.

    Args:
        series: Mapping from legend label to ``(xs, ys)`` of equal length.
        width: Plot-area columns.
        height: Plot-area rows.
        title: Optional heading.
        xlabel: X-axis caption.
        ylabel: Y-axis caption (printed above the axis).
        logx: Place x positions on a log scale (node counts, sizes).
    """
    if not series:
        raise ValueError("no series to plot")
    pts: list[tuple[float, float]] = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("series xs and ys must have equal length")
        pts.extend(zip(xs, ys))
    if not pts:
        raise ValueError("series are empty")

    def fx(x: float) -> float:
        return math.log(x) if logx else x

    xlo = min(fx(x) for x, _ in pts)
    xhi = max(fx(x) for x, _ in pts)
    ylo = min(y for _, y in pts)
    yhi = max(y for _, y in pts)
    if ylo > 0 and ylo / max(yhi, 1e-300) < 0.5:
        ylo = 0.0  # anchor at zero unless the data is a narrow band

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        prev = None
        for x, y in zip(xs, ys):
            col = _scale(fx(x), xlo, xhi, width)
            row = height - 1 - _scale(y, ylo, yhi, height)
            if prev is not None:
                pcol, prow = prev
                steps = max(abs(col - pcol), abs(row - prow))
                for s in range(1, steps):
                    icol = pcol + round((col - pcol) * s / steps)
                    irow = prow + round((row - prow) * s / steps)
                    if grid[irow][icol] == " ":
                        grid[irow][icol] = "."
            grid[row][col] = mark
            prev = (col, row)

    lines = []
    if title:
        lines.append(title.center(width + 12))
    if ylabel:
        lines.append(ylabel)
    for i, row in enumerate(grid):
        if i == 0:
            tag = f"{yhi:10.3g} "
        elif i == height - 1:
            tag = f"{ylo:10.3g} "
        else:
            tag = " " * 11
        lines.append(tag + "|" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    xlo_label = f"{math.exp(xlo) if logx else xlo:.3g}"
    xhi_label = f"{math.exp(xhi) if logx else xhi:.3g}"
    axis = " " * 12 + xlo_label + " " * max(
        1, width - len(xlo_label) - len(xhi_label)
    ) + xhi_label
    lines.append(axis)
    if xlabel:
        lines.append(xlabel.center(width + 12))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def fig7_chart(report, width: int = 72, height: int = 18) -> str:
    """Fig. 7 as ASCII: per-iteration total vs GPU-active time (ms)."""
    ks = [it.k for it in report.iterations]
    total = [it.time * 1e3 for it in report.iterations]
    gpu = [it.gpu_active * 1e3 for it in report.iterations]
    stacked = [
        (it.fact + it.mpi + it.transfer) * 1e3 for it in report.iterations
    ]
    # "total" drawn last: early on it coincides with "gpu active" (that is
    # the hidden regime) and must stay visible on top.
    return line_chart(
        {"gpu active": (ks, gpu), "fact+mpi+xfer": (ks, stacked),
         "total": (ks, total)},
        width=width,
        height=height,
        title=f"Fig.7: per-iteration time, N={report.cfg.n} NB={report.cfg.nb}",
        xlabel="iteration",
        ylabel="ms",
    )


def fig8_chart(points, width: int = 64, height: int = 16) -> str:
    """Fig. 8 as ASCII: measured vs ideal score over node counts."""
    nodes = [p.nnodes for p in points]
    measured = [p.tflops / 1e3 for p in points]
    base = points[0].tflops / points[0].nnodes
    ideal = [base * n / 1e3 for n in nodes]
    return line_chart(
        {"measured": (nodes, measured), "ideal": (nodes, ideal)},
        width=width,
        height=height,
        title="Fig.8: weak scaling (PFLOPS)",
        xlabel="nodes (log)",
        ylabel="PFLOPS",
        logx=True,
    )


def fig5_chart(curves, width: int = 64, height: int = 16) -> str:
    """Fig. 5 as ASCII: FACT GFLOPS vs M for each thread count."""
    series = {
        f"T={c.threads}": (list(map(float, c.m_values)), c.gflops)
        for c in curves
        if c.threads in (1, 4, 16, 64)
    }
    return line_chart(
        series,
        width=width,
        height=height,
        title="Fig.5: FACT performance (GFLOPS), NB=512",
        xlabel="panel rows M (log)",
        ylabel="GFLOPS",
        logx=True,
    )
