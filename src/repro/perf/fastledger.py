"""Vectorized per-iteration ledger: all phase costs in one shot.

The scalar ledger (:mod:`repro.perf.ledger`) re-derives block-cyclic
index math and machine-model formulas once per iteration -- thousands of
Python calls per simulated run.  This module computes the identical
numbers as aligned numpy arrays: the block-cyclic extents come from the
vectorized index helpers, the DGEMM efficiency curve and ``fact_seconds``
are evaluated once over the whole iteration axis, and the comm collectives
are priced per focal grid column (there are at most ``Q`` of them) through
:class:`~repro.machine.comm_model.CommModel`'s cached link structure.

Every batch machine-model entry point mirrors its scalar twin's IEEE
operation order, so the resulting :class:`~repro.sched.fastpath.CostArrays`
match ``run_costs`` **bit for bit** -- the equivalence suite asserts this
end to end through both engines.

``run_cost_arrays`` is memoized on the (frozen, hashable) config and
cluster specs, so repeated simulations of the same point -- scaling sweeps,
service job retries, benchmark loops -- price the run exactly once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..config import Schedule, SwapVariant
from ..grid.block_cyclic import num_local_before_array, numroc_array
from ..machine.comm_model import CommModel, GridTopology
from ..machine.cpu_model import fact_seconds_array
from ..machine.gemm_model import (
    dgemm_seconds_array,
    dtrsm_seconds_array,
    rowcopy_seconds_array,
)
from ..machine.spec import ClusterSpec
from ..machine.transfer_model import transfer_seconds_array
from ..sched.fastpath import MODE_CLASSIC, MODE_LOOKAHEAD, MODE_SPLIT, CostArrays
from .ledger import PerfConfig, preamble_costs, time_sharing_threads


def _section_arrays(
    cfg: PerfConfig,
    cm: CommModel,
    c_f: np.ndarray,
    m_update: np.ndarray,
    jb: np.ndarray,
    w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batch :func:`repro.perf.ledger._section` over the iteration axis.

    Returns (gather, comm, scatter, dtrsm, dgemm) arrays.  Rows with
    ``w <= 0`` price to zero through the models' own payload guards, just
    as the scalar section short-circuits to an empty ``SectionCosts``.
    """
    gpu = cm.cluster.node.gpu
    topo = cm.topo
    u_bytes = 8.0 * jb * w
    gather = rowcopy_seconds_array(gpu, u_bytes)
    dtrsm = dtrsm_seconds_array(gpu, jb, w)
    dgemm = dgemm_seconds_array(gpu, m_update, w, jb)
    comm = np.zeros(len(w), dtype=np.float64)
    wpos = np.nonzero(w > 0)[0]
    for cc in np.unique(c_f[wpos]):
        sel = wpos[c_f[wpos] == cc]
        members = topo.col_members(int(cc))
        ub = u_bytes[sel]
        if cfg.swap is SwapVariant.BINEXCH:
            assemble = cm.binexch_allgather_seconds_array(members, ub)
        elif cfg.swap is SwapVariant.MIX:
            assemble = np.where(
                w[sel] <= cfg.swap_threshold,
                cm.binexch_allgather_seconds_array(members, ub),
                cm.allgatherv_seconds_array(members, ub),
            )
        else:
            assemble = cm.allgatherv_seconds_array(members, ub)
        comm[sel] = assemble + cm.scatterv_seconds_array(
            (0, int(cc)), members, ub * (topo.p - 1) / max(topo.p, 1)
        )
    return gather, comm, gather, dtrsm, dgemm


@lru_cache(maxsize=32)
def run_cost_arrays(cfg: PerfConfig, cluster: ClusterSpec) -> CostArrays:
    """Batch twin of :func:`repro.perf.ledger.run_costs`.

    The returned :class:`CostArrays` is cached and shared -- treat it as
    immutable.
    """
    n, nb, p, q = cfg.n, cfg.nb, cfg.p, cfg.q
    nblocks = cfg.nblocks
    topo = GridTopology(p, q, cfg.pl, cfg.ql)
    cm = CommModel(cluster, topo)
    node = cluster.node
    threads = cfg.fact_threads or time_sharing_threads(node.cpu.cores, cfg.pl, cfg.ql)

    # ---- the vectorized _sizes: pure int64 block-cyclic arithmetic ----
    k = np.arange(nblocks, dtype=np.int64)
    j0 = k * nb
    jb = np.minimum(nb, n - j0)
    j0n = j0 + jb
    jb_next = np.where(j0n < n, np.minimum(nb, n - j0n), 0)
    has_next = jb_next > 0
    blk = np.where(has_next, k + 1, k)
    r_f = blk % p
    c_f = np.where(has_next, blk % q, (n // nb) % q)
    numroc_rf = numroc_array(n, nb, r_f, p)
    m_update = numroc_rf - num_local_before_array(j0n, nb, r_f, p)
    j1 = np.minimum(n, j0n + jb_next)
    m_l2 = numroc_rf - num_local_before_array(j1, nb, r_f, p)
    m_fact = numroc_array(n - j0n, nb, 0, p)
    nloc_aug = numroc_array(n + 1, nb, c_f, q)
    lo = num_local_before_array(j0n, nb, c_f, q)
    w_trail = nloc_aug - lo

    zeros = np.zeros(nblocks, dtype=np.int64)
    if cfg.schedule is Schedule.SPLIT_UPDATE:
        n2 = np.rint(cfg.split_fraction * nloc_aug).astype(np.int64)
        sp = np.maximum(0, (nloc_aug - n2) // nb * nb)
        is_split = lo < sp
        mode = np.where(is_split, MODE_SPLIT, MODE_LOOKAHEAD).astype(np.int8)
        w_la = jb_next
        w_left = np.where(is_split, sp - lo - w_la, w_trail - w_la)
        w_right = np.where(is_split, nloc_aug - sp, zeros)
    elif cfg.schedule is Schedule.LOOKAHEAD:
        mode = np.full(nblocks, MODE_LOOKAHEAD, dtype=np.int8)
        w_la = jb_next
        w_left = w_trail - w_la
        w_right = zeros
    else:  # CLASSIC
        mode = np.full(nblocks, MODE_CLASSIC, dtype=np.int8)
        w_la = zeros
        w_left = w_trail
        w_right = zeros

    # ---- FACT of panel k+1 plus its transfers and broadcast ----
    fact = np.zeros(nblocks, dtype=np.float64)
    lbcast = np.zeros(nblocks, dtype=np.float64)
    d2h = np.zeros(nblocks, dtype=np.float64)
    h2d = np.zeros(nblocks, dtype=np.float64)
    idx = np.nonzero(has_next)[0]
    if idx.size:
        jbn = jb_next[idx]
        base = fact_seconds_array(
            node.cpu, np.maximum(m_fact, jb_next)[idx], jbn, threads
        )
        allred = np.empty(idx.size, dtype=np.float64)
        for cc in np.unique(c_f[idx]):
            sel = c_f[idx] == cc
            allred[sel] = cm.allreduce_seconds_array(
                topo.col_members(int(cc)),
                2.0 * 8.0 * jbn[sel].astype(np.float64),
                per_hop_overhead=5e-6,
            )
        fact[idx] = base + jbn * allred
        panel_bytes = 8.0 * (m_l2[idx] * jbn + jbn**2 + jbn + 4)
        lbcast[idx] = cm.bcast_seconds_array(
            topo.row_members(0), panel_bytes, cfg.bcast
        )
        move = 8.0 * m_fact[idx] * jbn
        d2h[idx] = transfer_seconds_array(node.d2h, move)
        h2d[idx] = transfer_seconds_array(node.h2d, move)

    la_g, la_c, la_sc, la_t, la_u = _section_arrays(cfg, cm, c_f, m_update, jb, w_la)
    left = _section_arrays(cfg, cm, c_f, m_update, jb, w_left)
    right = _section_arrays(cfg, cm, c_f, m_update, jb, w_right)

    preamble = (
        preamble_costs(cfg, cluster, cm=cm)
        if cfg.schedule is not Schedule.CLASSIC
        else None
    )
    return CostArrays(
        k=k,
        mode=mode,
        fact=fact,
        lbcast=lbcast,
        d2h=d2h,
        h2d=h2d,
        la_gather=la_g,
        la_comm=la_c,
        la_scatter=la_sc,
        la_dtrsm=la_t,
        la_dgemm=la_u,
        left_gather=left[0],
        left_comm=left[1],
        left_scatter=left[2],
        left_dtrsm=left[3],
        left_dgemm=left[4],
        right_gather=right[0],
        right_comm=right[1],
        right_scatter=right[2],
        right_dtrsm=right[3],
        right_dgemm=right[4],
        preamble=preamble,
    )
