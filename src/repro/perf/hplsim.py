"""Full-benchmark performance simulation: the paper's Figure 7 and score.

``simulate_run`` prices every iteration with the ledger, chains the
schedule's task DAGs, executes them on the in-order-resource engine, and
extracts exactly the series rocHPL's per-iteration timers print:

* total time per iteration and GPU active time per iteration (the black
  and green lines of Fig. 7),
* stacked FACT / MPI / host-transfer time per iteration (the red, blue
  and yellow areas),

plus run-level aggregates: the final score, the fraction of runtime in
the fully-hidden regime, and the early-regime running throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..machine.spec import ClusterSpec
from ..sched.engine import simulate
from ..sched.fastpath import evaluate
from ..sched.timeline import build_run
from .fastledger import run_cost_arrays
from .ledger import PerfConfig, run_costs


@dataclass
class IterBreakdown:
    """One iteration's timing record (one point of each Fig. 7 series)."""

    k: int
    time: float  # wall time this iteration added to the run
    gpu_active: float  # GPU busy seconds within the iteration
    fact: float  # CPU panel-factorization seconds
    mpi: float  # MPI communication seconds
    transfer: float  # host-device transfer seconds

    @property
    def hidden(self) -> bool:
        """Is everything hidden behind GPU activity (iter time == GPU time)?"""
        return self.time <= self.gpu_active * 1.02 + 1e-9


@dataclass
class RunReport:
    """Aggregate result of one simulated benchmark run."""

    cfg: PerfConfig
    makespan: float
    score_tflops: float
    iterations: list[IterBreakdown] = field(default_factory=list)

    @property
    def hidden_time_fraction(self) -> float:
        """Fraction of wall time spent in fully-hidden iterations.

        The paper reports ~75 % for the split update on one node.
        """
        hidden = sum(it.time for it in self.iterations if it.hidden)
        total = sum(it.time for it in self.iterations)
        return hidden / total if total else 0.0

    @property
    def hidden_iteration_fraction(self) -> float:
        """Fraction of iterations that are fully hidden (~50 % in Sec. V)."""
        if not self.iterations:
            return 0.0
        return sum(1 for it in self.iterations if it.hidden) / len(self.iterations)

    def early_regime_tflops(self, fraction: float = 0.2) -> float:
        """Running throughput over the first ``fraction`` of iterations.

        The paper reports ~175 TFLOPS (90 % of the 196 ceiling) here.
        """
        cut = max(1, int(len(self.iterations) * fraction))
        head = self.iterations[:cut]
        seconds = sum(it.time for it in head)
        flops = 0.0
        n, nb = self.cfg.n, self.cfg.nb
        for it in head:
            trail = n - it.k * nb
            jb = min(nb, trail)
            # flops of iteration k: panel + dtrsm + rank-jb update
            flops += 2.0 * (trail - jb) * (trail + 1 - jb) * jb + jb * jb * (
                trail + 1 - jb
            )
        return flops / seconds / 1e12 if seconds > 0 else 0.0


def simulate_run(
    cfg: PerfConfig, cluster: ClusterSpec, fidelity: str | None = None
) -> RunReport:
    """Simulate a full benchmark run; returns the per-iteration report.

    ``fidelity`` overrides ``cfg.fidelity``: ``"fast"`` evaluates the
    closed-form vectorized timeline (bit-identical report, order of
    magnitude faster), ``"full"`` walks the per-task object engine (use
    it when traces or per-message simmpi events are needed).
    """
    mode = fidelity if fidelity is not None else cfg.fidelity
    if mode == "full":
        return _simulate_run_full(cfg, cluster)
    if mode != "fast":
        raise ConfigError(f"fidelity must be 'fast' or 'full', got {mode!r}")
    arrays = run_cost_arrays(cfg, cluster)
    timeline = evaluate(arrays)
    report = RunReport(
        cfg=cfg,
        makespan=timeline.makespan,
        score_tflops=cfg.total_flops / timeline.makespan / 1e12,
    )
    prev_end = timeline.preamble_end
    ends = timeline.end.tolist()
    gpu = timeline.gpu_busy.tolist()
    fact = timeline.fact_busy.tolist()
    mpi = timeline.mpi_busy.tolist()
    transfer = timeline.transfer_busy.tolist()
    for i, k in enumerate(arrays.k.tolist()):
        end = ends[i]
        report.iterations.append(
            IterBreakdown(
                k=k,
                time=end - prev_end,
                gpu_active=gpu[i],
                fact=fact[i],
                mpi=mpi[i],
                transfer=transfer[i],
            )
        )
        prev_end = end
    return report


def _simulate_run_full(cfg: PerfConfig, cluster: ClusterSpec) -> RunReport:
    """The seed per-task object engine (``fidelity="full"``)."""
    costs = run_costs(cfg, cluster)
    tasks = build_run(costs)
    timeline = simulate(tasks)
    report = RunReport(
        cfg=cfg,
        makespan=timeline.makespan,
        score_tflops=cfg.total_flops / timeline.makespan / 1e12,
    )
    prev_end = 0.0
    for c in costs:
        if c.k < 0:
            _, prev_end = timeline.span_of_tag(c.k)
            continue
        _, end = timeline.span_of_tag(c.k)
        report.iterations.append(
            IterBreakdown(
                k=c.k,
                time=end - prev_end,
                gpu_active=timeline.busy_in_tag(c.k, "gpu"),
                fact=timeline.phase_in_tag(c.k, "FACT"),
                mpi=timeline.phase_in_tag(c.k, "MPI"),
                transfer=timeline.phase_in_tag(c.k, "TRANSFER"),
            )
        )
        prev_end = end
    return report
