"""Exact per-iteration work/volume ledger, priced into task durations.

For each iteration ``k`` the ledger computes -- from the same block-cyclic
index math the numeric engine uses -- how many flops and bytes each phase
moves at the *focal* process (the owner of panel ``k+1``'s block, i.e. the
process whose FACT and look-ahead sit on the critical path, which is also
the process rocHPL's per-iteration timers follow).  The machine models then
convert work into seconds, producing the
:class:`~repro.sched.timeline.IterCosts` the timeline simulator consumes.

The integration tests cross-check these formulas against the flop/byte
counts *measured* by the instrumented numeric engine at small sizes, so
the performance simulation provably prices the same algorithm the numeric
engine executes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import BcastVariant, Schedule, SwapVariant
from ..errors import ConfigError
from ..grid.block_cyclic import num_local_before, numroc
from ..machine.comm_model import CommModel, GridTopology
from ..machine.cpu_model import fact_seconds
from ..machine.gemm_model import dgemm_seconds, dtrsm_seconds, rowcopy_seconds
from ..machine.spec import ClusterSpec
from ..machine.transfer_model import transfer_seconds
from ..sched.timeline import IterCosts, SectionCosts


@dataclass(frozen=True)
class PerfConfig:
    """A benchmark run as the performance simulator sees it.

    Attributes:
        n, nb, p, q: Global problem and grid (as in ``HPLConfig``).
        pl, ql: Node-local grid (rocHPL's launch-wrapper input); determines
            both node placement and the CPU core time-sharing factor.
        schedule: Iteration schedule.
        split_fraction: Right-section fraction for the split update.
        bcast: Panel broadcast algorithm.
        swap: Row-swapping algorithm (LONG / BINEXCH / MIX).
        swap_threshold: MIX's width threshold for binary exchange.
        fact_threads: Override for FACT threads per process; 0 means use
            the Section III.B time-sharing formula ``T = 1 + Cbar / pl``.
        fidelity: Default simulator engine for this config -- ``"fast"``
            (vectorized closed-form timeline, bit-identical reports) or
            ``"full"`` (per-task object engine, required for traces and
            per-message simmpi events).
    """

    n: int
    nb: int
    p: int
    q: int
    pl: int
    ql: int
    schedule: Schedule = Schedule.SPLIT_UPDATE
    split_fraction: float = 0.5
    bcast: BcastVariant = BcastVariant.ONE_RING_M
    swap: SwapVariant = SwapVariant.LONG
    swap_threshold: int = 64
    fact_threads: int = 0
    fidelity: str = "fast"

    def __post_init__(self) -> None:
        if self.p % self.pl or self.q % self.ql:
            raise ConfigError(
                f"node-local {self.pl}x{self.ql} does not tile {self.p}x{self.q}"
            )
        if self.fidelity not in ("fast", "full"):
            raise ConfigError(
                f"fidelity must be 'fast' or 'full', got {self.fidelity!r}"
            )

    @property
    def nblocks(self) -> int:
        return math.ceil(self.n / self.nb)

    @property
    def total_flops(self) -> float:
        return (2.0 / 3.0) * self.n**3 + 1.5 * self.n**2


def time_sharing_threads(cores: int, pl: int, ql: int) -> int:
    """Section III.B: FACT threads per process under core time-sharing.

    With ``C`` cores and a ``pl x ql`` node-local grid, each rank gets a
    root core; the remaining ``Cbar = C - pl*ql`` form a pool split into
    ``pl`` row groups, so each FACT uses ``T = 1 + Cbar / pl`` threads.
    """
    cbar = cores - pl * ql
    if cbar < 0:
        raise ConfigError(f"{pl * ql} ranks exceed {cores} cores")
    return 1 + cbar // pl


@dataclass
class _Sizes:
    """Local extents at the focal process for one iteration."""

    m_update: int  # local rows with position >= (k+1)*nb (update target)
    m_l2: int  # local rows below panel k+1's block (L2 height)
    m_fact: int  # tallest per-process share of panel k+1's rows
    w_la: int  # look-ahead section local width
    w_left: int
    w_right: int
    jb: int  # panel k width
    jb_next: int  # panel k+1 width (0 when none)
    mode: str
    c_f: int = 0  # focal grid column


def _sizes(cfg: PerfConfig, k: int) -> _Sizes:
    n, nb, p, q = cfg.n, cfg.nb, cfg.p, cfg.q
    j0 = k * nb
    jb = min(nb, n - j0)
    j0n = j0 + jb
    jb_next = min(nb, n - j0n) if j0n < n else 0
    # Focal process: owner of panel k+1's block.  The last iteration has no
    # next panel; its remaining work is the RHS column's swap/update, so the
    # focal column is the RHS owner's.
    blk = (k + 1) if jb_next else k
    r_f = blk % p
    c_f = blk % q if jb_next else (n // nb) % q
    m_update = numroc(n, nb, r_f, p) - num_local_before(j0n, nb, r_f, p)
    j1 = min(n, j0n + jb_next)
    m_l2 = numroc(n, nb, r_f, p) - num_local_before(j1, nb, r_f, p)
    # Tallest per-process trailing share: with j0n block-aligned this is
    # the shifted-frame proc-0 share (equals max over r of the trailing
    # numroc; property-tested equivalence).
    m_fact = numroc(n - j0n, nb, 0, p)
    nloc_aug = numroc(n + 1, nb, c_f, q)
    lo = num_local_before(j0n, nb, c_f, q)
    w_trail = nloc_aug - lo
    w_la = jb_next  # the focal column owns panel k+1's columns
    if cfg.schedule is Schedule.SPLIT_UPDATE:
        n2 = int(round(cfg.split_fraction * nloc_aug))
        sp = max(0, ((nloc_aug - n2) // nb) * nb)
        if lo < sp:
            return _Sizes(
                m_update, m_l2, m_fact, w_la, sp - lo - w_la, nloc_aug - sp,
                jb, jb_next, "split", c_f,
            )
        return _Sizes(
            m_update, m_l2, m_fact, w_la, w_trail - w_la, 0, jb, jb_next,
            "lookahead", c_f,
        )
    if cfg.schedule is Schedule.LOOKAHEAD:
        return _Sizes(
            m_update, m_l2, m_fact, w_la, w_trail - w_la, 0, jb, jb_next,
            "lookahead", c_f,
        )
    return _Sizes(
        m_update, m_l2, m_fact, 0, w_trail, 0, jb, jb_next, "classic", c_f
    )


def _section(
    cm: CommModel,
    cluster: ClusterSpec,
    topo: GridTopology,
    col: int,
    m_update: int,
    jb: int,
    w: int,
    swap: SwapVariant = SwapVariant.LONG,
    swap_threshold: int = 64,
) -> SectionCosts:
    """Price one column section's RS + update pipeline."""
    if w <= 0:
        return SectionCosts()
    gpu = cluster.node.gpu
    members = topo.col_members(col)
    root = (0, col)  # representative block-row owner in this column
    u_bytes = 8.0 * jb * w
    use_binexch = swap is SwapVariant.BINEXCH or (
        swap is SwapVariant.MIX and w <= swap_threshold
    )
    if use_binexch:
        assemble = cm.binexch_allgather_seconds(members, u_bytes)
    else:
        assemble = cm.allgatherv_seconds(members, u_bytes)
    comm = assemble + cm.scatterv_seconds(
        root, members, u_bytes * (topo.p - 1) / max(topo.p, 1)
    )
    return SectionCosts(
        gather=rowcopy_seconds(gpu, u_bytes),
        comm=comm,
        scatter=rowcopy_seconds(gpu, u_bytes),
        dtrsm=dtrsm_seconds(gpu, jb, w),
        dgemm=dgemm_seconds(gpu, m_update, w, jb),
    )


def iteration_costs(
    cfg: PerfConfig,
    cluster: ClusterSpec,
    k: int,
    cm: CommModel | None = None,
) -> IterCosts:
    """Price iteration ``k`` (RS/update of panel ``k``, FACT of ``k+1``).

    ``cm`` may be supplied to amortize topology construction over a run.
    """
    if cm is None:
        cm = CommModel(cluster, GridTopology(cfg.p, cfg.q, cfg.pl, cfg.ql))
    topo = cm.topo
    node = cluster.node
    sz = _sizes(cfg, k)
    c_f = sz.c_f
    threads = cfg.fact_threads or time_sharing_threads(node.cpu.cores, cfg.pl, cfg.ql)

    # FACT of panel k+1: CPU compute plus the per-column pivot collectives.
    if sz.jb_next:
        col_members = topo.col_members(c_f)
        fact = fact_seconds(node.cpu, max(sz.m_fact, sz.jb_next), sz.jb_next, threads)
        fact += sz.jb_next * cm.allreduce_seconds(
            col_members, 2.0 * 8.0 * sz.jb_next, per_hop_overhead=5e-6
        )
        panel_bytes = 8.0 * (sz.m_l2 * sz.jb_next + sz.jb_next**2 + sz.jb_next + 4)
        lbcast = cm.bcast_seconds(topo.row_members(0), panel_bytes, cfg.bcast)
        move = 8.0 * sz.m_fact * sz.jb_next
        d2h = transfer_seconds(node.d2h, move)
        h2d = transfer_seconds(node.h2d, move)
    else:
        fact = lbcast = d2h = h2d = 0.0

    return IterCosts(
        k=k,
        mode=sz.mode,
        fact=fact,
        lbcast=lbcast,
        d2h=d2h,
        h2d=h2d,
        la=_section(
            cm, cluster, topo, c_f, sz.m_update, sz.jb, sz.w_la,
            cfg.swap, cfg.swap_threshold,
        ),
        left=_section(
            cm, cluster, topo, c_f, sz.m_update, sz.jb, sz.w_left,
            cfg.swap, cfg.swap_threshold,
        ),
        right=_section(
            cm, cluster, topo, c_f, sz.m_update, sz.jb, sz.w_right,
            cfg.swap, cfg.swap_threshold,
        ),
    )


def preamble_costs(
    cfg: PerfConfig, cluster: ClusterSpec, cm: CommModel | None = None
) -> IterCosts:
    """FACT + LBCAST of panel 0 before iteration 0 (``k = -1`` by convention).

    Shared by the scalar ledger and the vectorized fast ledger so both
    engines price the preamble through literally the same code.
    """
    if cm is None:
        cm = CommModel(cluster, GridTopology(cfg.p, cfg.q, cfg.pl, cfg.ql))
    topo = cm.topo
    node = cluster.node
    threads = cfg.fact_threads or time_sharing_threads(
        node.cpu.cores, cfg.pl, cfg.ql
    )
    jb = min(cfg.nb, cfg.n)
    m_fact = numroc(cfg.n, cfg.nb, 0, cfg.p)
    fact = fact_seconds(node.cpu, max(m_fact, jb), jb, threads)
    fact += jb * cm.allreduce_seconds(
        topo.col_members(0), 2.0 * 8.0 * jb, per_hop_overhead=5e-6
    )
    panel_bytes = 8.0 * (m_fact * jb + jb * jb + jb + 4)
    return IterCosts(
        k=-1,
        mode="preamble",
        fact=fact,
        lbcast=cm.bcast_seconds(topo.row_members(0), panel_bytes, cfg.bcast),
        d2h=transfer_seconds(node.d2h, 8.0 * m_fact * jb),
        h2d=transfer_seconds(node.h2d, 8.0 * m_fact * jb),
    )


def run_costs(cfg: PerfConfig, cluster: ClusterSpec) -> list[IterCosts]:
    """Costs for the whole run, preamble included where the schedule needs it."""
    costs: list[IterCosts] = []
    topo = GridTopology(cfg.p, cfg.q, cfg.pl, cfg.ql)
    cm = CommModel(cluster, topo)
    if cfg.schedule is not Schedule.CLASSIC:
        costs.append(preamble_costs(cfg, cluster, cm=cm))
    for k in range(cfg.nblocks):
        costs.append(iteration_costs(cfg, cluster, k, cm=cm))
    return costs
