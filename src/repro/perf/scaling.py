"""Weak-scaling study (the paper's Figure 8).

For each node count the paper keeps the grid "square, or with a 2:1 ratio
of P to Q", maximizes node-local process columns (``1 x 8`` once Q >= 8),
scales N to fill the GPUs' HBM, and holds NB = 512 and the 50 % split.
``weak_scaling`` reproduces exactly that sweep on the performance
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import Schedule
from ..errors import ConfigError
from ..machine.frontier import crusher_cluster
from ..machine.spec import ClusterSpec
from .hplsim import RunReport, simulate_run
from .ledger import PerfConfig


def choose_grid(nranks: int) -> tuple[int, int]:
    """Square-or-2:1 grid for ``nranks`` (P >= Q), the paper's policy."""
    if nranks < 1:
        raise ConfigError(f"nranks must be >= 1, got {nranks}")
    best: tuple[int, int] | None = None
    for q in range(1, int(math.isqrt(nranks)) + 1):
        if nranks % q:
            continue
        p = nranks // q
        if best is None or p / q < best[0] / best[1]:
            best = (p, q)
    assert best is not None
    return best


def node_local_grid(p: int, q: int, gpus: int = 8) -> tuple[int, int]:
    """Node-local grid maximizing process columns (1x8 once Q >= gpus)."""
    ql = math.gcd(q, gpus)
    pl = gpus // ql
    while p % pl or q % ql:
        # fall back toward taller local grids until they tile the globals
        if ql == 1:
            raise ConfigError(f"cannot tile {p}x{q} with {gpus} ranks per node")
        ql //= 2
        pl = gpus // ql
    return pl, ql


def scaled_n(nnodes: int, n_single: int, nb: int) -> int:
    """Fill-HBM problem size: N grows with sqrt(nodes), NB-aligned."""
    return int(round(n_single * math.sqrt(nnodes) / nb)) * nb


@dataclass
class ScalePoint:
    """One node count of the weak-scaling sweep."""

    nnodes: int
    n: int
    p: int
    q: int
    report: RunReport

    @property
    def tflops(self) -> float:
        return self.report.score_tflops


def weak_scaling(
    node_counts: list[int] | None = None,
    n_single: int = 256_000,
    nb: int = 512,
    schedule: Schedule = Schedule.SPLIT_UPDATE,
    cluster_factory=crusher_cluster,
    fidelity: str | None = None,
) -> list[ScalePoint]:
    """Run the Fig. 8 sweep; default node counts 1, 2, 4, ..., 128.

    ``fidelity`` selects the simulator engine per point (``"fast"`` /
    ``"full"``); ``None`` uses each config's default.
    """
    if node_counts is None:
        node_counts = [2**i for i in range(8)]
    points: list[ScalePoint] = []
    for nnodes in node_counts:
        cluster: ClusterSpec = cluster_factory(nnodes)
        gpus = cluster.node.gpus
        p, q = choose_grid(nnodes * gpus)
        if nnodes == 1:
            pl, ql = p, q  # single node: the whole grid is node-local
        else:
            pl, ql = node_local_grid(p, q, gpus)
        n = scaled_n(nnodes, n_single, nb)
        cfg = PerfConfig(
            n=n, nb=nb, p=p, q=q, pl=pl, ql=ql, schedule=schedule
        )
        points.append(
            ScalePoint(
                nnodes=nnodes, n=n, p=p, q=q,
                report=simulate_run(cfg, cluster, fidelity=fidelity),
            )
        )
    return points


def strong_scaling(
    n: int,
    node_counts: list[int] | None = None,
    nb: int = 512,
    schedule: Schedule = Schedule.SPLIT_UPDATE,
    cluster_factory=crusher_cluster,
    fidelity: str | None = None,
) -> list[ScalePoint]:
    """Fixed-N scaling (an extension beyond the paper's weak-scaling study).

    Strong scaling is HPL's hard mode: per-rank work shrinks as nodes are
    added while the latency-bound tail does not, so efficiency decays much
    faster than in Fig. 8 -- a useful contrast the paper implies but does
    not plot.
    """
    if node_counts is None:
        node_counts = [1, 2, 4, 8]
    points: list[ScalePoint] = []
    for nnodes in node_counts:
        cluster: ClusterSpec = cluster_factory(nnodes)
        gpus = cluster.node.gpus
        p, q = choose_grid(nnodes * gpus)
        pl, ql = (p, q) if nnodes == 1 else node_local_grid(p, q, gpus)
        cfg = PerfConfig(n=n, nb=nb, p=p, q=q, pl=pl, ql=ql, schedule=schedule)
        points.append(
            ScalePoint(
                nnodes=nnodes, n=n, p=p, q=q,
                report=simulate_run(cfg, cluster, fidelity=fidelity),
            )
        )
    return points


def strong_scaling_efficiency(points: list[ScalePoint]) -> list[float]:
    """Speedup over the first point, normalized by the node ratio."""
    if not points:
        return []
    base = points[0]
    return [
        (pt.tflops / base.tflops) / (pt.nnodes / base.nnodes) for pt in points
    ]


def weak_scaling_efficiency(points: list[ScalePoint]) -> list[float]:
    """Per-point efficiency against perfect scaling from the first point."""
    if not points:
        return []
    base = points[0].tflops / points[0].nnodes
    return [pt.tflops / (base * pt.nnodes) for pt in points]
