"""Fig. 7 from the *numeric* engine's own instrumentation.

The performance simulator produces modeled per-iteration breakdowns; this
module produces the measured twin from a real `run_hpl` run's phase
timers.  The wall times are host times of the Python engine (diagnostic,
not the paper's hardware), but the *flop series* is exact and its shape —
cubic-decay UPDATE work against linearly-decaying FACT work — is the
arithmetic skeleton underneath the paper's two regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hpl.timers import Timers

#: Phases reported per iteration, in display order.
PHASES = ("FACT", "LBCAST", "RS", "UPDATE")


@dataclass
class MeasuredIteration:
    """One iteration of a numeric run, aggregated across ranks."""

    k: int
    seconds: dict[str, float] = field(default_factory=dict)
    flops: dict[str, float] = field(default_factory=dict)
    d2h_bytes: float = 0.0
    h2d_bytes: float = 0.0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def update_share(self) -> float:
        """Fraction of this iteration's flops in UPDATE (GPU-side work)."""
        total = sum(self.flops.values())
        return self.flops.get("UPDATE", 0.0) / total if total else 0.0


def measured_breakdown(all_timers: list[Timers]) -> list[MeasuredIteration]:
    """Aggregate every rank's per-iteration ledgers into one series.

    Seconds and flops are summed across ranks (ranks execute phases
    concurrently in the real system, so sums are *work*, not critical
    path); the preamble iteration (k = -1) is folded into iteration 0.
    """
    by_k: dict[int, MeasuredIteration] = {}
    for timers in all_timers:
        for ledger in timers.iters:
            k = max(ledger.k, 0)
            row = by_k.setdefault(k, MeasuredIteration(k))
            for label, rec in ledger.phases.items():
                if label == "TRANSFER":
                    row.d2h_bytes += rec.d2h_bytes
                    row.h2d_bytes += rec.h2d_bytes
                    continue
                row.seconds[label] = row.seconds.get(label, 0.0) + rec.seconds
                row.flops[label] = row.flops.get(label, 0.0) + rec.flops
    return [by_k[k] for k in sorted(by_k)]


def format_measured_table(rows: list[MeasuredIteration], stride: int = 1) -> str:
    """Fig. 7-shaped table of the numeric run's per-iteration work."""
    out = [
        f"{'iter':>6s}"
        + "".join(f"{p + ' Mf':>12s}" for p in PHASES)
        + f"{'xfer KB':>10s}{'upd %':>7s}"
    ]
    for row in rows[::stride]:
        cells = "".join(
            f"{row.flops.get(p, 0.0) / 1e6:>12.3f}" for p in PHASES
        )
        xfer = (row.d2h_bytes + row.h2d_bytes) / 1e3
        out.append(
            f"{row.k:>6d}{cells}{xfer:>10.1f}{row.update_share * 100:>7.1f}"
        )
    return "\n".join(out) + "\n"


def measured_chart(rows: list[MeasuredIteration], width: int = 64, height: int = 14) -> str:
    """ASCII chart of UPDATE vs FACT flops per iteration.

    The crossing of these two series is the arithmetic reason the paper's
    tail regime exists: UPDATE work decays cubically toward the end while
    FACT work decays only linearly.
    """
    from .ascii_chart import line_chart

    ks = [float(r.k) for r in rows]
    return line_chart(
        {
            "UPDATE Mflop": (ks, [r.flops.get("UPDATE", 0.0) / 1e6 for r in rows]),
            "FACT Mflop": (ks, [r.flops.get("FACT", 0.0) / 1e6 for r in rows]),
        },
        width=width,
        height=height,
        title="measured per-iteration work (numeric engine)",
        xlabel="iteration",
        ylabel="Mflop",
    )
