"""FACT multi-threading study (the paper's Figure 5).

Performance in GFLOPS of factoring an ``M x NB`` matrix on a single
process (no MPI pivot exchange) for NB = 512, M a range of multiples of
NB, and thread counts in powers of two from 1 to 64 -- the exact sweep of
Fig. 5, evaluated on the CPU panel model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.cpu_model import fact_gflops
from ..machine.frontier import crusher_node
from ..machine.spec import CPUSpec


@dataclass
class FactCurve:
    """One thread-count curve of Fig. 5."""

    threads: int
    m_values: list[int]
    gflops: list[float]


def fact_sweep(
    cpu: CPUSpec | None = None,
    nb: int = 512,
    m_multiples: list[int] | None = None,
    thread_counts: list[int] | None = None,
) -> list[FactCurve]:
    """The Fig. 5 sweep: GFLOPS vs M for each thread count."""
    if cpu is None:
        cpu = crusher_node().cpu
    if m_multiples is None:
        m_multiples = [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128]
    if thread_counts is None:
        thread_counts = [1, 2, 4, 8, 16, 32, 64]
    curves = []
    for t in thread_counts:
        ms = [mult * nb for mult in m_multiples]
        curves.append(
            FactCurve(
                threads=t,
                m_values=ms,
                gflops=[fact_gflops(cpu, m, nb, t) for m in ms],
            )
        )
    return curves
