"""The host-resident baseline HPL design (the paper's related work).

Before HBM capacities allowed the whole matrix on the accelerator, HPL
implementations kept ``A`` in host DDR and streamed tiles of the trailing
update through the GPU (Fatica 2009; Endo & Matsuoka; Kistler et al.;
Wang/Rohr at petascale).  The update's arithmetic intensity per streamed
byte is fixed by NB, so the achievable DGEMM rate is capped by the
host-device link:

    rate_cap = link_bw * NB / 24 bytes-per-flop-pair

(each trailing element is read and written once, and the corresponding
L/U tiles stream in, ~3 x 8 bytes of PCIe traffic per 2·NB flops).  The
paper's argument — "the computational throughput of modern accelerators
is so large that the entire matrix must be stored in HBM" — is exactly
the statement that this cap fell far below the device's DGEMM rate.

This module models that baseline so the comparison is quantitative: a
crossover sweep shows pipelining saturating early-2010s GPUs but starving
an MI250X to a small fraction of its capability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.gemm_model import dgemm_tflops
from ..machine.spec import ClusterSpec, LinkSpec
from .ledger import PerfConfig

#: Bytes crossing the host link per matrix element per rank-NB update:
#: read + write of the trailing element, plus the streamed L/U tiles.
_BYTES_PER_ELEMENT = 24.0


@dataclass
class HostResidentPoint:
    """Outcome of the host-resident model for one configuration."""

    n: int
    nb: int
    device_tflops: float  # what the GPU could do
    streamed_tflops: float  # what the link lets it do
    score_tflops: float  # overall benchmark estimate
    compute_bound: bool  # is the device (not the link) the limiter?

    @property
    def device_utilization(self) -> float:
        return self.streamed_tflops / self.device_tflops


def update_rate_cap_tflops(link: LinkSpec, nb: int) -> float:
    """Link-imposed ceiling on the streamed trailing-update rate.

    ``2 * nb`` flops ride on every ``_BYTES_PER_ELEMENT`` bytes moved.
    """
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    return link.bandwidth_gbs * 1e9 * 2.0 * nb / _BYTES_PER_ELEMENT / 1e12


def simulate_host_resident(
    cfg: PerfConfig, cluster: ClusterSpec, pcie: LinkSpec | None = None
) -> HostResidentPoint:
    """Estimate the host-resident pipelined design's score.

    The per-device DGEMM rate is the minimum of the device's own rate and
    the link cap; the benchmark-level score applies the same
    update-dominance profile as the resident design (the trailing update
    is ~95 % of useful flops), plus the un-hidable panel/backsolve tail
    approximated at the paper's resident-design overhead.
    """
    node = cluster.node
    link = pcie if pcie is not None else node.h2d
    gpu = node.gpu
    device = dgemm_tflops(gpu, 60_000, 120_000, cfg.nb)
    cap = update_rate_cap_tflops(link, cfg.nb)
    streamed = min(device, cap)
    # Crude benchmark-level derating mirroring the resident design's
    # observed tail share (score ~= 0.78 x sustained update rate).
    ranks = cfg.p * cfg.q
    score = 0.78 * streamed * ranks
    return HostResidentPoint(
        n=cfg.n,
        nb=cfg.nb,
        device_tflops=device,
        streamed_tflops=streamed,
        score_tflops=score,
        compute_bound=device <= cap,
    )


def crossover_sweep(
    cluster: ClusterSpec,
    nb: int = 512,
    scales: list[float] | None = None,
    pcie: LinkSpec | None = None,
) -> list[tuple[float, HostResidentPoint]]:
    """Sweep device speed to find where pipelining stops keeping up.

    Returns ``(compute_scale, point)`` pairs; the crossover is the first
    scale at which the design is link-bound.  At MI250X-class rates the
    utilization collapses -- the quantitative form of the paper's
    "impractical".
    """
    import dataclasses

    if scales is None:
        scales = [1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0]
    out = []
    for scale in scales:
        gpu = dataclasses.replace(
            cluster.node.gpu,
            peak_fp64_matrix_tflops=cluster.node.gpu.peak_fp64_matrix_tflops
            * scale,
        )
        node = dataclasses.replace(cluster.node, gpu=gpu)
        scaled = dataclasses.replace(cluster, node=node)
        cfg = PerfConfig(n=65_536, nb=nb, p=4, q=2, pl=4, ql=2)
        out.append((scale, simulate_host_resident(cfg, scaled, pcie)))
    return out


def required_nb_for_device(link: LinkSpec, device_tflops: float) -> int:
    """Smallest NB at which the link could feed the device.

    The paper: hiding host-device motion on modern GPUs would need
    "unreasonably large blocking parameters ... which induces bottlenecks
    in other phases" -- this computes exactly that NB.
    """
    if device_tflops <= 0:
        raise ValueError("device rate must be positive")
    nb = device_tflops * 1e12 * _BYTES_PER_ELEMENT / (2.0 * link.bandwidth_gbs * 1e9)
    return max(1, math.ceil(nb))
