"""Benchmark-level performance simulation (the paper's evaluation).

* :mod:`repro.perf.ledger` -- exact per-iteration work/volume formulas from
  the block-cyclic distribution, priced by :mod:`repro.machine` into
  :class:`~repro.sched.timeline.IterCosts`.
* :mod:`repro.perf.hplsim` -- runs the timeline simulation for a whole
  benchmark and produces the per-iteration breakdown of Fig. 7 plus the
  headline score.
* :mod:`repro.perf.scaling` -- the weak-scaling study of Fig. 8.
* :mod:`repro.perf.factsim` -- the FACT multi-threading study of Fig. 5.
* :mod:`repro.perf.generations` -- the Section V compute-vs-network sweep.
* :mod:`repro.perf.hostresident` -- the related-work host-resident baseline.
* :mod:`repro.perf.measured` -- Fig. 7's measured twin from the numeric
  engine's instrumentation.
* :mod:`repro.perf.ascii_chart` -- terminal rendering of the figures.
* :mod:`repro.perf.report` -- rocHPL-style result printers.
"""

from .ledger import PerfConfig, iteration_costs, preamble_costs, run_costs
from .fastledger import run_cost_arrays
from .hplsim import IterBreakdown, RunReport, simulate_run
from .scaling import ScalePoint, choose_grid, weak_scaling
from .factsim import fact_sweep
from .generations import GenerationPoint, generational_sweep
from .hostresident import HostResidentPoint, simulate_host_resident
from .measured import MeasuredIteration, measured_breakdown

__all__ = [
    "PerfConfig",
    "iteration_costs",
    "preamble_costs",
    "run_costs",
    "run_cost_arrays",
    "IterBreakdown",
    "RunReport",
    "simulate_run",
    "ScalePoint",
    "choose_grid",
    "weak_scaling",
    "fact_sweep",
    "GenerationPoint",
    "generational_sweep",
    "HostResidentPoint",
    "simulate_host_resident",
    "MeasuredIteration",
    "measured_breakdown",
]
