"""Per-rank communication accounting.

Every send is charged to the sender's :class:`CommStats` under the rank's
*current phase label* (set with :meth:`~repro.simmpi.communicator.Communicator.phase`).
The HPL driver labels its phases ``FACT`` / ``LBCAST`` / ``RS`` / ``UPDATE``
so the measured message counts and volumes can be cross-checked against the
analytic ledger used by the performance simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseStats:
    """Traffic attributed to one phase label on one rank."""

    msgs_sent: int = 0
    bytes_sent: int = 0
    msgs_recv: int = 0
    bytes_recv: int = 0

    def __iadd__(self, other: "PhaseStats") -> "PhaseStats":
        self.msgs_sent += other.msgs_sent
        self.bytes_sent += other.bytes_sent
        self.msgs_recv += other.msgs_recv
        self.bytes_recv += other.bytes_recv
        return self


@dataclass
class CommStats:
    """All traffic for one rank, grouped by phase label.

    Attributes:
        rank: World rank this object belongs to.
        phases: Mapping from phase label to its :class:`PhaseStats`.
        current_phase: Label newly recorded traffic is charged to.
    """

    rank: int
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    current_phase: str = "other"

    def _get(self, label: str) -> PhaseStats:
        stats = self.phases.get(label)
        if stats is None:
            stats = self.phases[label] = PhaseStats()
        return stats

    def record_send(self, nbytes: int) -> None:
        stats = self._get(self.current_phase)
        stats.msgs_sent += 1
        stats.bytes_sent += nbytes

    def record_recv(self, nbytes: int) -> None:
        stats = self._get(self.current_phase)
        stats.msgs_recv += 1
        stats.bytes_recv += nbytes

    @property
    def total(self) -> PhaseStats:
        """Aggregate over all phases."""
        agg = PhaseStats()
        for stats in self.phases.values():
            agg += stats
        return agg

    def reset(self) -> None:
        self.phases.clear()
        self.current_phase = "other"
