"""Collective algorithms implemented over point-to-point messaging.

These mirror the algorithm families Netlib HPL / rocHPL actually use:

* panel broadcast: increasing-ring (``1ring``), modified increasing-ring
  (``1ringM``), two rings (``2ring`` / ``2ringM``), binomial tree, and the
  bandwidth-optimal ``blong`` (scatter + ring allgather);
* pivot search: recursive-doubling allreduce (works for any reduction
  operator, including HPL's max-loc pivot operator);
* row swapping: ``scatterv`` and ring ``allgatherv``;
* a dissemination barrier.

Each algorithm only uses :meth:`Communicator._send_raw`/``recv`` with
reserved tags, so collectives never collide with user point-to-point
traffic.  Within one (source, tag) stream matching is FIFO, which is what
makes back-to-back collectives of the same kind pair up correctly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommError

# Reserved tag space (>= Communicator.MAX_USER_TAG = 1 << 24).
_TAG_BCAST = (1 << 24) + 1
_TAG_REDUCE = (1 << 24) + 2
_TAG_ALLREDUCE = (1 << 24) + 3
_TAG_GATHER = (1 << 24) + 4
_TAG_SCATTER = (1 << 24) + 5
_TAG_BARRIER = (1 << 24) + 6
_TAG_ALLGATHERV = (1 << 24) + 7
_TAG_BLONG = (1 << 24) + 8


def _resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Turn an op name into a combiner; ndarray-aware for sum/max/min."""
    if callable(op):
        return op
    if op == "sum":
        return lambda a, b: a + b
    if op == "max":
        return lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
    if op == "min":
        return lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
    raise CommError(f"unknown reduction op {op!r}")


# ----------------------------------------------------------------------
# Barrier
# ----------------------------------------------------------------------
def barrier(comm) -> None:
    """Dissemination barrier: ceil(log2(size)) rounds of token exchange."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        comm._send_raw(None, (rank + step) % size, _TAG_BARRIER)
        comm.recv((rank - step) % size, _TAG_BARRIER)
        step <<= 1


# ----------------------------------------------------------------------
# Broadcasts
# ----------------------------------------------------------------------
def bcast(comm, obj: Any, root: int, algo: str = "binomial") -> Any:
    """Broadcast ``obj`` from ``root``; every rank returns the payload."""
    if not 0 <= root < comm.size:
        raise CommError(f"bcast root {root} outside communicator of size {comm.size}")
    if comm.size == 1:
        return obj
    fn = _BCAST_ALGOS.get(algo)
    if fn is None:
        raise CommError(f"unknown bcast algorithm {algo!r}")
    return fn(comm, obj, root)


def _bcast_binomial(comm, obj: Any, root: int) -> Any:
    """Classic binomial tree: latency-optimal, log2(size) rounds."""
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    # Receive from parent (if not root).
    mask = 1
    while mask < size:
        if vrank & mask:
            obj = comm.recv((rank - mask) % size, _TAG_BCAST)
            break
        mask <<= 1
    # Forward to children.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            comm._send_raw(obj, (rank + mask) % size, _TAG_BCAST)
        mask >>= 1
    return obj


def _bcast_1ring(comm, obj: Any, root: int) -> Any:
    """Increasing ring: root -> root+1 -> ... -> root-1."""
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    if vrank != 0:
        obj = comm.recv((rank - 1) % size, _TAG_BCAST)
    if vrank != size - 1:
        comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    return obj


def _bcast_1ring_m(comm, obj: Any, root: int) -> Any:
    """Modified increasing ring (HPL's ``1rM``).

    The root sends to its two nearest successors; the first successor does
    not forward (it is the next panel owner and is served first so its
    critical-path work can start), the ring continues from the second.
    """
    size, rank = comm.size, comm.rank
    if size == 2:
        return _bcast_1ring(comm, obj, root)
    vrank = (rank - root) % size
    if vrank == 0:
        comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
        comm._send_raw(obj, (rank + 2) % size, _TAG_BCAST)
    elif vrank == 1:
        obj = comm.recv(root, _TAG_BCAST)
    else:
        source = root if vrank == 2 else (rank - 1) % size
        obj = comm.recv(source, _TAG_BCAST)
        if vrank != size - 1:
            comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    return obj


def _bcast_2ring(comm, obj: Any, root: int) -> Any:
    """Two rings: successors are split in half, each half forwards a ring."""
    size, rank = comm.size, comm.rank
    if size <= 3:
        return _bcast_1ring(comm, obj, root)
    vrank = (rank - root) % size
    half = (size - 1 + 1) // 2  # ring 1 covers vranks [1, half], ring 2 the rest
    if vrank == 0:
        comm._send_raw(obj, (root + 1) % size, _TAG_BCAST)
        comm._send_raw(obj, (root + half + 1) % size, _TAG_BCAST)
    elif 1 <= vrank <= half:
        source = root if vrank == 1 else (rank - 1) % size
        obj = comm.recv(source, _TAG_BCAST)
        if vrank != half:
            comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    else:
        source = root if vrank == half + 1 else (rank - 1) % size
        obj = comm.recv(source, _TAG_BCAST)
        if vrank != size - 1:
            comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    return obj


def _bcast_2ring_m(comm, obj: Any, root: int) -> Any:
    """Modified two rings: rank root+1 is served first and does not forward;
    the remaining ranks form two rings."""
    size, rank = comm.size, comm.rank
    if size <= 4:
        return _bcast_1ring_m(comm, obj, root)
    vrank = (rank - root) % size
    rest = size - 2  # vranks 2 .. size-1
    half = (rest + 1) // 2  # ring 1 covers vranks [2, 1+half]
    if vrank == 0:
        comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
        comm._send_raw(obj, (rank + 2) % size, _TAG_BCAST)
        comm._send_raw(obj, (root + 2 + half) % size, _TAG_BCAST)
    elif vrank == 1:
        obj = comm.recv(root, _TAG_BCAST)
    elif 2 <= vrank <= 1 + half:
        source = root if vrank == 2 else (rank - 1) % size
        obj = comm.recv(source, _TAG_BCAST)
        if vrank != 1 + half:
            comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    else:
        source = root if vrank == 2 + half else (rank - 1) % size
        obj = comm.recv(source, _TAG_BCAST)
        if vrank != size - 1:
            comm._send_raw(obj, (rank + 1) % size, _TAG_BCAST)
    return obj


def _bcast_blong(comm, obj: Any, root: int) -> Any:
    """Bandwidth-optimal long broadcast: scatter + ring allgather.

    Only defined for ndarray payloads (HPL applies it to the packed panel
    buffer); other payload types fall back to the binomial tree, which every
    rank learns from the metadata broadcast.
    """
    size, rank = comm.size, comm.rank
    # Everyone needs dtype/shape metadata first (small binomial bcast).
    meta = None
    if rank == root:
        if isinstance(obj, np.ndarray):
            flat = np.ascontiguousarray(obj).reshape(-1)
            meta = ("arr", flat.dtype, flat.size, obj.shape)
        else:
            meta = ("obj", obj)
    meta = _bcast_binomial(comm, meta, root)
    if meta[0] == "obj":
        return meta[1]
    _, dtype, total, shape = meta
    counts = [total // size + (1 if r < total % size else 0) for r in range(size)]
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    if rank == root:
        flat = np.ascontiguousarray(obj).reshape(-1)
        chunks = [flat[offsets[r] : offsets[r + 1]] for r in range(size)]
    else:
        chunks = None
    my_chunk = scatterv(comm, chunks, root, tag=_TAG_BLONG)
    parts = allgatherv(comm, my_chunk, tag=_TAG_BLONG)
    return np.concatenate(parts).reshape(shape)


_BCAST_ALGOS = {
    "binomial": _bcast_binomial,
    "1ring": _bcast_1ring,
    "1ringM": _bcast_1ring_m,
    "2ring": _bcast_2ring,
    "2ringM": _bcast_2ring_m,
    "blong": _bcast_blong,
}


def register_bcast(name: str, fn) -> None:
    """Register a custom broadcast algorithm under ``name``.

    The paper notes that large-scale runs eventually need communication
    routines specialized to the system's network topology, and that the
    code is kept modular so users can drop their own in; this is that
    extension point.  ``fn(comm, obj, root) -> obj`` must deliver the
    root's payload to every rank (use ``comm._send_raw`` with your own
    reserved tag, or compose the building blocks in this module).

    Built-in names cannot be replaced.
    """
    if not name or not isinstance(name, str):
        raise CommError(f"invalid bcast algorithm name {name!r}")
    if name in _BUILTIN_BCASTS:
        raise CommError(f"cannot replace built-in bcast algorithm {name!r}")
    if not callable(fn):
        raise CommError("bcast algorithm must be callable")
    _BCAST_ALGOS[name] = fn


def bcast_algorithms() -> list[str]:
    """Names of all registered broadcast algorithms."""
    return sorted(_BCAST_ALGOS)


_BUILTIN_BCASTS = frozenset(_BCAST_ALGOS)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def allreduce(comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
    """Recursive-doubling allreduce with pre/post folding for odd sizes.

    The combiner must be associative; for non-commutative combiners the
    reduction order is deterministic (rank order within each pairing), so
    all ranks agree on the result.
    """
    combine = _resolve_op(op)
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    # Fold surplus ranks down to the largest power of two.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    if rank < 2 * rem:
        if rank % 2 == 1:  # odd ranks send their value and sit out
            comm._send_raw(value, rank - 1, _TAG_ALLREDUCE)
            active_rank = -1
        else:
            other = comm.recv(rank + 1, _TAG_ALLREDUCE)
            value = combine(value, other)
            active_rank = rank // 2
    else:
        active_rank = rank - rem
    # Recursive doubling among the pof2 active ranks.
    if active_rank >= 0:
        def to_real(vr: int) -> int:
            return vr * 2 if vr < rem else vr + rem

        mask = 1
        while mask < pof2:
            partner = active_rank ^ mask
            comm._send_raw(value, to_real(partner), _TAG_ALLREDUCE)
            other = comm.recv(to_real(partner), _TAG_ALLREDUCE)
            # Deterministic order: lower active rank's value on the left.
            value = combine(value, other) if active_rank < partner else combine(other, value)
            mask <<= 1
    # Unfold: active even ranks push the result back to their odd partner.
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._send_raw(value, rank + 1, _TAG_ALLREDUCE)
        else:
            value = comm.recv(rank - 1, _TAG_ALLREDUCE)
    return value


def reduce(
    comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum", root: int = 0
) -> Any:
    """Binomial-tree reduce to ``root``; other ranks return ``None``."""
    combine = _resolve_op(op)
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            comm._send_raw(value, (rank - mask) % size, _TAG_REDUCE)
            return None
        if vrank + mask < size:
            other = comm.recv((rank + mask) % size, _TAG_REDUCE)
            value = combine(value, other)
        mask <<= 1
    return value if rank == root else None


# ----------------------------------------------------------------------
# Gather / scatter families
# ----------------------------------------------------------------------
def gather(comm, obj: Any, root: int = 0) -> list[Any] | None:
    """Gather one object per rank to ``root`` (flat, rank-ordered)."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: list[Any] = [None] * size
        out[rank] = obj
        for _ in range(size - 1):
            payload, source, _ = comm.recv_status(tag=_TAG_GATHER)
            out[source] = payload
        return out
    comm._send_raw(obj, root, _TAG_GATHER)
    return None


def allgather(comm, obj: Any) -> list[Any]:
    """Gather to rank 0 then binomial-broadcast the list."""
    gathered = gather(comm, obj, root=0)
    return bcast(comm, gathered, root=0)


def scatter(comm, objs: Sequence[Any] | None, root: int = 0) -> Any:
    """Scatter one object per rank from ``root``."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if objs is None or len(objs) != size:
            raise CommError(f"scatter root needs exactly {size} objects")
        for dest in range(size):
            if dest != rank:
                comm._send_raw(objs[dest], dest, _TAG_SCATTER)
        return objs[rank]
    return comm.recv(root, _TAG_SCATTER)


def scatterv(
    comm, chunks: Sequence[np.ndarray] | None, root: int = 0, tag: int = _TAG_SCATTER
) -> np.ndarray:
    """Scatter variable-size ndarray chunks from ``root``."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if chunks is None or len(chunks) != size:
            raise CommError(f"scatterv root needs exactly {size} chunks")
        for dest in range(size):
            if dest != rank:
                comm._send_raw(chunks[dest], dest, tag)
        return chunks[rank]
    return comm.recv(root, tag)


def gatherv(comm, chunk: np.ndarray, root: int = 0) -> list[np.ndarray] | None:
    """Gather variable-size ndarray chunks to ``root`` in rank order."""
    return gather(comm, chunk, root)


def allgatherv(comm, chunk: np.ndarray, tag: int = _TAG_ALLGATHERV) -> list[np.ndarray]:
    """Ring allgatherv: size-1 steps, each forwarding the newest block.

    Bandwidth-optimal (every rank sends/receives the total payload minus its
    own chunk once), which is why HPL uses it to assemble the pivot-row
    matrix U.  Returns the per-rank chunks in rank order.
    """
    size, rank = comm.size, comm.rank
    parts: list[np.ndarray | None] = [None] * size
    parts[rank] = chunk
    if size == 1:
        return [chunk]
    right = (rank + 1) % size
    left = (rank - 1) % size
    have = rank  # index of the newest block this rank holds
    for _ in range(size - 1):
        comm._send_raw(parts[have], right, tag)
        have = (have - 1) % size
        parts[have] = comm.recv(left, tag)
    return parts  # type: ignore[return-value]
