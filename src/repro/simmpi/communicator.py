"""Communicators: per-rank views of a message context.

A :class:`CommContext` names a group of world ranks plus a hashable context
id; a :class:`Communicator` is one rank's handle on that context.  All
point-to-point addressing is in *context ranks*; the communicator translates
to world ranks for fabric delivery.  Collectives are implemented over
point-to-point in :mod:`repro.simmpi.collectives` and exposed here as
methods for an mpi4py-like feel.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..errors import CommError
from . import collectives as coll
from .fabric import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Fabric, payload_nbytes
from .request import Request


@dataclass(frozen=True)
class CommContext:
    """An immutable communication context: a group of world ranks.

    Attributes:
        ctx_id: Hashable id separating this context's message stream from
            every other context's (the simmpi analogue of an MPI context id).
        world_ranks: World rank of each context rank, in context-rank order.
    """

    ctx_id: tuple
    world_ranks: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.world_ranks)


class Communicator:
    """One rank's handle on a communication context.

    Not thread-safe: a communicator belongs to the single rank thread that
    owns it (SPMD discipline), exactly as in MPI without
    ``MPI_THREAD_MULTIPLE``.
    """

    def __init__(self, fabric: Fabric, ctx: CommContext, rank: int):
        if not 0 <= rank < ctx.size:
            raise CommError(f"rank {rank} outside context of size {ctx.size}")
        self.fabric = fabric
        self.ctx = ctx
        self.rank = rank
        self._split_seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.ctx.size

    @property
    def world_rank(self) -> int:
        """This rank's world rank (its identity in the fabric)."""
        return self.ctx.world_ranks[self.rank]

    @property
    def stats(self):
        """This rank's :class:`~repro.simmpi.stats.CommStats`."""
        return self.fabric.stats[self.world_rank]

    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute traffic inside the ``with`` block to ``label``."""
        stats = self.stats
        previous = stats.current_phase
        stats.current_phase = label
        try:
            yield
        finally:
            stats.current_phase = previous

    def __repr__(self) -> str:
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"ctx={self.ctx.ctx_id}, world={self.world_rank})"
        )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommError(f"peer rank {peer} outside communicator of size {self.size}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager send: copies ``obj`` and returns immediately.

        Tags at or above :data:`MAX_USER_TAG` are reserved for the
        collective algorithms.
        """
        self._check_peer(dest)
        if not 0 <= tag < MAX_USER_TAG:
            raise CommError(f"user tag must be in [0, {MAX_USER_TAG}), got {tag}")
        self._send_raw(obj, dest, tag)

    def _send_raw(self, obj: Any, dest: int, tag: int) -> None:
        self.stats.record_send(payload_nbytes(obj))
        self.fabric.deliver(
            self.ctx.world_ranks[dest], self.ctx.ctx_id, self.rank, tag, obj
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        payload, _, _ = self.recv_status(source, tag)
        return payload

    def recv_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Blocking receive; returns ``(payload, source, tag)``."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        env = self.fabric.match(self.world_rank, self.ctx.ctx_id, source, tag)
        assert env is not None
        self.stats.record_recv(payload_nbytes(env.payload))
        return env.payload, env.source, env.tag

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (completes immediately: sends are eager)."""
        self.send(obj, dest, tag)
        return Request.completed()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; call :meth:`Request.wait` for the payload."""

        def fetch(block: bool) -> tuple[bool, Any]:
            env = self.fabric.match(
                self.world_rank, self.ctx.ctx_id, source, tag, block=block
            )
            if env is None:
                return False, None
            self.stats.record_recv(payload_nbytes(env.payload))
            return True, env.payload

        return Request(fetch=fetch)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already waiting."""
        box = self.fabric._boxes[self.world_rank]
        with box.cond:
            for env in box.pending:
                if env.ctx_id != self.ctx.ctx_id:
                    continue
                if source != ANY_SOURCE and env.source != source:
                    continue
                if tag == ANY_TAG:
                    if env.tag >= MAX_USER_TAG:
                        continue
                elif env.tag != tag:
                    continue
                return True
        return False

    def sendrecv(
        self, obj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        """Combined send + receive (safe because sends are eager)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------
    # Collectives (algorithms live in collectives.py)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        coll.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0, algo: str = "binomial") -> Any:
        return coll.bcast(self, obj, root, algo)

    def reduce(
        self, value: Any, op: str | Callable[[Any, Any], Any] = "sum", root: int = 0
    ) -> Any:
        return coll.reduce(self, value, op, root)

    def allreduce(self, value: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
        return coll.allreduce(self, value, op)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return coll.gather(self, obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        return coll.allgather(self, obj)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        return coll.scatter(self, objs, root)

    def scatterv(self, chunks: Sequence[np.ndarray] | None, root: int = 0) -> np.ndarray:
        return coll.scatterv(self, chunks, root)

    def gatherv(self, chunk: np.ndarray, root: int = 0) -> list[np.ndarray] | None:
        return coll.gatherv(self, chunk, root)

    def allgatherv(self, chunk: np.ndarray) -> list[np.ndarray]:
        return coll.allgatherv(self, chunk)

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Collective split into sub-communicators, MPI_Comm_split style.

        Every rank of this communicator must call ``split`` the same number
        of times in the same order (standard MPI discipline).  Ranks passing
        ``color=None`` receive ``None``.
        """
        sort_key = self.rank if key is None else key
        entries = self.allgather((color, sort_key))
        seq = self._split_seq
        self._split_seq += 1
        if color is None:
            return None
        members = [r for r, (c, _) in enumerate(entries) if c == color]
        members.sort(key=lambda r: (entries[r][1], r))
        world = tuple(self.ctx.world_ranks[r] for r in members)
        ctx = CommContext((*self.ctx.ctx_id, "s", seq, color), world)
        return Communicator(self.fabric, ctx, members.index(self.rank))

    def dup(self) -> "Communicator":
        """Collective duplicate with a fresh context id."""
        new = self.split(color=0, key=self.rank)
        assert new is not None
        return new
