"""simmpi: an in-process SPMD runtime with MPI-like semantics.

Each rank of an SPMD job runs as a Python thread; a shared
:class:`~repro.simmpi.fabric.Fabric` provides tagged point-to-point message
matching with MPI buffer semantics (payloads are copied on send).  On top of
point-to-point, :mod:`repro.simmpi.collectives` implements the collective
algorithms HPL actually uses -- ring / modified-ring / two-ring / binomial
broadcasts, recursive-doubling allreduce, scatterv, ring allgatherv and a
dissemination barrier -- so the communication *structure* of the benchmark
is faithful even though the transport is shared memory.

Typical usage::

    from repro.simmpi import run_spmd

    def main(comm):
        value = comm.allreduce(comm.rank, op="sum")
        return value

    results = run_spmd(4, main)   # [6, 6, 6, 6]
"""

from .collectives import bcast_algorithms, register_bcast
from .fabric import Fabric, ANY_SOURCE, ANY_TAG
from .communicator import Communicator, CommContext
from .launcher import run_spmd
from .request import Request
from .stats import CommStats, PhaseStats

__all__ = [
    "Fabric",
    "Communicator",
    "CommContext",
    "Request",
    "CommStats",
    "PhaseStats",
    "run_spmd",
    "register_bcast",
    "bcast_algorithms",
    "ANY_SOURCE",
    "ANY_TAG",
]
