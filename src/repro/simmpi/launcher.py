"""SPMD job launcher: one thread per rank, fail-fast error propagation.

``run_spmd`` is the simmpi analogue of ``mpiexec``: it creates a fabric,
spawns ``nranks`` threads each running the user function with its own world
communicator, and collects per-rank return values.  If any rank raises, the
fabric is aborted so every other rank's blocking receive unwinds with
:class:`~repro.errors.AbortError` instead of deadlocking, and the primary
failure is re-raised wrapped in :class:`~repro.errors.SpmdError`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import AbortError, SpmdError
from .communicator import CommContext, Communicator
from .fabric import Fabric

#: Default stack size for rank threads (recursive pfact needs headroom).
_STACK_SIZE = 8 * 1024 * 1024


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    watchdog: float | None = None,
    fabric: Fabric | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    Args:
        nranks: World size.
        fn: SPMD entry point; receives a world
            :class:`~repro.simmpi.communicator.Communicator` as its first
            argument.
        watchdog: Per-receive deadlock timeout in seconds (see
            :class:`~repro.simmpi.fabric.Fabric`).
        fabric: Optional pre-built fabric (exposes post-run statistics).

    Returns:
        ``fn``'s return value for each rank, in rank order.

    Raises:
        SpmdError: if any rank raised; carries every rank's exception.
    """
    if fabric is None:
        fabric = Fabric(nranks, watchdog=watchdog)
    elif fabric.nranks != nranks:
        raise ValueError(
            f"fabric has {fabric.nranks} ranks but run_spmd was asked for {nranks}"
        )
    world_ctx = CommContext(("world",), tuple(range(nranks)))
    results: list[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    failure_lock = threading.Lock()

    def entry(rank: int) -> None:
        comm = Communicator(fabric, world_ctx, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with failure_lock:
                failures[rank] = exc
            fabric.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

    old_stack = threading.stack_size()
    try:
        threading.stack_size(_STACK_SIZE)
        threads = [
            threading.Thread(target=entry, args=(rank,), name=f"simmpi-rank-{rank}")
            for rank in range(nranks)
        ]
    finally:
        threading.stack_size(old_stack)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if failures:
        # AbortError failures are secondary (caused by the primary failure);
        # only report them if nothing else explains the crash.
        primary = {r: e for r, e in failures.items() if not isinstance(e, AbortError)}
        raise SpmdError(primary or failures)
    return results
