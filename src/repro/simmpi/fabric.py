"""Message fabric: per-rank mailboxes with MPI-style tag matching.

The fabric is the only piece of shared mutable state in an SPMD job.  Sends
are *eager*: the payload is copied into the destination mailbox immediately
(like an MPI eager-protocol send), so a send never blocks.  Receives block
until a matching message arrives, with a watchdog that converts an
indefinite wait into a :class:`~repro.errors.DeadlockError` so that a
mismatched communication pattern fails a test run instead of hanging it.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import AbortError, DeadlockError
from .stats import CommStats

#: Wildcard source rank for receives.
ANY_SOURCE: int = -1
#: Wildcard message tag for receives.
ANY_TAG: int = -1
#: User tags live below this; larger tags are reserved for collectives.
#: ANY_TAG deliberately matches only user tags, so wildcard receives can
#: never steal a collective's internal message (MPI gets the same
#: guarantee from separate communicator contexts).
MAX_USER_TAG: int = 1 << 24

#: How often a blocked receive wakes up to check for job abort (seconds).
_POLL_INTERVAL = 0.02


def _default_watchdog() -> float:
    return float(os.environ.get("REPRO_SIMMPI_TIMEOUT", "120"))


def payload_nbytes(obj: Any) -> int:
    """Best-effort size in bytes of a message payload.

    ndarrays report their exact buffer size; scalars and small tuples of
    scalars are approximated; anything else falls back to its pickled size.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (int, float, np.integer, np.floating, bool)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj)
    if obj is None:
        return 0
    import pickle

    return len(pickle.dumps(obj))


def copy_payload(obj: Any) -> Any:
    """Copy a payload at send time, giving MPI buffer semantics.

    The sender may freely overwrite its buffer after ``send`` returns and
    the receiver owns the object it gets back.  ndarrays are copied with
    ``np.array``; containers are copied recursively; scalars, strings and
    ``None`` are immutable and returned as-is.  Other objects are
    deep-copied.
    """
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, tuple):
        return tuple(copy_payload(x) for x in obj)
    if isinstance(obj, list):
        return [copy_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    if obj is None or isinstance(
        obj, (int, float, str, bytes, bool, np.integer, np.floating)
    ):
        return obj
    import copy

    return copy.deepcopy(obj)


@dataclass
class _Envelope:
    """A message in flight: payload plus its matching metadata."""

    ctx_id: tuple
    source: int  # rank *within the context*
    tag: int
    payload: Any
    seq: int = 0  # delivery order, for FIFO-per-(source,tag) semantics


@dataclass
class _Mailbox:
    """Pending messages for one world rank, guarded by a condition."""

    cond: threading.Condition = field(default_factory=threading.Condition)
    pending: list[_Envelope] = field(default_factory=list)


class Fabric:
    """The shared transport connecting the ranks of one SPMD job.

    Args:
        nranks: Number of ranks (world size).
        watchdog: Seconds a blocking receive may wait before raising
            :class:`DeadlockError`.  Defaults to the ``REPRO_SIMMPI_TIMEOUT``
            environment variable, or 120 s.
        jitter: Maximum artificial delivery delay in seconds.  Zero by
            default; tests inject jitter to shake out ordering assumptions
            in the overlapped schedules (a correct SPMD program's results
            must not depend on message timing).
        jitter_seed: Seed for the jitter RNG (runs stay reproducible).
    """

    def __init__(
        self,
        nranks: int,
        watchdog: float | None = None,
        jitter: float = 0.0,
        jitter_seed: int = 0,
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.nranks = nranks
        self.watchdog = _default_watchdog() if watchdog is None else watchdog
        self._jitter = jitter
        self._jitter_rng = random.Random(jitter_seed)
        self._boxes = [_Mailbox() for _ in range(nranks)]
        self._aborted = threading.Event()
        self._abort_reason: str | None = None
        self._seq_lock = threading.Lock()
        self._seq = 0
        self.stats = [CommStats(rank) for rank in range(nranks)]

    # ------------------------------------------------------------------
    # Abort handling
    # ------------------------------------------------------------------
    def abort(self, reason: str) -> None:
        """Mark the job as failed and wake every blocked receive."""
        self._abort_reason = reason
        self._aborted.set()
        for box in self._boxes:
            with box.cond:
                box.cond.notify_all()

    @property
    def aborted(self) -> bool:
        return self._aborted.is_set()

    def check_abort(self) -> None:
        if self._aborted.is_set():
            raise AbortError(f"SPMD job aborted: {self._abort_reason}")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def deliver(
        self,
        dest_world: int,
        ctx_id: tuple,
        source_ctx_rank: int,
        tag: int,
        payload: Any,
    ) -> None:
        """Copy ``payload`` into ``dest_world``'s mailbox (eager send)."""
        self.check_abort()
        if self._jitter > 0.0:
            with self._seq_lock:
                delay = self._jitter_rng.random() * self._jitter
            time.sleep(delay)
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        env = _Envelope(ctx_id, source_ctx_rank, tag, copy_payload(payload), seq)
        box = self._boxes[dest_world]
        with box.cond:
            box.pending.append(env)
            box.cond.notify_all()

    def match(
        self,
        dest_world: int,
        ctx_id: tuple,
        source: int,
        tag: int,
        *,
        block: bool = True,
    ) -> _Envelope | None:
        """Find (and remove) the oldest message matching the selector.

        ``source``/``tag`` may be :data:`ANY_SOURCE`/:data:`ANY_TAG`.
        Returns ``None`` immediately when ``block`` is false and nothing
        matches.
        """
        box = self._boxes[dest_world]
        deadline = time.monotonic() + self.watchdog
        with box.cond:
            while True:
                self.check_abort()
                best: _Envelope | None = None
                for env in box.pending:
                    if env.ctx_id != ctx_id:
                        continue
                    if source != ANY_SOURCE and env.source != source:
                        continue
                    if tag == ANY_TAG:
                        if env.tag >= MAX_USER_TAG:
                            continue
                    elif env.tag != tag:
                        continue
                    if best is None or env.seq < best.seq:
                        best = env
                if best is not None:
                    box.pending.remove(best)
                    return best
                if not block:
                    return None
                if time.monotonic() >= deadline:
                    raise DeadlockError(
                        f"rank {dest_world}: receive (ctx={ctx_id}, source={source}, "
                        f"tag={tag}) unmatched after {self.watchdog:.0f}s"
                    )
                box.cond.wait(_POLL_INTERVAL)

    def pending_count(self, world_rank: int) -> int:
        """Number of undelivered messages for a rank (diagnostics)."""
        box = self._boxes[world_rank]
        with box.cond:
            return len(box.pending)
