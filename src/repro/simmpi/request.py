"""Nonblocking-communication request handles.

Because the fabric's sends are eager (buffered copy at send time), an
``isend`` completes immediately; an ``irecv`` defers the blocking match
until :meth:`Request.wait`.  This mirrors how HPL uses nonblocking MPI:
posting work and synchronizing at phase boundaries.
"""

from __future__ import annotations

from typing import Any, Callable


class Request:
    """Handle for a nonblocking operation.

    Instances are created by the communicator; user code only calls
    :meth:`wait` / :meth:`test`.
    """

    def __init__(
        self,
        complete: bool = False,
        result: Any = None,
        fetch: Callable[[bool], tuple[bool, Any]] | None = None,
    ):
        self._complete = complete
        self._result = result
        self._fetch = fetch

    @classmethod
    def completed(cls, result: Any = None) -> "Request":
        """A request that is already done (used for eager sends)."""
        return cls(complete=True, result=result)

    def wait(self) -> Any:
        """Block until the operation completes; return its result."""
        if not self._complete:
            assert self._fetch is not None
            _, self._result = self._fetch(True)
            self._complete = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Poll for completion without blocking.

        Returns:
            ``(done, result)``; ``result`` is only meaningful when ``done``.
        """
        if self._complete:
            return True, self._result
        assert self._fetch is not None
        done, result = self._fetch(False)
        if done:
            self._complete, self._result = True, result
        return done, (result if done else None)

    @property
    def complete(self) -> bool:
        return self._complete


def waitall(requests: list[Request]) -> list[Any]:
    """Wait on every request, returning their results in order."""
    return [req.wait() for req in requests]
