"""Multiprocess worker pool: drains the queue with crash isolation.

The pool is a supervisor loop that claims ready jobs from the
:class:`~repro.service.store.JobStore` and executes each one in a
*fresh child process*.  That buys three properties the service needs:

* **per-job timeout** -- the supervisor terminates a child that outlives
  ``job.timeout`` and the attempt counts as a failure;
* **crash isolation** -- a child that dies (unhandled exception, or even
  a hard crash) marks only its job FAILED; the supervisor and the other
  workers keep draining;
* **bounded retry with exponential backoff** -- a failed attempt within
  ``job.max_retries`` goes back to PENDING with
  ``not_before = now + backoff_base * 2**(attempts-1)``.

Runners -- the functions that turn a payload dict into a result dict --
are looked up by job kind in :data:`RUNNERS`.  The built-in kinds map
onto the existing entry points (``run`` -> :func:`repro.hpl.api.run_hpl`,
``sim`` -> :func:`repro.perf.hplsim.simulate_run`, ``scale`` ->
:func:`repro.perf.scaling.weak_scaling`, ``fact`` ->
:func:`repro.perf.factsim.fact_sweep`); ``probe`` jobs exercise the pool
itself (ok / sleep / crash / flaky behaviours) and are used by the test
suite and as operational smoke tests.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable

from ..errors import ServiceError, UnknownJobKindError
from .cache import ResultCache, payload_key
from .dag import (DagResolver, has_placeholders, needs_parent_results,
                  resolve_payload)
from .jobs import UNCACHED_KINDS, Job, JobState
from .store import JobStore
from .streams import DEFAULT_INLINE_MAX as _DEFAULT_INLINE_MAX

Runner = Callable[[dict, Job], dict]

RUNNERS: dict[str, Runner] = {}


@dataclass(frozen=True)
class WorkerOptions:
    """Every worker-pool knob, in one bundle shared by all entry points.

    :meth:`Service.run_workers`, the ``repro workers`` CLI command, and
    the remote :class:`~repro.service.fleet.RemoteWorkerPool` all accept
    this dataclass instead of re-plumbing the same six arguments; the
    defaults match the historical per-argument defaults.  ``lease_ttl``
    and ``inline_max`` only apply to remote pools (local pools hold no
    leases and write the cache directly): a result whose canonical
    encoding exceeds ``inline_max`` bytes is uploaded through the
    chunk-streaming endpoints instead of one inline ``complete`` body.
    """

    n: int = 2
    drain: bool = True
    max_seconds: float | None = None
    poll_interval: float = 0.02
    backoff_base: float = 0.5
    name: str = "pool"
    lease_ttl: float = 30.0
    inline_max: int = _DEFAULT_INLINE_MAX

    def replace(self, **changes) -> "WorkerOptions":
        return _dc_replace(self, **changes)


def register_runner(kind: str, fn: Runner) -> None:
    """Register (or replace) the runner for a job kind."""
    RUNNERS[kind] = fn


def runner_for(kind: str) -> Runner:
    try:
        return RUNNERS[kind]
    except KeyError:
        raise UnknownJobKindError(
            f"no runner registered for job kind {kind!r}"
            f" (known: {', '.join(sorted(RUNNERS))})"
        ) from None


# ---------------------------------------------------------------------------
# Built-in runners
# ---------------------------------------------------------------------------


def _run_runner(payload: dict, job: Job) -> dict:
    """Numeric HPL run on the simulated-MPI runtime."""
    from ..config import HPLConfig
    from ..hpl.api import run_hpl

    cfg = HPLConfig.from_dict(payload)
    result = run_hpl(cfg)
    return {
        "n": cfg.n, "nb": cfg.nb, "p": cfg.p, "q": cfg.q,
        "resid": result.resid,
        "passed": result.passed,
        "wall_seconds": result.wall_seconds,
        "tflops": cfg.total_flops / result.wall_seconds / 1e12,
    }


def _sim_runner(payload: dict, job: Job) -> dict:
    """Performance simulation of one full-size run (Fig. 7 machinery)."""
    from ..config import BcastVariant, Schedule, SwapVariant
    from ..machine.frontier import crusher_cluster
    from ..perf.hplsim import simulate_run
    from ..perf.ledger import PerfConfig

    params = dict(payload)
    cfg = PerfConfig(
        n=params["n"], nb=params["nb"], p=params["p"], q=params["q"],
        pl=params.get("pl") or params["p"],
        ql=params.get("ql") or params["q"],
        schedule=Schedule(params.get("schedule", "split")),
        split_fraction=params.get("split_fraction", 0.5),
        bcast=BcastVariant(params.get("bcast", "1ringM")),
        swap=SwapVariant(params.get("swap", "long")),
        swap_threshold=params.get("swap_threshold", 64),
        fact_threads=params.get("fact_threads", 0),
        fidelity=params.get("fidelity", "fast"),
    )
    nodes = (cfg.p // cfg.pl) * (cfg.q // cfg.ql)
    report = simulate_run(cfg, crusher_cluster(nodes))
    return {
        "n": cfg.n, "nb": cfg.nb, "p": cfg.p, "q": cfg.q, "nodes": nodes,
        "fidelity": cfg.fidelity,
        "score_tflops": report.score_tflops,
        "makespan": report.makespan,
        "hidden_time_fraction": report.hidden_time_fraction,
        "hidden_iteration_fraction": report.hidden_iteration_fraction,
        "iterations": len(report.iterations),
    }


def _scale_runner(payload: dict, job: Job) -> dict:
    """One node count of the Fig. 8 weak-scaling sweep."""
    from ..config import Schedule
    from ..perf.scaling import weak_scaling

    point = weak_scaling(
        [payload["nnodes"]],
        n_single=payload.get("n_single", 256_000),
        nb=payload.get("nb", 512),
        schedule=Schedule(payload.get("schedule", "split")),
        fidelity=payload.get("fidelity", "fast"),
    )[0]
    return {
        "nnodes": point.nnodes, "n": point.n, "p": point.p, "q": point.q,
        "tflops": point.tflops,
        "makespan": point.report.makespan,
        "hidden_time_fraction": point.report.hidden_time_fraction,
    }


def _fact_runner(payload: dict, job: Job) -> dict:
    """The Fig. 5 FACT multi-threading sweep on the CPU panel model."""
    from ..perf.factsim import fact_sweep

    curves = fact_sweep(
        nb=payload.get("nb", 512),
        m_multiples=payload.get("m_multiples"),
        thread_counts=payload.get("thread_counts"),
    )
    return {
        "nb": payload.get("nb", 512),
        "curves": [
            {"threads": c.threads, "m_values": c.m_values,
             "gflops": c.gflops}
            for c in curves
        ],
    }


def _reduce_runner(payload: dict, job: Job) -> dict:
    """Pick the winning parent by a result metric (campaign stage 2).

    The pool injects ``job.parent_results`` before launch (a reduce job
    only ever runs after all its parents are DONE).  The payload names
    the ``metric`` to rank by and the ``mode`` (``max``, the default,
    or ``min``); the result carries the winning parent's id and payload
    so downstream ``$winner`` placeholders can be resolved from it.
    """
    parents = job.parent_results or {}
    if not parents:
        raise ServiceError(
            "reduce job has no parent results (was it submitted with"
            " depends_on?)"
        )
    metric = payload.get("metric")
    if not metric:
        raise ServiceError("reduce payload needs a 'metric' to rank by")
    mode = payload.get("mode", "max")
    if mode not in ("max", "min"):
        raise ServiceError(f"reduce mode must be 'max' or 'min', got {mode!r}")
    ranked = [
        (pid, info) for pid, info in sorted(parents.items())
        if isinstance(info.get("result"), dict)
        and metric in info["result"]
    ]
    if not ranked:
        raise ServiceError(
            f"no parent result carries metric {metric!r}"
        )
    pick = max if mode == "max" else min
    winner_id, winner = pick(ranked, key=lambda kv: kv[1]["result"][metric])
    return {
        "metric": metric,
        "mode": mode,
        "value": winner["result"][metric],
        "winner_job": winner_id,
        "winner_payload": winner["payload"],
        "candidates": len(ranked),
    }


def _probe_runner(payload: dict, job: Job) -> dict:
    """Pool self-test job: behaves as its payload instructs."""
    behavior = payload.get("behavior", "ok")
    if behavior == "ok":
        return {"ok": True, "attempt": job.attempts}
    if behavior == "echo":
        # Returns the payload itself (sans ``behavior``) -- gives DAG
        # and reduce tests a metric-bearing result without running a
        # simulation.
        return {k: v for k, v in payload.items() if k != "behavior"}
    if behavior == "sleep":
        time.sleep(float(payload.get("seconds", 1.0)))
        return {"ok": True, "slept": payload.get("seconds", 1.0)}
    if behavior == "crash":
        raise RuntimeError(payload.get("message", "probe crash"))
    if behavior == "flaky":
        # Fails the first `fail_times` attempts, then succeeds -- used to
        # verify the retry path end-to-end.
        fail_times = int(payload.get("fail_times", 1))
        if job.attempts <= fail_times:
            raise RuntimeError(
                f"flaky probe failing attempt {job.attempts}/{fail_times}"
            )
        return {"ok": True, "attempt": job.attempts}
    if behavior == "hang_once":
        # Sleeps (only) on the first attempt -- lets recovery tests kill
        # a supervisor mid-job and watch the retry complete promptly.
        if job.attempts <= 1:
            time.sleep(float(payload.get("seconds", 60.0)))
        return {"ok": True, "attempt": job.attempts}
    raise ServiceError(f"unknown probe behavior {behavior!r}")


RUNNERS.update({
    "run": _run_runner,
    "sim": _sim_runner,
    "scale": _scale_runner,
    "fact": _fact_runner,
    "reduce": _reduce_runner,
    "probe": _probe_runner,
})


# ---------------------------------------------------------------------------
# Child process entry point
# ---------------------------------------------------------------------------


def _child_main(cache_dir: str, job: Job, conn) -> None:
    """Run one job in a dedicated process; report through ``conn``.

    On success the result is written to the cache *from the child* (only
    the key crosses the pipe) and ``("ok", key)`` is sent.  On a Python
    exception ``("error", traceback)`` is sent.  A hard crash sends
    nothing -- the supervisor treats a dead, silent child as a failure.
    """
    try:
        result = runner_for(job.kind)(job.payload, job)
        # The job's stored key, which folds in parent ids for dependent
        # jobs (and was computed over the placeholder form of the
        # payload, not the resolved one the runner just saw).
        key = job.key or payload_key(job.kind, job.payload)
        ResultCache(cache_dir).put(key, job.kind, job.payload, result)
        conn.send(("ok", key))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except BaseException:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


@dataclass
class _Slot:
    """One in-flight job: its process, result pipe, and deadline."""

    job: Job
    process: multiprocessing.Process
    conn: object
    deadline: float  # 0 = no timeout


@dataclass
class PoolSummary:
    """What one :meth:`WorkerPool.run` call did.

    ``fulfilled_from_cache`` counts jobs that were claimed but never
    launched because their result landed in the cache while they sat in
    the queue; those jobs are included in ``completed``.
    """

    completed: int = 0
    failed: int = 0
    retried: int = 0
    fulfilled_from_cache: int = 0
    counts: dict = field(default_factory=dict)


class WorkerPool:
    """Supervisor draining a :class:`JobStore` with ``nworkers`` slots."""

    def __init__(
        self,
        workdir,
        nworkers: int = 2,
        poll_interval: float = 0.02,
        backoff_base: float = 0.5,
        name: str = "pool",
        cache_dir=None,
        dag: DagResolver | None = None,
    ) -> None:
        if nworkers < 1:
            raise ServiceError(f"nworkers must be >= 1, got {nworkers}")
        self.workdir = os.fspath(workdir)
        self.store = JobStore(self.workdir)
        # A sharded service passes one shared cache_dir to every shard's
        # pool so cache hits cross shard boundaries (the cache is keyed
        # by content, not by shard).
        self.cache = ResultCache(
            os.path.join(self.workdir, "cache")
            if cache_dir is None else os.fspath(cache_dir)
        )
        # A sharded service also passes its resolver (spanning the
        # logical ShardedStore), so a parent finishing in this pool
        # releases children that hashed to *other* shards; a standalone
        # pool resolves over its own store.  Either way the hook hangs
        # off this pool's own store handle -- every terminal transition
        # this pool commits drives the DAG.
        self.dag = dag if dag is not None else DagResolver(self.store)
        self.store.set_terminal_hook(self.dag.on_terminal)
        self.nworkers = nworkers
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.name = name
        self._slots: list[_Slot] = []
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    @classmethod
    def from_options(cls, workdir, options: WorkerOptions,
                     cache_dir=None, dag: DagResolver | None = None,
                     ) -> "WorkerPool":
        return cls(
            workdir, nworkers=options.n,
            poll_interval=options.poll_interval,
            backoff_base=options.backoff_base, name=options.name,
            cache_dir=cache_dir, dag=dag,
        )

    # -- outcome handling ------------------------------------------------

    def _finish(self, slot: _Slot, summary: PoolSummary,
                error: str | None, result_key: str | None) -> None:
        self._record_outcome(slot.job, summary, error, result_key)

    def _record_outcome(self, job: Job, summary: PoolSummary,
                        error: str | None,
                        result_key: str | None) -> None:
        if error is None and result_key is not None:
            self.store.mark_done(job.id, result_key)
            summary.completed += 1
            return
        error = error or "worker child died without reporting"
        if job.attempts <= job.max_retries:
            backoff = self.backoff_base * 2 ** (job.attempts - 1)
            self.store.requeue(job.id, error, time.time() + backoff)
            summary.retried += 1
        else:
            self.store.mark_failed(job.id, error)
            summary.failed += 1

    def _reap(self, summary: PoolSummary) -> None:
        now = time.time()
        live: list[_Slot] = []
        for slot in self._slots:
            if slot.process.is_alive():
                if slot.deadline and now >= slot.deadline:
                    slot.process.terminate()
                    slot.process.join(timeout=5.0)
                    if slot.process.is_alive():  # pragma: no cover
                        slot.process.kill()
                        slot.process.join()
                    slot.conn.close()
                    self._finish(
                        slot, summary,
                        f"timeout: exceeded {slot.job.timeout:.3g}s", None,
                    )
                else:
                    live.append(slot)
                continue
            # Child exited: collect its report (if it managed to send one).
            slot.process.join()
            outcome: tuple | None = None
            if slot.conn.poll():
                try:
                    outcome = slot.conn.recv()
                except (EOFError, OSError):
                    outcome = None
            slot.conn.close()
            if outcome is not None and outcome[0] == "ok":
                self._finish(slot, summary, None, outcome[1])
            elif outcome is not None:
                self._finish(slot, summary, outcome[1], None)
            else:
                self._finish(
                    slot, summary,
                    "worker child crashed"
                    f" (exit code {slot.process.exitcode})", None,
                )
        self._slots = live

    def _prepare(self, job: Job) -> None:
        """Inject parent results for reduce / ``$winner`` jobs.

        Reads parents through the resolver's *logical* store (a parent
        may live on another shard) and their results from the shared
        cache.  A released job's parents are all DONE, so a missing
        result here is a genuine fault -- the raised
        :class:`ServiceError` fails the attempt through the normal
        retry policy.
        """
        if not needs_parent_results(job):
            return
        parent_results: dict = {}
        for pid in job.depends_on:
            parent = self.dag.store.get(pid)
            record = self.cache.get(parent.result_key) \
                if parent.result_key else None
            if parent.state is not JobState.DONE or record is None:
                raise ServiceError(
                    f"parent {pid} result unavailable"
                    f" (state {parent.state.value})"
                )
            parent_results[pid] = {"payload": parent.payload,
                                   "result": record["result"]}
        job.parent_results = parent_results
        if has_placeholders(job.payload):
            job.payload = resolve_payload(job.payload, parent_results)

    def _launch(self, job: Job) -> None:
        self.store.log_event(job.id, "launched", worker=job.worker)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main,
            args=(self.cache.root, job, child_conn),
            name=f"{self.name}-{job.id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = time.time() + job.timeout if job.timeout > 0 else 0.0
        self._slots.append(_Slot(job, proc, parent_conn, deadline))

    # -- main loop -------------------------------------------------------

    def run(self, drain: bool = True, max_seconds: float | None = None,
            recover: bool = True,
            stop: threading.Event | None = None) -> PoolSummary:
        """Process jobs until the queue drains (or ``max_seconds`` pass).

        ``drain=True`` (the default) exits once every job is terminal --
        including waiting out retry backoffs.  ``drain=False`` runs
        forever (a resident service) until ``max_seconds`` elapses, the
        ``stop`` event is set (how an embedding HTTP server shuts its
        pool down), or the process is interrupted; in-flight children
        are terminated and their jobs requeued/failed on the way out.

        ``recover=True`` requeues jobs found already RUNNING at startup:
        with one supervisor per workdir (the intended deployment) those
        can only be orphans of a supervisor that died mid-job.  Jobs
        held by a *lease* are not orphans -- a remote worker may still
        be running them and will heartbeat or report; if it died, the
        store's lease-expiry sweep requeues them instead.
        """
        summary = PoolSummary()
        start = time.time()
        if recover:
            for orphan in self.store.list(JobState.RUNNING):
                if orphan.lease_id:
                    continue
                self.store.requeue(
                    orphan.id, "orphaned by a dead worker pool", 0.0
                )
        try:
            while True:
                self._reap(summary)
                while len(self._slots) < self.nworkers:
                    job = self.store.claim(
                        f"{self.name}/{len(self._slots)}"
                    )
                    if job is None:
                        break
                    if job.kind not in UNCACHED_KINDS \
                            and job.key in self.cache:
                        # The result landed while the job sat in the
                        # queue (another submitter's twin completed, or
                        # the job predates a cache warm-up): record DONE
                        # without burning a child process on it.
                        self.store.mark_done(job.id, job.key)
                        summary.completed += 1
                        summary.fulfilled_from_cache += 1
                        continue
                    try:
                        self._prepare(job)
                    except ServiceError as exc:
                        self._record_outcome(
                            job, summary, f"dag input error: {exc}", None
                        )
                        continue
                    self._launch(job)
                if drain and not self._slots and not self.store.outstanding():
                    break
                if max_seconds is not None \
                        and time.time() - start > max_seconds:
                    break
                if stop is not None and stop.is_set():
                    break
                time.sleep(self.poll_interval)
        finally:
            self._shutdown(summary)
        summary.counts = self.store.counts()
        return summary

    def _shutdown(self, summary: PoolSummary) -> None:
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():  # pragma: no cover
                    slot.process.kill()
                    slot.process.join()
            slot.conn.close()
            self._finish(slot, summary, "worker pool shut down", None)
        self._slots = []
