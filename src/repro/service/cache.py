"""Content-addressed result cache.

Results are keyed by a sha256 hash of the canonical JSON encoding of
``(kind, payload)`` -- see :func:`payload_key`, built on the same
:func:`repro.config.canonical_json` that :meth:`HPLConfig.config_key`
uses -- so two submissions describing the same benchmark point share a
key no matter how the payload dict was ordered.  Records are one JSON
file per key, sharded by the first two hex digits, written atomically
(temp file + ``os.replace``) so a crashed writer can never leave a
half-written record that a reader would parse.
"""

from __future__ import annotations

import json
import os
import time

from ..config import canonical_json, config_key


def payload_key(kind: str, payload: dict) -> str:
    """Stable content hash identifying one job's work."""
    return config_key({"kind": kind, "payload": payload})


class ResultCache:
    """Directory of ``<key>.json`` result records under a workdir."""

    def __init__(self, root) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None on a miss."""
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def put(self, key: str, kind: str, payload: dict, result: dict) -> dict:
        """Store ``result`` under ``key``; returns the full record."""
        record = {
            "key": key,
            "kind": kind,
            "payload": payload,
            "result": result,
            "stored_at": time.time(),
        }
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(canonical_json(record))
        os.replace(tmp, path)
        return record

    def __len__(self) -> int:
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for f in files if f.endswith(".json"))
        return total
