"""Content-addressed result cache.

Results are keyed by a sha256 hash of the canonical JSON encoding of
``(kind, payload)`` -- see :func:`payload_key`, built on the same
:func:`repro.config.canonical_json` that :meth:`HPLConfig.config_key`
uses -- so two submissions describing the same benchmark point share a
key no matter how the payload dict was ordered.  Records are one JSON
file per key, sharded by the first two hex digits, written atomically
(temp file + ``os.replace``) so a crashed writer can never leave a
half-written record that a reader would parse; a record that *is* found
truncated or corrupt (torn disk, partial copy) reads as a miss, never a
crash.

Results whose canonical encoding exceeds ``inline_max`` bytes are not
embedded in the record.  They live in a sidecar blob file
(``<key>.result.json`` -- the result's canonical JSON bytes, exactly
what streamed over the wire) and the record carries a ``result_blob``
descriptor ``{"size", "sha256"}`` instead of a ``result`` field.
:meth:`get` is transparent (it loads the blob back into the record);
:meth:`open_result` and :meth:`result_info` let the HTTP layer serve
ranged reads without ever holding the blob in memory.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import time
from typing import BinaryIO

from ..config import canonical_json, config_key
from .streams import DEFAULT_INLINE_MAX, encode_result


def payload_key(kind: str, payload: dict, parents=()) -> str:
    """Stable content hash identifying one job's work.

    For dependent jobs the parent ids are part of the identity: a reduce
    over one grid is not the same computation as the same reduce over
    another, even though the payloads match byte-for-byte.  Jobs without
    parents hash exactly as before, so existing keys are unchanged.
    """
    doc: dict = {"kind": kind, "payload": payload}
    if parents:
        doc["parents"] = sorted(parents)
    return config_key(doc)


class ResultCache:
    """Directory of ``<key>.json`` result records under a workdir."""

    def __init__(self, root, inline_max: int = DEFAULT_INLINE_MAX) -> None:
        self.root = os.fspath(root)
        self.inline_max = inline_max
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _blob_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.result.json")

    def _load_record(self, key: str) -> dict | None:
        """The raw record (blob not resolved), or None on miss/corruption."""
        try:
            with open(self._path(key)) as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # A truncated or corrupt record is a miss, not a crash: the
            # caller re-runs the job and the next put() replaces it.
            return None
        if not isinstance(record, dict):
            return None
        if "result" not in record and "result_blob" not in record:
            return None
        return record

    def meta(self, key: str) -> dict | None:
        """The stored record *without* loading a sidecar blob."""
        return self._load_record(key)

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None on a miss.

        For blob-backed records the sidecar is read back into
        ``record["result"]``; a missing or corrupt sidecar is a miss.
        """
        record = self._load_record(key)
        if record is None or "result" in record:
            return record
        try:
            with open(self._blob_path(key), "rb") as fh:
                record["result"] = json.loads(fh.read().decode("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return record

    def result_info(self, key: str) -> dict | None:
        """``{"size", "sha256", "inline"}`` for the stored result bytes.

        The size/hash describe the result's canonical JSON encoding --
        the exact bytes a ranged chunk download serves.  None on a miss.
        """
        record = self._load_record(key)
        if record is None:
            return None
        blob = record.get("result_blob")
        if blob is not None:
            return {"size": blob["size"], "sha256": blob["sha256"],
                    "inline": False}
        encoded = encode_result(record["result"])
        return {"size": len(encoded),
                "sha256": hashlib.sha256(encoded).hexdigest(),
                "inline": True}

    def open_result(self, key: str) -> tuple[BinaryIO, int] | None:
        """A seekable binary stream of the result's canonical bytes.

        Blob-backed records hand back the sidecar file itself, so ranged
        reads cost one seek -- the blob is never loaded whole.  Inline
        records (bounded by ``inline_max``) are re-encoded into memory.
        """
        record = self._load_record(key)
        if record is None:
            return None
        blob = record.get("result_blob")
        if blob is None:
            encoded = encode_result(record["result"])
            return io.BytesIO(encoded), len(encoded)
        try:
            fh = open(self._blob_path(key), "rb")
        except OSError:
            return None
        return fh, blob["size"]

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def _write_record(self, path: str, record: dict) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(canonical_json(record))
        os.replace(tmp, path)

    def put(self, key: str, kind: str, payload: dict, result: dict) -> dict:
        """Store ``result`` under ``key``; returns the full record.

        Results whose canonical encoding exceeds ``inline_max`` bytes go
        to a sidecar blob; smaller ones keep the inline record format
        byte-for-byte.
        """
        encoded = encode_result(result)
        if len(encoded) > self.inline_max:
            tmp = f"{self._blob_path(key)}.tmp-{os.getpid()}"
            os.makedirs(os.path.dirname(tmp), exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(encoded)
            return self.put_file(
                key, kind, payload, tmp, size=len(encoded),
                sha256=hashlib.sha256(encoded).hexdigest(),
            )
        record = {
            "key": key,
            "kind": kind,
            "payload": payload,
            "result": result,
            "stored_at": time.time(),
        }
        self._write_record(self._path(key), record)
        return record

    def put_file(self, key: str, kind: str, payload: dict, src_path: str,
                 size: int, sha256: str) -> dict:
        """Promote an already-spooled result file into the cache.

        ``src_path`` must hold the result's canonical JSON bytes (as
        assembled from a verified chunk stream).  The file is *moved*
        into place, then the record is written -- both atomic, and the
        result is never loaded into memory.  A crash in between leaves
        an orphan sidecar with no record: still a miss.
        """
        blob_path = self._blob_path(key)
        os.makedirs(os.path.dirname(blob_path), exist_ok=True)
        try:
            os.replace(src_path, blob_path)
        except OSError:
            # Cross-filesystem staging dir: fall back to a copying move.
            shutil.move(src_path, blob_path)
        record = {
            "key": key,
            "kind": kind,
            "payload": payload,
            "result_blob": {"size": size, "sha256": sha256},
            "stored_at": time.time(),
        }
        self._write_record(self._path(key), record)
        return record

    def __len__(self) -> int:
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for f in files
                         if f.endswith(".json")
                         and not f.endswith(".result.json"))
        return total
