"""Multi-workdir sharding: one logical queue over N :class:`JobStore` s.

A single SQLite workdir serializes every write behind one file lock;
for queues hot enough (the paper's Fig. 8 sweep submitted by many
clients at once) that lock becomes the ceiling.  :class:`ShardedStore`
fans the queue out over N independent workdirs in the spirit of
Balsam's site-partitioned job database: each shard is a plain
:class:`~repro.service.store.JobStore` (same schema, same transaction
discipline), and the coordinator routes every job to exactly one shard
by a **stable hash of its content key** (:func:`shard_index`).  Because
the content key also drives the result cache and active-job dedup,
routing by it keeps both *shard-local*: two submissions of the same
benchmark point always meet in the same ``jobs.sqlite``, so the
``add_if_no_active`` dedup transaction needs no cross-shard lock.

Consequences of the design, relied on throughout:

* **Stable partition** -- the same key maps to the same shard across
  restarts and across processes (the hash has no per-process salt), and
  the shard queues are pairwise disjoint with union equal to the
  logical queue.  ``tests/test_shard_properties.py`` asserts both as
  hypothesis properties.
* **Per-shard transactions only** -- a batch lease (`claim_batch`)
  claims from each shard inside that shard's own ``BEGIN IMMEDIATE``;
  there is no two-phase commit.  One *logical* lease id spans the
  shards it touched (each shard holds its own lease row under that id),
  so the wire protocol still returns a single lease and a dead worker's
  jobs are requeued exactly once *per shard* by each shard's own sweep
  -- always onto the shard they already live on.
* **Graceful degradation** -- a wedged shard (file lock held by a hung
  writer, disk error) degrades that shard only: fan-out reads and the
  lease-expiry sweep skip it, claims come from the healthy shards, and
  writes routed *to* it fail with
  :class:`~repro.errors.ShardUnavailableError` while everything else
  keeps serving.  ``/v1/healthz`` reports the shard as ``degraded``.

A v3 single-workdir store is exactly "shard 0 of 1": pointing
``ShardedStore([workdir])`` at an existing workdir serves the same
queue, and :func:`shard_index` of anything modulo 1 is 0.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3

from ..errors import (
    LeaseExpiredError,
    ServiceError,
    ShardUnavailableError,
    UnknownJobError,
)
from .jobs import Job, JobState, Lease, new_lease_id
from .store import JobStore


def shard_index(key: str, nshards: int) -> int:
    """The shard a content key routes to: stable, salt-free, uniform.

    Uses the first 8 bytes of sha256 so the mapping survives restarts,
    interpreter upgrades, and ``PYTHONHASHSEED`` (``hash()`` has none of
    those properties for str).
    """
    if nshards < 1:
        raise ServiceError(f"nshards must be >= 1, got {nshards}")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % nshards


def shard_workdirs(root, nshards: int) -> list[str]:
    """The shard workdir paths a root workdir fans out into."""
    if nshards < 1:
        raise ServiceError(f"nshards must be >= 1, got {nshards}")
    if nshards == 1:
        return [os.fspath(root)]
    return [os.path.join(os.fspath(root), "shards", f"{i:02d}")
            for i in range(nshards)]


def detect_shard_workdirs(root) -> list[str]:
    """The shard layout already on disk under ``root`` (or ``[root]``).

    A sharded workdir carries a ``shards/`` directory of numbered
    subdirectories; a plain workdir is its own single shard.
    """
    root = os.fspath(root)
    shards_dir = os.path.join(root, "shards")
    if os.path.isdir(shards_dir):
        found = sorted(
            os.path.join(shards_dir, name)
            for name in os.listdir(shards_dir)
            if os.path.isdir(os.path.join(shards_dir, name))
        )
        if found:
            return found
    return [root]


class ShardedStore:
    """One logical job queue fanned out over N workdir shards.

    Exposes the same surface as :class:`JobStore`, so
    :class:`~repro.service.api.Service` (and through it the HTTP server,
    both clients, and :class:`~repro.service.fleet.RemoteWorkerPool`)
    works against either interchangeably.  Writes route by
    :func:`shard_index` of the job's content key; id-addressed
    operations probe the shards (ids are random and carry no shard);
    collection reads merge across shards preserving the single-store
    ordering (``created, id``).
    """

    def __init__(self, workdirs, busy_timeout: float = 30.0) -> None:
        paths = [os.fspath(w) for w in workdirs]
        if not paths:
            raise ServiceError("ShardedStore needs at least one workdir")
        if len(set(paths)) != len(paths):
            raise ServiceError(f"duplicate shard workdirs: {paths}")
        self.workdirs = paths
        self.shards = [JobStore(p, busy_timeout=busy_timeout)
                       for p in paths]
        self.nshards = len(self.shards)
        self._next_claim_shard = 0

    # -- routing ---------------------------------------------------------

    def shard_for_key(self, key: str) -> JobStore:
        return self.shards[shard_index(key, self.nshards)]

    def _wrap_unavailable(self, shard: JobStore,
                          exc: sqlite3.OperationalError):
        return ShardUnavailableError(
            f"shard {shard.workdir} is unavailable: {exc}"
        )

    def _shard_of(self, job_id: str) -> JobStore:
        """The shard holding ``job_id`` (probe; wedged shards skipped)."""
        wedged: sqlite3.OperationalError | None = None
        for shard in self.shards:
            try:
                shard.get(job_id)
            except UnknownJobError:
                continue
            except sqlite3.OperationalError as exc:
                wedged = exc
                continue
            return shard
        if wedged is not None:
            # The job may live on the shard we could not read.
            raise ShardUnavailableError(
                f"job {job_id} not found on any responsive shard"
                f" (at least one shard unavailable: {wedged})"
            )
        raise UnknownJobError(f"no such job: {job_id}")

    # -- events ----------------------------------------------------------

    def log_event(self, job_id: str, event: str, **extra) -> None:
        """Append to the audit log of the shard holding ``job_id``."""
        try:
            shard = self._shard_of(job_id)
        except (UnknownJobError, ShardUnavailableError):
            shard = self.shards[0]
        shard.log_event(job_id, event, **extra)

    def events(self) -> list[dict]:
        """Every shard's audit events merged, oldest first."""
        merged: list[dict] = []
        for shard in self.shards:
            merged.extend(shard.events())
        merged.sort(key=lambda e: e.get("t", 0.0))
        return merged

    def event_stores(self) -> list[JobStore]:
        """The per-shard stores whose audit logs the event feed tails.

        Index order is the feed's shard numbering: cursor tokens encode
        one offset per entry of this list, so the order must be stable
        across restarts (it is -- shard workdirs are sorted on open).
        """
        return list(self.shards)

    def set_event_hook(self, callback) -> None:
        """Install the append callback on every shard's audit log."""
        for shard in self.shards:
            shard.set_event_hook(callback)

    def truncate_events(self) -> list[int]:
        """Compact every shard's audit log; returns the new bases."""
        return [shard.truncate_events() for shard in self.shards]

    # -- writes ----------------------------------------------------------

    def add(self, job: Job) -> Job:
        shard = self.shard_for_key(job.key)
        try:
            return shard.add(job)
        except sqlite3.OperationalError as exc:
            raise self._wrap_unavailable(shard, exc) from None

    def add_if_no_active(self, job: Job) -> tuple[Job | None, Job | None]:
        """Shard-local dedup: the key's shard runs the usual atomic
        check-then-insert, which is race-free coordinator-wide because
        every submission of this key routes to the same shard."""
        shard = self.shard_for_key(job.key)
        try:
            return shard.add_if_no_active(job)
        except sqlite3.OperationalError as exc:
            raise self._wrap_unavailable(shard, exc) from None

    def add_batch(
        self, items: list[tuple[Job, bool]]
    ) -> list[tuple[Job | None, Job | None]]:
        """Batch insert: group by shard, ONE transaction per shard.

        Items are grouped by each job's key shard *preserving submit
        order within every shard*, each group commits in its shard's own
        :meth:`JobStore.add_batch` transaction, and the per-item results
        are reassembled in request order.  Because same-key jobs always
        land in the same shard (and in their original relative order),
        in-batch dedup behaves exactly as N sequential single submits.

        Atomicity is *per shard* -- there is no cross-shard commit, by
        the same rule as ``claim_batch``.  If a shard is wedged its
        slice fails while the other shards' slices commit; the raised
        :class:`~repro.errors.ShardUnavailableError` then names the
        wedged shard.  A retry of the whole batch is safe: the committed
        slices dedup to their existing active jobs, and only the missing
        slice inserts (``tests/test_batch_chaos.py`` proves this under
        SIGKILL mid-batch).
        """
        by_shard: dict[int, list[int]] = {}
        for pos, (job, _dedup) in enumerate(items):
            by_shard.setdefault(shard_index(job.key, self.nshards),
                                []).append(pos)
        results: list[tuple[Job | None, Job | None] | None]
        results = [None] * len(items)
        wedged: ShardUnavailableError | None = None
        for idx in sorted(by_shard):
            shard = self.shards[idx]
            positions = by_shard[idx]
            try:
                slice_results = shard.add_batch(
                    [items[pos] for pos in positions]
                )
            except sqlite3.OperationalError as exc:
                wedged = self._wrap_unavailable(shard, exc)
                continue  # other shards' slices still commit
            for pos, res in zip(positions, slice_results):
                results[pos] = res
        if wedged is not None:
            raise wedged from None
        return results  # type: ignore[return-value]

    def claim(self, worker: str, now=None) -> Job | None:
        """Claim one ready job, round-robining the starting shard."""
        start = self._next_claim_shard
        self._next_claim_shard = (start + 1) % self.nshards
        for i in range(self.nshards):
            shard = self.shards[(start + i) % self.nshards]
            try:
                job = shard.claim(worker, now=now)
            except sqlite3.OperationalError:
                continue
            if job is not None:
                return job
        return None

    def mark_done(self, job_id: str, result_key: str) -> Job:
        return self._shard_of(job_id).mark_done(job_id, result_key)

    def mark_failed(self, job_id: str, error: str) -> Job:
        return self._shard_of(job_id).mark_failed(job_id, error)

    def requeue(self, job_id: str, error: str, not_before: float) -> Job:
        return self._shard_of(job_id).requeue(job_id, error, not_before)

    def cancel(self, job_id: str) -> bool:
        try:
            shard = self._shard_of(job_id)
        except UnknownJobError:
            return False
        return shard.cancel(job_id)

    # -- DAG edges (dependency-aware release) ----------------------------
    #
    # Edges are stored child-side on the *child's* shard, but parents and
    # children hash to arbitrary shards, so the cross-shard release rule
    # is: ask every shard for the parent's children, and route each
    # child's own transition back to the shard it lives on.  The
    # terminal hook installed by :meth:`set_terminal_hook` is what makes
    # a parent completing on shard A release a child on shard B.

    def set_terminal_hook(self, callback) -> None:
        """Install the terminal-transition callback on every shard."""
        for shard in self.shards:
            shard.set_terminal_hook(callback)

    def children_of(self, parent_id: str) -> list[Job]:
        """BLOCKED children of ``parent_id``, unioned across shards."""
        children: list[Job] = []
        for shard in self.shards:
            try:
                children.extend(shard.children_of(parent_id))
            except sqlite3.OperationalError:
                continue  # degraded shard: the recovery sweep catches up
        children.sort(key=lambda j: (j.created, j.id))
        return children

    def release(self, job_id: str) -> bool:
        try:
            shard = self._shard_of(job_id)
        except UnknownJobError:
            return False
        return shard.release(job_id)

    def cancel_from_parent(self, job_id: str, parent_id: str) -> bool:
        try:
            shard = self._shard_of(job_id)
        except UnknownJobError:
            return False
        return shard.cancel_from_parent(job_id, parent_id)

    # -- leases (remote workers) -----------------------------------------

    def claim_batch(self, worker: str, limit: int = 1, ttl: float = 60.0,
                    now=None) -> tuple[Lease | None, list[Job]]:
        """Lease up to ``limit`` ready jobs across shards in one call.

        One *logical* lease id covers the whole batch -- each shard that
        contributes jobs records its own lease row under that id inside
        its own transaction, so no cross-shard lock exists and a
        per-shard failure (wedged shard) costs only that shard's share.
        The starting shard rotates per call so one hot shard cannot
        starve the others.
        """
        lease_id = new_lease_id()
        start = self._next_claim_shard
        self._next_claim_shard = (start + 1) % self.nshards
        lease: Lease | None = None
        jobs: list[Job] = []
        remaining = max(0, int(limit))
        for i in range(self.nshards):
            if remaining <= 0:
                break
            shard = self.shards[(start + i) % self.nshards]
            try:
                shard_lease, shard_jobs = shard.claim_batch(
                    worker, limit=remaining, ttl=ttl, now=now,
                    lease_id=lease_id,
                )
            except sqlite3.OperationalError:
                continue  # wedged shard: the rest keep serving
            if shard_lease is None:
                continue
            jobs.extend(shard_jobs)
            remaining -= len(shard_jobs)
            if lease is None or shard_lease.expires > lease.expires:
                lease = shard_lease
        return (lease, jobs) if jobs else (None, [])

    def heartbeat_lease(self, lease_id: str, ttl: float = 60.0,
                        now=None) -> Lease:
        """Extend the logical lease on every shard that still holds it.

        Raises :class:`LeaseExpiredError` only when *no* shard knows the
        lease -- a lease whose portion on one shard lapsed may still be
        live for the jobs it holds elsewhere.
        """
        lease: Lease | None = None
        for shard in self.shards:
            try:
                extended = shard.heartbeat_lease(lease_id, ttl=ttl, now=now)
            except (LeaseExpiredError, sqlite3.OperationalError):
                continue
            if lease is None or extended.expires > lease.expires:
                lease = extended
        if lease is None:
            raise LeaseExpiredError(
                f"lease {lease_id} has expired or does not exist"
                " on any shard"
            )
        return lease

    def complete_leased(self, job_id: str, lease_id: str,
                        result_key: str, now=None) -> Job:
        return self._shard_of(job_id).complete_leased(
            job_id, lease_id, result_key, now=now
        )

    def fail_leased(self, job_id: str, lease_id: str, error: str,
                    backoff_base: float = 0.5, now=None) -> Job:
        return self._shard_of(job_id).fail_leased(
            job_id, lease_id, error, backoff_base=backoff_base, now=now
        )

    # -- staged result uploads (chunk streaming) -------------------------
    #
    # Staging is shard-local, like everything else keyed by the job: the
    # spool file lives in the owning shard's ``staging/`` dir, and that
    # shard's own lease-expiry sweep GCs it.  Jobs never migrate between
    # shards, so a re-claimed job re-streams into the same shard.

    def stage_chunk(self, job_id: str, lease_id: str, offset: int,
                    sha256: str, data: bytes, now=None) -> int:
        return self._shard_of(job_id).stage_chunk(
            job_id, lease_id, offset, sha256, data, now=now
        )

    def finish_staged(self, job_id: str, lease_id: str, size: int,
                      sha256: str, now=None) -> str:
        return self._shard_of(job_id).finish_staged(
            job_id, lease_id, size, sha256, now=now
        )

    def discard_staged(self, job_id: str) -> bool:
        try:
            shard = self._shard_of(job_id)
        except (UnknownJobError, ShardUnavailableError):
            return False
        return shard.discard_staged(job_id)

    def staged_info(self, job_id: str) -> dict | None:
        try:
            shard = self._shard_of(job_id)
        except (UnknownJobError, ShardUnavailableError):
            return None
        return shard.staged_info(job_id)

    def expire_leases(self, now=None) -> list[Job]:
        """Run every shard's exactly-once expiry sweep; skip wedged ones.

        Each shard's sweep is its own transaction, so an orphaned job is
        requeued exactly once *on the shard it already lives on* -- jobs
        never migrate between shards.  A wedged shard is skipped (its
        sweep runs once it recovers); the healthy shards' recoveries
        proceed.
        """
        recovered: list[Job] = []
        for shard in self.shards:
            try:
                recovered.extend(shard.expire_leases(now=now))
            except sqlite3.OperationalError:
                continue
        return recovered

    def get_lease(self, lease_id: str) -> Lease | None:
        for shard in self.shards:
            try:
                lease = shard.get_lease(lease_id)
            except sqlite3.OperationalError:
                continue
            if lease is not None:
                return lease
        return None

    # -- reads -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        return self._shard_of(job_id).get(job_id)

    def list(self, state=None, kind=None, limit: int | None = None,
             offset: int = 0) -> list[Job]:
        """The merged, filtered, windowed page -- single-store ordering.

        Each shard contributes its own oldest-first prefix (at most
        ``offset + limit`` rows, the global window's worst case), the
        prefixes are merged on the same ``(created, id)`` key the
        single-store ``ORDER BY`` uses, and the window is applied
        globally -- so a sharded page is *identical* to the page a
        single store seeded with the same jobs would return.
        """
        if state is not None and not isinstance(state, JobState):
            state = JobState(state).value  # validate junk exactly once
        per_shard = None if limit is None else offset + max(0, int(limit))
        rows: list[Job] = []
        for shard in self.shards:
            try:
                rows.extend(shard.list(state=state, kind=kind,
                                       limit=per_shard))
            except sqlite3.OperationalError:
                continue  # degraded shard: serve what is reachable
        rows.sort(key=lambda j: (j.created, j.id))
        end = None if limit is None else offset + max(0, int(limit))
        return rows[max(0, int(offset)):end]

    def count_matching(self, state=None, kind=None) -> int:
        total = 0
        for shard in self.shards:
            try:
                total += shard.count_matching(state=state, kind=kind)
            except sqlite3.OperationalError:
                continue
        return total

    def counts(self) -> dict[str, int]:
        """Merged per-state depths: per-shard consistent, not global.

        Each shard's figure comes from one ``GROUP BY state`` query, so
        it is an exact snapshot *of that shard* -- a job mid-transition
        is counted in exactly one state, never zero or two.  The shards
        are read sequentially with no cross-shard lock, so the merged
        total is a *smear* across the read window: a submission landing
        on an already-read shard is missed, one landing on a yet-unread
        shard is seen.  The guarantees callers (``/v1/healthz``,
        ``repro shards``) may rely on: every figure is ``>= 0``, no job
        is ever double-counted, and because jobs never migrate between
        shards the merged total over any monotone workload (submits
        only, or drains only) is itself monotone.  What they may NOT
        assume: the merged figure equals the true depth at any single
        instant while writes are in flight.
        ``tests/test_admission.py`` pins this down under a concurrent
        submit storm.
        """
        out = {s.value: 0 for s in JobState}
        for shard in self.shards:
            try:
                for state, n in shard.counts().items():
                    out[state] += n
            except sqlite3.OperationalError:
                continue
        return out

    def active_by_key(self, key: str) -> Job | None:
        try:
            return self.shard_for_key(key).active_by_key(key)
        except sqlite3.OperationalError:
            return None

    def outstanding(self) -> int:
        c = self.counts()
        return sum(c[s.value] for s in JobState if not s.terminal)

    # -- operations ------------------------------------------------------

    def shard_stats(self, now=None) -> list[dict]:
        """Per-shard depth and lease figures, wedged shards flagged.

        One entry per shard: ``index``, ``workdir``, ``ok``, the state
        ``counts``, ``outstanding``, and the number of live ``leases``.
        A shard that cannot be read reports ``ok: False`` with the error
        text instead of figures -- the shape ``/v1/healthz`` serves.
        """
        stats = []
        for i, shard in enumerate(self.shards):
            entry: dict = {"index": i, "workdir": shard.workdir}
            try:
                counts = shard.counts()
                leases = shard.active_leases(now=now)
            except sqlite3.OperationalError as exc:
                entry.update(ok=False, error=str(exc))
            else:
                entry.update(
                    ok=True,
                    counts=counts,
                    outstanding=sum(counts[s.value] for s in JobState
                                    if not s.terminal),
                    leases=len(leases),
                )
            stats.append(entry)
        return stats

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
