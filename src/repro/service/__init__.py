"""Batch job-orchestration service for pyroHPL.

One level above the in-run task DAG (:mod:`repro.sched`), the service
treats *whole benchmark runs* as schedulable jobs: a persistent queue
(:mod:`.store`), a content-addressed result cache (:mod:`.cache`), a
multiprocess worker pool with timeouts and bounded retry
(:mod:`.workers`), and a sweep expander (:mod:`.sweep`), all fronted by
the :class:`~repro.service.api.Service` facade and the ``repro submit``
/ ``workers`` / ``status`` / ``results`` / ``cancel`` CLI commands.
The facade is transport-agnostic; :mod:`repro.service.http` serves it
over a socket (``repro serve``) with blocking and asyncio clients so
remote submitters share one queue and cache.

The design follows HPC job-service practice (Balsam's job store +
launcher + worker states): jobs carry lifecycle states
``BLOCKED -> PENDING -> RUNNING -> DONE/FAILED/CANCELLED``, survive
restarts on disk, and identical submissions are deduplicated or served
from cache.  Jobs may depend on other jobs (:mod:`.dag`): a child stays
``BLOCKED`` until every parent is ``DONE`` and is cancelled when a
parent fails; :mod:`.campaign` expands a staged spec (grid ->
pick-winner -> dependent study) into such a DAG in one request.
"""

from __future__ import annotations

from .admission import AdmissionController, TokenBucket
from .api import Service, SubmitReceipt
from .cache import ResultCache, payload_key
from .campaign import CampaignStage, CampaignStore, parse_campaign_spec
from .dag import DagResolver, toposort
from .events import (
    BEGIN,
    NOW,
    EventBroker,
    EventFilter,
    decode_cursor,
    encode_cursor,
)
from .fleet import FleetSummary, RemoteWorkerPool
from .jobs import Job, JobState, Lease, new_job_id
from .shard import (
    ShardedStore,
    detect_shard_workdirs,
    shard_index,
    shard_workdirs,
)
from .store import JobStore
from .streams import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_INLINE_MAX,
    MAX_CHUNK_BYTES,
    Chunk,
    ChunkAssembler,
    decode_result,
    encode_result,
    iter_chunks,
)
from .sweep import Sweep, expand_grid
from .views import (
    CampaignView,
    DagView,
    EventView,
    JobView,
    QueuePage,
    ResultView,
    StageView,
)
from .workers import PoolSummary, WorkerOptions, WorkerPool, register_runner

__all__ = [
    "AdmissionController",
    "BEGIN",
    "CampaignStage",
    "CampaignStore",
    "CampaignView",
    "Chunk",
    "ChunkAssembler",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_INLINE_MAX",
    "DagResolver",
    "DagView",
    "EventBroker",
    "EventFilter",
    "EventView",
    "FleetSummary",
    "Job",
    "MAX_CHUNK_BYTES",
    "NOW",
    "JobState",
    "JobStore",
    "JobView",
    "Lease",
    "PoolSummary",
    "QueuePage",
    "RemoteWorkerPool",
    "ResultCache",
    "ResultView",
    "Service",
    "ShardedStore",
    "StageView",
    "SubmitReceipt",
    "Sweep",
    "TokenBucket",
    "WorkerOptions",
    "WorkerPool",
    "decode_cursor",
    "decode_result",
    "encode_cursor",
    "detect_shard_workdirs",
    "encode_result",
    "expand_grid",
    "iter_chunks",
    "new_job_id",
    "parse_campaign_spec",
    "payload_key",
    "register_runner",
    "shard_index",
    "shard_workdirs",
    "toposort",
]
