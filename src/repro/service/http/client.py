"""Clients for the HTTP front-end: blocking and asyncio-polling.

:class:`ServiceClient` is a thin blocking wrapper over
``urllib.request`` that mirrors the :class:`~repro.service.api.Service`
facade and returns the *same typed objects* local callers get:
``submit``/``submit_sweep`` a :class:`~repro.service.api.SubmitReceipt`,
``job`` a :class:`~repro.service.views.JobView`, ``status``/``queue`` a
:class:`~repro.service.views.QueuePage`, ``result`` a
:class:`~repro.service.views.ResultView`, ``submit_campaign`` /
``campaign`` a :class:`~repro.service.views.CampaignView` and
``campaign_dag`` a :class:`~repro.service.views.DagView`.  The lease
protocol the remote fleet speaks (``claim`` / ``heartbeat`` /
``complete`` / ``fail``) is exposed the same way.

Errors come back as the library's own exception types: the server puts a
stable machine-readable ``code`` in every error body
(``{"error": {"code", "message"}}``) and the client re-raises the
matching :class:`~repro.errors.ReproError` subclass -- ``bad_config`` ->
:class:`ConfigError`, ``unknown_job`` -> :class:`UnknownJobError`,
``lease_expired`` -> :class:`LeaseExpiredError`, and so on -- falling
back to the HTTP status class when a body carries no code.  Admission
rejections (429 ``overloaded`` / ``rate_limited``) are retried
transparently up to ``retry_429`` times, sleeping the server's
``Retry-After`` hint between attempts; every request carries an
``X-Client-Id`` header (one identity per client instance unless
``client_id`` is given) so per-client rate limits have a key.

:class:`AsyncServiceClient` layers asyncio on top for the batch shape
the paper's experiments have (submit a grid, gather the points): every
call is awaitable, and :meth:`AsyncServiceClient.wait` polls a set of
job ids with exponential backoff plus jitter -- the delay doubles while
nothing changes (so idle polling backs off to ``poll_max``) and resets
to ``poll_initial`` whenever a job reaches a terminal state, with a
random jitter factor so a fleet of clients does not synchronize its
polls against one server.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import io
import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import BinaryIO

from ...errors import (
    BackpressureError,
    BadCursorError,
    ChunkIntegrityError,
    ChunkOffsetError,
    ConfigError,
    CycleError,
    EventsTruncatedError,
    LeaseConflictError,
    LeaseExpiredError,
    MalformedRequestError,
    OverloadedError,
    RateLimitedError,
    ServiceError,
    ShardUnavailableError,
    UnknownCampaignError,
    UnknownJobError,
    UnknownJobKindError,
    UnknownParentError,
    UnknownRouteError,
)
from ..api import SubmitReceipt
from ..events import BEGIN, NOW
from ..jobs import Job, JobState, Lease
from ..streams import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_INLINE_MAX,
    decode_result,
    encode_result,
    iter_chunks,
)
from ..sweep import Sweep
from ..views import (
    CampaignView,
    DagView,
    EventView,
    JobView,
    QueuePage,
    ResultView,
)

#: ``code`` in an error body -> the exception class the client raises.
ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (
        ConfigError, MalformedRequestError, UnknownJobError,
        UnknownRouteError, UnknownJobKindError, LeaseConflictError,
        LeaseExpiredError, ChunkOffsetError, ChunkIntegrityError,
        ShardUnavailableError, CycleError, UnknownParentError,
        UnknownCampaignError, BackpressureError, OverloadedError,
        RateLimitedError, BadCursorError, EventsTruncatedError,
        ServiceError,
    )
}

# Fallback for bodies without a code (non-repro proxies, old servers).
_ERROR_BY_STATUS = {
    400: ConfigError,
    404: UnknownJobError,
    409: LeaseConflictError,
    422: ServiceError,
    429: BackpressureError,
}

#: States from which a job will never produce further transitions.
TERMINAL_STATES = frozenset(
    s.value for s in JobState if s.terminal
)


class WaitTimeout(ServiceError, TimeoutError):
    """A ``wait()`` deadline passed with jobs still outstanding."""

    def __init__(self, outstanding: list[str], timeout: float) -> None:
        self.outstanding = list(outstanding)
        super().__init__(
            f"timed out after {timeout:.3g}s waiting for"
            f" {len(self.outstanding)} job(s):"
            f" {', '.join(self.outstanding)}"
        )


class _Backoff:
    """Exponential backoff with jitter; resets on observed progress."""

    def __init__(self, initial: float, maximum: float, factor: float,
                 jitter: float, rng: random.Random) -> None:
        self.initial = initial
        self.maximum = maximum
        self.factor = factor
        self.jitter = jitter
        self.rng = rng
        self.delay = initial

    def next_delay(self, progressed: bool) -> float:
        if progressed:
            self.delay = self.initial
        else:
            self.delay = min(self.delay * self.factor, self.maximum)
        # uniform jitter in [1 - j, 1 + j] around the nominal delay
        return self.delay * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))


def _sweep_spec(sweep) -> dict:
    if isinstance(sweep, Sweep):
        return {"kind": sweep.kind, "axes": sweep.axes, "base": sweep.base}
    if isinstance(sweep, dict) and "kind" in sweep:
        return {"kind": sweep["kind"], "axes": sweep.get("axes", {}),
                "base": sweep.get("base", {})}
    raise ConfigError(
        "sweep must be a repro.service.Sweep or a dict with kind/axes/base"
    )


def _query(**params) -> str:
    """Encode non-None params as a query string ('' when all default).

    List/tuple/set values become repeated parameters (``doseq``) -- the
    shape the event feed's ``job_id``/``kind``/``state`` filters take.
    """
    live = {k: sorted(v) if isinstance(v, (set, frozenset)) else v
            for k, v in params.items() if v is not None}
    return "?" + urllib.parse.urlencode(live, doseq=True) if live else ""


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service URL.

    Results whose canonical encoding exceeds ``inline_max`` bytes are
    streamed transparently: :meth:`complete` switches from the inline
    ``POST .../complete`` body to the chunk-upload endpoints, and
    :meth:`result` resolves a ``stream`` descriptor by downloading the
    chunks -- callers see the same :class:`ResultView` either way.
    Smaller results use the historical requests byte-for-byte.
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 inline_max: int = DEFAULT_INLINE_MAX,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 client_id: str | None = None,
                 retry_429: int = 8,
                 retry_429_cap: float = 5.0) -> None:
        if "://" not in url:
            url = f"http://{url}"
        self.base_url = url.rstrip("/")
        self.timeout = timeout
        self.inline_max = inline_max
        self.chunk_size = chunk_size
        # Every request carries X-Client-Id so the server's per-client
        # rate limiting has an identity to key on; one id per client
        # instance by default.
        self.client_id = client_id or \
            f"client-{random.getrandbits(48):012x}"
        self.retry_429 = int(retry_429)
        self.retry_429_cap = float(retry_429_cap)
        # GET /v1 capability probe result; None until first asked.
        self._capabilities: frozenset | None = None

    # -- transport -------------------------------------------------------

    def _raise_for(self, status: int, body: dict, path: str,
                   headers=None) -> None:
        error = body.get("error")
        if isinstance(error, dict):
            cls = ERRORS_BY_CODE.get(
                error.get("code"),
                _ERROR_BY_STATUS.get(status, ServiceError),
            )
            message = error.get("message") or f"HTTP {status}"
        else:
            cls = _ERROR_BY_STATUS.get(status, ServiceError)
            message = error if isinstance(error, str) and error \
                else f"HTTP {status} from {self.base_url}{path}"
        exc = cls(message)
        # Surface the server's Retry-After hint (header first, error
        # body as fallback) on the exception for the retry loop.
        retry_after = None
        if headers is not None:
            raw = headers.get("Retry-After")
            if raw:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
        if retry_after is None and isinstance(error, dict):
            raw = error.get("retry_after")
            if isinstance(raw, (int, float)):
                retry_after = float(raw)
        if retry_after is not None:
            exc.retry_after = retry_after
        raise exc from None

    def _open(self, request, path: str,
              timeout: float | None = None) -> bytes:
        """One urlopen round-trip with the v1 error mapping applied."""
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None
                    else timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except (json.JSONDecodeError, OSError):
                payload = {}
            self._raise_for(exc.code, payload if isinstance(payload, dict)
                            else {}, path, headers=exc.headers)
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    def _send(self, request, path: str,
              timeout: float | None = None) -> bytes:
        """``_open`` with transparent 429 retry honoring Retry-After.

        Admission rejections (``overloaded``, ``rate_limited``) mean
        "the request is fine, just not now"; submissions are dedup-safe,
        so replaying one can never enqueue twice.  Up to ``retry_429``
        retries, each sleeping the server's hint capped at
        ``retry_429_cap`` seconds; ``retry_429=0`` surfaces every 429
        to the caller (what the load generator uses to *measure* them).
        """
        attempt = 0
        while True:
            try:
                return self._open(request, path, timeout=timeout)
            except BackpressureError as exc:
                if attempt >= self.retry_429:
                    raise
                attempt += 1
                hint = getattr(exc, "retry_after", 1.0)
                time.sleep(min(max(hint, 0.05), self.retry_429_cap))

    def _request(self, method: str, path: str, body: dict | None = None,
                 timeout: float | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     "X-Client-Id": self.client_id},
        )
        return json.loads(
            self._send(request, path, timeout=timeout) or b"{}")

    def _request_raw(self, method: str, path: str, data: bytes) -> dict:
        """Send a raw octet-stream body; parse the JSON response."""
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/octet-stream",
                     "X-Client-Id": self.client_id},
        )
        return json.loads(self._send(request, path) or b"{}")

    def _request_bytes(self, path: str) -> bytes:
        """GET a raw octet-stream response body."""
        request = urllib.request.Request(
            self.base_url + path, method="GET",
            headers={"X-Client-Id": self.client_id},
        )
        return self._send(request, path)

    # -- facade mirror ---------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def status(self, state: str | None = None, kind: str | None = None,
               limit: int | None = None, offset: int | None = None,
               cursor: str | None = None) -> QueuePage:
        """One filtered, windowed :class:`QueuePage` of the queue.

        Paginate either by ``limit``/``offset`` or by passing the
        previous page's opaque ``cursor`` continuation token (the page's
        ``.cursor`` attribute; ``None`` on the last page).
        """
        return QueuePage.from_dict(self._request(
            "GET",
            "/v1/queue" + _query(state=state, kind=kind, limit=limit,
                                 offset=offset, cursor=cursor),
        ))

    #: ``queue`` and ``status`` are the same page; both names kept
    #: because local callers say ``service.status()`` and operational
    #: scripts say "check the queue".
    queue = status

    def submit(self, kind: str, payload: dict, timeout: float = 0.0,
               max_retries: int = 2, depends_on=()) -> SubmitReceipt:
        """Submit one job; returns the :class:`SubmitReceipt`.

        ``depends_on`` lists parent job ids: the job starts BLOCKED and
        is released only when every parent is DONE; an unknown parent
        id raises :class:`UnknownParentError` (404 ``unknown_parent``).
        """
        return SubmitReceipt.from_dict(self._request("POST", "/v1/jobs", {
            "kind": kind, "payload": payload,
            "timeout": timeout, "max_retries": max_retries,
            "depends_on": list(depends_on),
        })["receipt"])

    def submit_sweep(self, sweep, timeout: float = 0.0,
                     max_retries: int = 2, depends_on=(),
                     batch: bool = False) -> SubmitReceipt:
        """Submit a :class:`~repro.service.Sweep` (or spec dict).

        ``depends_on`` applies to every job of the sweep.  With
        ``batch=True`` the sweep goes to ``POST /v1/jobs/batch``
        instead: still one round-trip and an identical merged receipt,
        but the server inserts the points with one transaction per
        shard rather than one per point -- use it for large grids.
        """
        body = {
            "sweep": _sweep_spec(sweep),
            "timeout": timeout, "max_retries": max_retries,
            "depends_on": list(depends_on),
        }
        path = "/v1/jobs/batch" if batch else "/v1/jobs"
        return SubmitReceipt.from_dict(
            self._request("POST", path, body)["receipt"])

    def submit_many(self, submissions, timeout: float = 0.0,
                    max_retries: int = 2) -> list[SubmitReceipt]:
        """Submit N jobs in ONE round-trip via ``POST /v1/jobs/batch``.

        ``submissions`` is a sequence of dicts with ``kind`` and
        ``payload`` plus optional per-item ``timeout`` / ``max_retries``
        / ``depends_on``; the call-level arguments are the defaults.
        Returns one :class:`SubmitReceipt` per submission in request
        order, with dedup/cache dispositions byte-identical to N single
        :meth:`submit` calls (see
        :meth:`repro.service.api.Service.submit_many`).
        """
        body = {
            "jobs": list(submissions),
            "timeout": timeout, "max_retries": max_retries,
        }
        resp = self._request("POST", "/v1/jobs/batch", body)
        return [SubmitReceipt.from_dict(r) for r in resp["receipts"]]

    # -- campaigns -------------------------------------------------------

    def submit_campaign(self, spec: dict, timeout: float = 0.0,
                        max_retries: int = 2) -> CampaignView:
        """Expand a staged spec into a job DAG server-side.

        The whole campaign is validated first: a cyclic stage graph
        raises :class:`CycleError` (422 ``cycle_detected``) and nothing
        is enqueued.  Returns the initial :class:`CampaignView`.
        """
        if not isinstance(spec, dict):
            raise ConfigError("campaign spec must be a dict")
        body = dict(spec)
        body["timeout"] = timeout
        body["max_retries"] = max_retries
        return CampaignView.from_dict(
            self._request("POST", "/v1/campaigns", body)["campaign"]
        )

    def campaign(self, campaign_id: str) -> CampaignView:
        """Live per-stage progress for one campaign."""
        return CampaignView.from_dict(self._request(
            "GET", f"/v1/campaigns/{campaign_id}"
        )["campaign"])

    def campaigns(self) -> list[CampaignView]:
        """Every campaign the coordinator knows, oldest first."""
        return [CampaignView.from_dict(c) for c in self._request(
            "GET", "/v1/campaigns"
        )["campaigns"]]

    def campaign_dag(self, campaign_id: str) -> DagView:
        """The campaign's node graph with live job states."""
        return DagView.from_dict(self._request(
            "GET", f"/v1/campaigns/{campaign_id}/dag"
        )["dag"])

    def job(self, job_id: str) -> JobView:
        return JobView.from_dict(
            self._request("GET", f"/v1/jobs/{job_id}")["job"]
        )

    def result(self, job_id: str) -> ResultView:
        """The :class:`ResultView` envelope for one job.

        A ``stream`` descriptor in the response (the result exceeded
        the server's inline threshold) is resolved transparently: the
        chunks are downloaded, verified against the declared size and
        sha256, and decoded, so the returned view is indistinguishable
        from an inline one.
        """
        body = self._request("GET", f"/v1/jobs/{job_id}/result")
        view = ResultView.from_dict(body)
        if view.stream is None:
            return view
        sink = io.BytesIO()
        self._download_stream(job_id, view.stream, sink)
        return ResultView(job=view.job, ready=True,
                          result=decode_result(sink.getvalue()))

    def _download_stream(self, job_id: str, stream: dict,
                         sink: BinaryIO) -> tuple[int, str]:
        """Ranged-download a streamed result into ``sink``; verify it."""
        size = int(stream["size"])
        expected = stream["sha256"]
        hasher = hashlib.sha256()
        offset = 0
        while offset < size:
            data = self._request_bytes(
                f"/v1/jobs/{job_id}/result/chunks"
                + _query(offset=offset, length=self.chunk_size)
            )
            if not data:
                raise ChunkIntegrityError(
                    f"result stream for job {job_id} ended at byte"
                    f" {offset} of {size}"
                )
            sink.write(data)
            hasher.update(data)
            offset += len(data)
        if hasher.hexdigest() != expected:
            raise ChunkIntegrityError(
                f"downloaded result for job {job_id} does not match"
                f" its declared sha256"
            )
        return size, expected

    def download_result(self, job_id: str, sink: BinaryIO) -> dict | None:
        """Stream one job's result bytes (canonical JSON) into ``sink``.

        Large results are fetched chunk by chunk, so client memory stays
        bounded by ``chunk_size``; inline results are encoded and
        written whole.  Returns ``{"size", "sha256"}`` on success, or
        ``None`` (nothing written) when the job has no result yet.
        """
        body = self._request("GET", f"/v1/jobs/{job_id}/result")
        view = ResultView.from_dict(body)
        if view.stream is not None:
            size, sha256 = self._download_stream(job_id, view.stream, sink)
            return {"size": size, "sha256": sha256}
        if not view.ready:
            return None
        encoded = encode_result(view.result)
        sink.write(encoded)
        return {"size": len(encoded),
                "sha256": hashlib.sha256(encoded).hexdigest()}

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; True when *this call* flipped it.

        Idempotent: an already-terminal job returns False without an
        error.  Only an unknown id raises :class:`UnknownJobError`.
        """
        return self.cancel_job(job_id)[0]

    def cancel_job(self, job_id: str) -> tuple[bool, JobView]:
        """Cancel and return ``(flipped, current JobView)``.

        The view reflects the job *after* the call either way, so a
        caller can distinguish "I cancelled it" from "it was already
        DONE/FAILED/CANCELLED" without a second request.
        """
        body = self._request("POST", f"/v1/jobs/{job_id}/cancel")
        return bool(body["cancelled"]), JobView.from_dict(body["job"])

    # -- lease protocol (remote workers) ---------------------------------

    def claim(self, worker: str, n: int = 1,
              ttl: float = 30.0) -> tuple[Lease | None, list[Job]]:
        """Lease up to ``n`` ready jobs; ``(None, [])`` when queue empty."""
        body = self._request("POST", "/v1/leases",
                             {"worker": worker, "n": n, "ttl": ttl})
        lease = Lease.from_dict(body["lease"]) if body.get("lease") else None
        jobs = [JobView.from_dict(j).to_job() for j in body.get("jobs", ())]
        return lease, jobs

    def heartbeat(self, lease_id: str, ttl: float = 30.0) -> Lease:
        """Extend a lease; raises :class:`LeaseExpiredError` if lapsed."""
        return Lease.from_dict(self._request(
            "POST", f"/v1/leases/{lease_id}/heartbeat", {"ttl": ttl}
        )["lease"])

    def complete(self, job_id: str, lease_id: str,
                 result: dict) -> JobView:
        """Upload a leased job's result; returns the DONE job view.

        A result whose canonical encoding exceeds ``inline_max`` bytes
        is uploaded through the chunk endpoints instead of the inline
        body -- same lease guard, same returned view.
        """
        encoded = encode_result(result)
        if len(encoded) > self.inline_max:
            return self._complete_streamed(job_id, lease_id, encoded)
        return JobView.from_dict(self._request(
            "POST", f"/v1/jobs/{job_id}/complete",
            {"lease": lease_id, "result": result},
        )["job"])

    def _complete_streamed(self, job_id: str, lease_id: str,
                           encoded: bytes) -> JobView:
        """Chunk-upload an encoded result, then finish the job."""
        for chunk in iter_chunks(encoded, self.chunk_size):
            self._request_raw(
                "POST",
                f"/v1/jobs/{job_id}/result/chunks"
                + _query(lease=lease_id, offset=chunk.offset,
                         sha256=chunk.sha256),
                chunk.data,
            )
        return JobView.from_dict(self._request(
            "POST", f"/v1/jobs/{job_id}/result/finish",
            {"lease": lease_id, "size": len(encoded),
             "sha256": hashlib.sha256(encoded).hexdigest()},
        )["job"])

    def fail(self, job_id: str, lease_id: str, error: str) -> JobView:
        """Report a leased attempt's failure (bounded retry applies)."""
        return JobView.from_dict(self._request(
            "POST", f"/v1/jobs/{job_id}/fail",
            {"lease": lease_id, "error": error},
        )["job"])

    # -- events & watch --------------------------------------------------

    def capabilities(self) -> frozenset:
        """The server's capability set, from one cached ``GET /v1``.

        A pre-events server has no discovery endpoint; its 404 is
        remembered as the empty set, so feature probes cost at most one
        round-trip per client for the connection's lifetime.
        """
        if self._capabilities is None:
            try:
                doc = self._request("GET", "/v1")
                caps = doc.get("capabilities", ())
                self._capabilities = frozenset(
                    c for c in caps if isinstance(c, str))
            except (UnknownRouteError, UnknownJobError):
                self._capabilities = frozenset()
        return self._capabilities

    def supports_events(self) -> bool:
        """Whether the server pushes events (else watch/wait poll)."""
        return "events" in self.capabilities()

    def events(self, cursor: str | None = None, timeout: float = 0.0,
               limit: int | None = None, job_ids=None, kinds=None,
               states=None, campaign: str | None = None,
               ) -> tuple[list[EventView], str, bool]:
        """One ``GET /v1/events`` long-poll round-trip.

        Returns ``(events, next_cursor, timed_out)``.  ``cursor`` is an
        opaque token from a previous call, ``"begin"`` (everything the
        logs hold -- the default), or ``"now"`` (only what happens from
        here on).  With ``timeout > 0`` the server holds the request
        open until a matching event arrives; the socket timeout is
        stretched to cover it.  Filters (``job_ids``, ``kinds``,
        ``states``, ``campaign``) are applied server-side.
        """
        body = self._request(
            "GET",
            "/v1/events" + _query(cursor=cursor, timeout=timeout or None,
                                  limit=limit, job_id=job_ids,
                                  kind=kinds, state=states,
                                  campaign=campaign),
            timeout=self.timeout + max(0.0, timeout),
        )
        views = [EventView.from_dict(e) for e in body.get("events", ())]
        return views, body.get("cursor", ""), bool(body.get("timed_out"))

    def events_stream(self, cursor: str | None = None, job_ids=None,
                      kinds=None, states=None,
                      campaign: str | None = None,
                      heartbeat: float = 15.0, reconnect: bool = True,
                      reconnect_delay: float = 0.2):
        """Generator over the SSE feed, resuming across disconnects.

        Yields :class:`EventView`\\ s as the server pushes them.  Each
        event's cursor is remembered; when the connection drops (server
        restart, network blip) and ``reconnect`` is true, the stream
        reconnects with ``Last-Event-ID`` set to the last delivered
        cursor, so every event is observed exactly once across the gap.
        Infinite by design -- the consumer decides when to stop.
        """
        token = cursor
        while True:
            query = _query(job_id=job_ids, kind=kinds, state=states,
                           campaign=campaign, heartbeat=heartbeat)
            headers = {"Accept": "text/event-stream",
                       "X-Client-Id": self.client_id}
            if token:
                headers["Last-Event-ID"] = token
            request = urllib.request.Request(
                self.base_url + "/v1/events" + query, headers=headers)
            try:
                resp = urllib.request.urlopen(
                    request, timeout=self.timeout + heartbeat)
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read() or b"{}")
                except (json.JSONDecodeError, OSError):
                    payload = {}
                self._raise_for(exc.code,
                                payload if isinstance(payload, dict)
                                else {}, "/v1/events", headers=exc.headers)
            except urllib.error.URLError as exc:
                if not reconnect:
                    raise ServiceError(
                        f"cannot reach service at {self.base_url}:"
                        f" {exc.reason}") from None
                time.sleep(reconnect_delay)
                continue
            try:
                with resp:
                    for view in self._parse_sse(resp):
                        token = view.cursor
                        yield view
            except (ConnectionError, TimeoutError, OSError):
                pass  # fall through to reconnect (or stop) below
            if not reconnect:
                return
            time.sleep(reconnect_delay)

    @staticmethod
    def _parse_sse(resp):
        """Yield :class:`EventView`\\ s from one SSE response body."""
        data_lines: list[str] = []
        while True:
            raw = resp.readline()
            if not raw:  # EOF: server closed the stream
                return
            line = raw.decode("utf-8", "replace").rstrip("\r\n")
            if not line:  # blank line dispatches the pending frame
                if data_lines:
                    record = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield EventView.from_dict(record)
                continue
            if line.startswith(":"):  # heartbeat comment
                continue
            field, _, value = line.partition(":")
            if value.startswith(" "):
                value = value[1:]
            if field == "data":
                data_lines.append(value)
            # ``event:`` and ``id:`` duplicate fields already inside
            # the data JSON (kind, cursor); nothing else to track.

    def watch(self, job_ids=None, kinds=None, states=None,
              campaign: str | None = None, cursor: str | None = None,
              timeout: float | None = None, poll: float = 15.0):
        """Generator of :class:`EventView`\\ s for a set of jobs.

        With ``job_ids``, the stream ends once every watched job has
        been seen reaching a terminal state; without, it streams
        matching events until ``timeout`` (forever when ``None``).
        Starts from ``cursor`` (default ``"begin"``: full replay, so a
        job that finished before the watch began is still seen
        finishing).  Raises :class:`WaitTimeout` when a deadline passes
        with watched jobs outstanding.

        Against a pre-events server this transparently degrades to
        polling job states and synthesizing an :class:`EventView` per
        observed transition -- same consumer loop either way.
        """
        watched = list(dict.fromkeys(job_ids)) if job_ids is not None \
            else None
        if not self.supports_events():
            yield from self._watch_poll(watched, timeout)
            return
        pending = set(watched) if watched is not None else None
        if pending is not None and not pending:
            return
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        token = cursor
        checked_current = False
        while True:
            budget = poll
            if deadline is not None:
                budget = min(budget, max(0.0, deadline - time.monotonic()))
            try:
                batch, token, timed_out = self.events(
                    cursor=token, timeout=budget, job_ids=watched,
                    kinds=kinds, states=states, campaign=campaign)
            except EventsTruncatedError:
                # The log was compacted past our offset; restart from
                # the new beginning and let the state check below cover
                # any transitions that fell off the log.
                token = BEGIN
                checked_current = False
                continue
            for view in batch:
                if pending is not None and view.job_id not in pending:
                    continue  # late event for an already-finished job
                yield view
                if pending is not None and view.terminal:
                    pending.discard(view.job_id)
                    if not pending:
                        return
            if pending is not None and not batch and not checked_current:
                # Caught up with nothing pending resolved: guard the
                # one hole event replay cannot cover -- a watched job
                # whose terminal event predates a compacted log.  One
                # state check per watched job, once per watch.
                checked_current = True
                for jid in sorted(pending):
                    view = self._synthesize(self.job(jid))
                    if view.terminal:
                        yield view
                        pending.discard(jid)
                if not pending:
                    return
            if deadline is not None and time.monotonic() >= deadline:
                if pending is not None:
                    raise WaitTimeout(sorted(pending), timeout)
                return

    def _watch_poll(self, watched, timeout: float | None,
                    poll_initial: float = 0.05, poll_max: float = 2.0):
        """Old-server ``watch``: poll states, synthesize transitions."""
        if watched is None:
            raise ServiceError(
                "watch() without job_ids needs a server with the"
                " events capability"
            )
        pending = set(watched)
        last: dict[str, str] = {}
        backoff = _Backoff(poll_initial, poll_max, 2.0, 0.25,
                           random.Random())
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while pending:
            progressed = False
            for jid in sorted(pending):
                job = self.job(jid)
                if last.get(jid) != job.state:
                    last[jid] = job.state
                    progressed = True
                    yield self._synthesize(job)
                    if job.state in TERMINAL_STATES:
                        pending.discard(jid)
            if not pending:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise WaitTimeout(sorted(pending), timeout)
            delay = backoff.next_delay(progressed)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)

    @staticmethod
    def _synthesize(job: JobView) -> EventView:
        """An :class:`EventView` standing in for an unobserved event.

        Used where the real audit record is unavailable (pre-events
        server, compacted log): the view carries the job's current
        state with ``kind`` lowered from it and ``shard=-1`` marking it
        synthesized.
        """
        return EventView(
            cursor="", t=job.updated, job_id=job.id,
            kind=job.state.lower(), state=job.state, shard=-1,
            data={"synthesized": True},
        )

    # -- polling ---------------------------------------------------------

    def wait(self, job_ids, timeout: float | None = None,
             poll_initial: float = 0.05, poll_max: float = 2.0,
             poll_factor: float = 2.0, jitter: float = 0.25,
             rng: random.Random | None = None) -> dict[str, ResultView]:
        """Block until every job is terminal; id -> :class:`ResultView`.

        On a server with the events capability this rides
        :meth:`watch` -- one long-poll connection instead of
        O(jobs x polls) status requests.  Against an older server it
        degrades to the historical poll loop, byte-compatible on the
        wire with pre-events clients.  The synchronous twin of
        :meth:`AsyncServiceClient.wait`.
        """
        outstanding = list(dict.fromkeys(job_ids))
        if not outstanding:
            return {}
        if not self.supports_events():
            return self._wait_poll(outstanding, timeout, poll_initial,
                                   poll_max, poll_factor, jitter, rng)
        views: dict[str, ResultView] = {}
        try:
            for view in self.watch(job_ids=outstanding,
                                   states=TERMINAL_STATES,
                                   timeout=timeout):
                if view.terminal and view.job_id not in views:
                    views[view.job_id] = self.result(view.job_id)
        except WaitTimeout:
            raise WaitTimeout(
                [jid for jid in outstanding if jid not in views], timeout
            ) from None
        return views

    def _wait_poll(self, job_ids, timeout: float | None = None,
                   poll_initial: float = 0.05, poll_max: float = 2.0,
                   poll_factor: float = 2.0, jitter: float = 0.25,
                   rng: random.Random | None = None
                   ) -> dict[str, ResultView]:
        """The historical poll-with-backoff ``wait`` (old servers)."""
        outstanding = list(dict.fromkeys(job_ids))
        views: dict[str, ResultView] = {}
        backoff = _Backoff(poll_initial, poll_max, poll_factor, jitter,
                           rng or random.Random())
        deadline = None if timeout is None else time.monotonic() + timeout
        while outstanding:
            progressed = False
            for jid in list(outstanding):
                view = self.result(jid)
                if view.state in TERMINAL_STATES:
                    views[jid] = view
                    outstanding.remove(jid)
                    progressed = True
            if not outstanding:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise WaitTimeout(outstanding, timeout)
            delay = backoff.next_delay(progressed)
            if deadline is not None:
                # Never sleep past the caller's deadline: an unclamped
                # jittered backoff step could overshoot it by up to a
                # full poll_max, turning a 0.5 s timeout into seconds.
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)
        return views


class AsyncServiceClient:
    """Asyncio wrapper: awaitable calls plus a polling ``wait`` gather.

    Blocking HTTP calls run on the event loop's default executor, so
    many clients (or many concurrent ``wait`` gathers) can share one
    loop.  Returns the same typed objects as :class:`ServiceClient`.
    Pass an ``rng`` (e.g. ``random.Random(0)``) for deterministic
    jitter in tests.
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 poll_initial: float = 0.05, poll_max: float = 2.0,
                 poll_factor: float = 2.0, jitter: float = 0.25,
                 rng: random.Random | None = None,
                 inline_max: int = DEFAULT_INLINE_MAX,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 client_id: str | None = None,
                 retry_429: int = 8,
                 retry_429_cap: float = 5.0) -> None:
        self._client = ServiceClient(url, timeout=timeout,
                                     inline_max=inline_max,
                                     chunk_size=chunk_size,
                                     client_id=client_id,
                                     retry_429=retry_429,
                                     retry_429_cap=retry_429_cap)
        self.poll_initial = poll_initial
        self.poll_max = poll_max
        self.poll_factor = poll_factor
        self.jitter = jitter
        self.rng = rng or random.Random()

    @property
    def base_url(self) -> str:
        return self._client.base_url

    async def _call(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(fn, *args, **kwargs)
        )

    async def healthz(self) -> dict:
        return await self._call(self._client.healthz)

    async def status(self, state: str | None = None,
                     kind: str | None = None, limit: int | None = None,
                     offset: int | None = None) -> QueuePage:
        return await self._call(self._client.status, state=state,
                                kind=kind, limit=limit, offset=offset)

    queue = status

    async def submit(self, kind: str, payload: dict, timeout: float = 0.0,
                     max_retries: int = 2, depends_on=()) -> SubmitReceipt:
        return await self._call(self._client.submit, kind, payload,
                                timeout=timeout, max_retries=max_retries,
                                depends_on=depends_on)

    async def submit_sweep(self, sweep, timeout: float = 0.0,
                           max_retries: int = 2, depends_on=(),
                           batch: bool = False) -> SubmitReceipt:
        return await self._call(self._client.submit_sweep, sweep,
                                timeout=timeout, max_retries=max_retries,
                                depends_on=depends_on, batch=batch)

    async def submit_many(self, submissions, timeout: float = 0.0,
                          max_retries: int = 2) -> list[SubmitReceipt]:
        return await self._call(self._client.submit_many, submissions,
                                timeout=timeout, max_retries=max_retries)

    async def submit_campaign(self, spec: dict, timeout: float = 0.0,
                              max_retries: int = 2) -> CampaignView:
        return await self._call(self._client.submit_campaign, spec,
                                timeout=timeout, max_retries=max_retries)

    async def campaign(self, campaign_id: str) -> CampaignView:
        return await self._call(self._client.campaign, campaign_id)

    async def campaigns(self) -> list[CampaignView]:
        return await self._call(self._client.campaigns)

    async def campaign_dag(self, campaign_id: str) -> DagView:
        return await self._call(self._client.campaign_dag, campaign_id)

    async def job(self, job_id: str) -> JobView:
        return await self._call(self._client.job, job_id)

    async def result(self, job_id: str) -> ResultView:
        return await self._call(self._client.result, job_id)

    async def download_result(self, job_id: str,
                              sink: BinaryIO) -> dict | None:
        return await self._call(self._client.download_result, job_id, sink)

    async def cancel(self, job_id: str) -> bool:
        return await self._call(self._client.cancel, job_id)

    async def cancel_job(self, job_id: str) -> tuple[bool, JobView]:
        return await self._call(self._client.cancel_job, job_id)

    async def claim(self, worker: str, n: int = 1,
                    ttl: float = 30.0) -> tuple[Lease | None, list[Job]]:
        return await self._call(self._client.claim, worker, n=n, ttl=ttl)

    async def heartbeat(self, lease_id: str, ttl: float = 30.0) -> Lease:
        return await self._call(self._client.heartbeat, lease_id, ttl=ttl)

    async def complete(self, job_id: str, lease_id: str,
                       result: dict) -> JobView:
        return await self._call(self._client.complete, job_id, lease_id,
                                result)

    async def fail(self, job_id: str, lease_id: str,
                   error: str) -> JobView:
        return await self._call(self._client.fail, job_id, lease_id,
                                error)

    # -- events & watch --------------------------------------------------

    async def capabilities(self) -> frozenset:
        return await self._call(self._client.capabilities)

    async def supports_events(self) -> bool:
        return await self._call(self._client.supports_events)

    async def events(self, cursor: str | None = None,
                     timeout: float = 0.0, limit: int | None = None,
                     job_ids=None, kinds=None, states=None,
                     campaign: str | None = None,
                     ) -> tuple[list[EventView], str, bool]:
        return await self._call(self._client.events, cursor=cursor,
                                timeout=timeout, limit=limit,
                                job_ids=job_ids, kinds=kinds,
                                states=states, campaign=campaign)

    async def watch(self, job_ids=None, kinds=None, states=None,
                    campaign: str | None = None,
                    cursor: str | None = None,
                    timeout: float | None = None, poll: float = 15.0):
        """Async generator twin of :meth:`ServiceClient.watch`.

        The blocking generator runs on the executor one step at a time,
        so many watches can share one event loop; long-poll blocking
        happens off-loop.
        """
        iterator = self._client.watch(job_ids=job_ids, kinds=kinds,
                                      states=states, campaign=campaign,
                                      cursor=cursor, timeout=timeout,
                                      poll=poll)
        loop = asyncio.get_running_loop()
        sentinel = object()
        while True:
            view = await loop.run_in_executor(None, next, iterator,
                                              sentinel)
            if view is sentinel:
                return
            yield view

    async def wait(self, job_ids,
                   timeout: float | None = None) -> dict[str, ResultView]:
        """Wait until every job id is terminal; id -> :class:`ResultView`.

        Covers DONE, FAILED, and CANCELLED alike -- callers decide what
        failure means for them.  Raises :class:`WaitTimeout` if
        ``timeout`` seconds pass first.  Rides :meth:`watch` on servers
        with the events capability; degrades to the historical
        backoff-and-jitter poll loop against older servers.
        """
        outstanding = list(dict.fromkeys(job_ids))
        if not outstanding:
            return {}
        if not await self.supports_events():
            return await self._wait_poll(outstanding, timeout)
        views: dict[str, ResultView] = {}
        try:
            async for view in self.watch(job_ids=outstanding,
                                         states=TERMINAL_STATES,
                                         timeout=timeout):
                if view.terminal and view.job_id not in views:
                    views[view.job_id] = await self.result(view.job_id)
        except WaitTimeout:
            raise WaitTimeout(
                [jid for jid in outstanding if jid not in views], timeout
            ) from None
        return views

    async def _wait_poll(self, job_ids,
                         timeout: float | None = None
                         ) -> dict[str, ResultView]:
        """The historical poll-with-backoff ``wait`` (old servers)."""
        outstanding = list(dict.fromkeys(job_ids))
        views: dict[str, ResultView] = {}
        backoff = _Backoff(self.poll_initial, self.poll_max,
                           self.poll_factor, self.jitter, self.rng)
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while outstanding:
            progressed = False
            for jid in list(outstanding):
                view = await self.result(jid)
                if view.state in TERMINAL_STATES:
                    views[jid] = view
                    outstanding.remove(jid)
                    progressed = True
            if not outstanding:
                break
            if deadline is not None and loop.time() >= deadline:
                raise WaitTimeout(outstanding, timeout)
            delay = backoff.next_delay(progressed)
            if deadline is not None:
                # Clamp to the remaining budget -- an unclamped jittered
                # step overshoots the caller's deadline by up to a full
                # backoff step (the PR-7 regression).
                delay = min(delay, max(0.0, deadline - loop.time()))
            await asyncio.sleep(delay)
        return views
