"""Clients for the HTTP front-end: blocking and asyncio-polling.

:class:`ServiceClient` is a thin blocking wrapper over
``urllib.request`` that mirrors the :class:`~repro.service.api.Service`
facade (submit / submit_sweep / job / result / cancel / queue) and maps
the server's error contract back onto the library's exceptions:
**400** -> :class:`~repro.errors.ConfigError`, **404** ->
:class:`~repro.errors.UnknownJobError`, **422** (and anything else) ->
:class:`~repro.errors.ServiceError`.

:class:`AsyncServiceClient` layers asyncio on top for the batch shape
the paper's experiments have (submit a grid, gather the points): every
call is awaitable, and :meth:`AsyncServiceClient.wait` polls a set of
job ids with exponential backoff plus jitter -- the delay doubles while
nothing changes (so idle polling backs off to ``poll_max``) and resets
to ``poll_initial`` whenever a job reaches a terminal state, with a
random jitter factor so a fleet of clients does not synchronize its
polls against one server.
"""

from __future__ import annotations

import asyncio
import functools
import json
import random
import time
import urllib.error
import urllib.request

from ...errors import ConfigError, ServiceError, UnknownJobError
from ..jobs import JobState
from ..sweep import Sweep

_ERROR_BY_STATUS = {
    400: ConfigError,
    404: UnknownJobError,
    422: ServiceError,
}

#: States from which a job will never produce further transitions.
TERMINAL_STATES = frozenset(
    s.value for s in JobState if s.terminal
)


class WaitTimeout(ServiceError, TimeoutError):
    """A ``wait()`` deadline passed with jobs still outstanding."""

    def __init__(self, outstanding: list[str], timeout: float) -> None:
        self.outstanding = list(outstanding)
        super().__init__(
            f"timed out after {timeout:.3g}s waiting for"
            f" {len(self.outstanding)} job(s):"
            f" {', '.join(self.outstanding)}"
        )


class _Backoff:
    """Exponential backoff with jitter; resets on observed progress."""

    def __init__(self, initial: float, maximum: float, factor: float,
                 jitter: float, rng: random.Random) -> None:
        self.initial = initial
        self.maximum = maximum
        self.factor = factor
        self.jitter = jitter
        self.rng = rng
        self.delay = initial

    def next_delay(self, progressed: bool) -> float:
        if progressed:
            self.delay = self.initial
        else:
            self.delay = min(self.delay * self.factor, self.maximum)
        # uniform jitter in [1 - j, 1 + j] around the nominal delay
        return self.delay * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))


def _sweep_spec(sweep) -> dict:
    if isinstance(sweep, Sweep):
        return {"kind": sweep.kind, "axes": sweep.axes, "base": sweep.base}
    if isinstance(sweep, dict) and "kind" in sweep:
        return {"kind": sweep["kind"], "axes": sweep.get("axes", {}),
                "base": sweep.get("base", {})}
    raise ConfigError(
        "sweep must be a repro.service.Sweep or a dict with kind/axes/base"
    )


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service URL."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        if "://" not in url:
            url = f"http://{url}"
        self.base_url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get("error", "")
            except (json.JSONDecodeError, OSError):
                message = ""
            message = message or f"HTTP {exc.code} from {self.base_url}{path}"
            cls = _ERROR_BY_STATUS.get(exc.code, ServiceError)
            raise cls(message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    # -- facade mirror ---------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def queue(self) -> dict:
        """Counts by state plus the outstanding (non-terminal) total."""
        return self._request("GET", "/v1/queue")

    def status(self) -> dict:
        """Full service status: workdir, counts, per-job summary rows."""
        return self._request("GET", "/v1/jobs")

    def submit(self, kind: str, payload: dict, timeout: float = 0.0,
               max_retries: int = 2) -> dict:
        """Submit one job; returns the receipt's disposition lists."""
        return self._request("POST", "/v1/jobs", {
            "kind": kind, "payload": payload,
            "timeout": timeout, "max_retries": max_retries,
        })

    def submit_sweep(self, sweep, timeout: float = 0.0,
                     max_retries: int = 2) -> dict:
        """Submit a :class:`~repro.service.Sweep` (or spec dict)."""
        return self._request("POST", "/v1/jobs", {
            "sweep": _sweep_spec(sweep),
            "timeout": timeout, "max_retries": max_retries,
        })

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Result view: ``{id, state, ready, result, error, cached}``."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> bool:
        """Cancel one PENDING job; True when this call cancelled it."""
        return bool(
            self._request("POST", f"/v1/jobs/{job_id}/cancel")["cancelled"]
        )

    def wait(self, job_ids, timeout: float | None = None,
             poll_initial: float = 0.05, poll_max: float = 2.0,
             poll_factor: float = 2.0, jitter: float = 0.25,
             rng: random.Random | None = None) -> dict[str, dict]:
        """Block until every job is terminal; returns id -> result view.

        The synchronous twin of :meth:`AsyncServiceClient.wait`, with
        the same backoff-and-jitter polling policy.
        """
        outstanding = list(dict.fromkeys(job_ids))
        views: dict[str, dict] = {}
        backoff = _Backoff(poll_initial, poll_max, poll_factor, jitter,
                           rng or random.Random())
        deadline = None if timeout is None else time.monotonic() + timeout
        while outstanding:
            progressed = False
            for jid in list(outstanding):
                view = self.result(jid)
                if view["state"] in TERMINAL_STATES:
                    views[jid] = view
                    outstanding.remove(jid)
                    progressed = True
            if not outstanding:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise WaitTimeout(outstanding, timeout)
            time.sleep(backoff.next_delay(progressed))
        return views


class AsyncServiceClient:
    """Asyncio wrapper: awaitable calls plus a polling ``wait`` gather.

    Blocking HTTP calls run on the event loop's default executor, so
    many clients (or many concurrent ``wait`` gathers) can share one
    loop.  Pass an ``rng`` (e.g. ``random.Random(0)``) for
    deterministic jitter in tests.
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 poll_initial: float = 0.05, poll_max: float = 2.0,
                 poll_factor: float = 2.0, jitter: float = 0.25,
                 rng: random.Random | None = None) -> None:
        self._client = ServiceClient(url, timeout=timeout)
        self.poll_initial = poll_initial
        self.poll_max = poll_max
        self.poll_factor = poll_factor
        self.jitter = jitter
        self.rng = rng or random.Random()

    @property
    def base_url(self) -> str:
        return self._client.base_url

    async def _call(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(fn, *args, **kwargs)
        )

    async def healthz(self) -> dict:
        return await self._call(self._client.healthz)

    async def queue(self) -> dict:
        return await self._call(self._client.queue)

    async def status(self) -> dict:
        return await self._call(self._client.status)

    async def submit(self, kind: str, payload: dict, timeout: float = 0.0,
                     max_retries: int = 2) -> dict:
        return await self._call(self._client.submit, kind, payload,
                                timeout=timeout, max_retries=max_retries)

    async def submit_sweep(self, sweep, timeout: float = 0.0,
                           max_retries: int = 2) -> dict:
        return await self._call(self._client.submit_sweep, sweep,
                                timeout=timeout, max_retries=max_retries)

    async def job(self, job_id: str) -> dict:
        return await self._call(self._client.job, job_id)

    async def result(self, job_id: str) -> dict:
        return await self._call(self._client.result, job_id)

    async def cancel(self, job_id: str) -> bool:
        return await self._call(self._client.cancel, job_id)

    async def wait(self, job_ids, timeout: float | None = None) -> dict[str, dict]:
        """Poll until every job id is terminal; id -> result view.

        Returns a mapping whose values are the ``/result`` views
        (``state``, ``ready``, ``result``, ``error``), covering DONE,
        FAILED, and CANCELLED alike -- callers decide what failure
        means for them.  Raises :class:`WaitTimeout` if ``timeout``
        seconds pass first.
        """
        outstanding = list(dict.fromkeys(job_ids))
        views: dict[str, dict] = {}
        backoff = _Backoff(self.poll_initial, self.poll_max,
                           self.poll_factor, self.jitter, self.rng)
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while outstanding:
            progressed = False
            for jid in list(outstanding):
                view = await self.result(jid)
                if view["state"] in TERMINAL_STATES:
                    views[jid] = view
                    outstanding.remove(jid)
                    progressed = True
            if not outstanding:
                break
            if deadline is not None and loop.time() >= deadline:
                raise WaitTimeout(outstanding, timeout)
            await asyncio.sleep(backoff.next_delay(progressed))
        return views
