"""JSON-over-HTTP front-end for the batch service (stdlib only).

:class:`ServiceHTTPServer` wraps one :class:`~repro.service.api.Service`
behind a :class:`http.server.ThreadingHTTPServer`, so many remote
clients share a single queue and result cache -- the networked analogue
of many independent submitters keeping one tiled-factorization worker
pool saturated.  Optionally it also hosts an in-process
:class:`~repro.service.workers.WorkerPool` on a background thread
(``workers > 0``), which is what ``repro serve`` runs; remote
:class:`~repro.service.fleet.RemoteWorkerPool` processes drain the same
queue through the lease endpoints.

v1 endpoints (request/response bodies are JSON unless marked *bytes*):

=======  ==================================  ===============================
method   path                                action
=======  ==================================  ===============================
GET      ``/v1``                             API discovery: ``{"version",
                                             "endpoints", "capabilities"}``
POST     ``/v1/jobs``                        submit -> ``{"receipt": ...}``
POST     ``/v1/jobs/batch``                  N submissions, one round-trip
                                             -> ``{"receipts": [...]}``
GET      ``/v1/jobs``                        queue page (filter + paginate)
GET      ``/v1/jobs/{id}``                   one job -> ``{"job": ...}``
GET      ``/v1/jobs/{id}/result``            ``{"job":..., "ready", "result"}``
POST     ``/v1/jobs/{id}/cancel``            cancel (idempotent, 200)
POST     ``/v1/jobs/{id}/complete``          leased inline result upload
POST     ``/v1/jobs/{id}/fail``              leased failure report
POST     ``/v1/jobs/{id}/result/chunks``     leased chunk upload (*bytes*;
                                             ``?lease&offset&sha256``)
POST     ``/v1/jobs/{id}/result/finish``     promote a staged upload
GET      ``/v1/jobs/{id}/result/chunks``     ranged result read (*bytes*;
                                             ``?offset&length``)
POST     ``/v1/leases``                      claim jobs under a TTL lease
POST     ``/v1/leases/{id}/heartbeat``       extend a live lease
POST     ``/v1/campaigns``                   staged spec -> ``{"campaign"}``
GET      ``/v1/campaigns``                   ``{"campaigns": [...]}``
GET      ``/v1/campaigns/{id}``              progress -> ``{"campaign"}``
GET      ``/v1/campaigns/{id}/dag``          node graph -> ``{"dag": ...}``
GET      ``/v1/queue``                       queue page (same as GET jobs)
GET      ``/v1/events``                      merged audit-event feed:
                                             long-poll (``?cursor&timeout``)
                                             or SSE (``Accept:
                                             text/event-stream``)
GET      ``/v1/healthz``                     liveness + per-state depths
=======  ==================================  ===============================

Queue pages (``GET /v1/queue`` / ``GET /v1/jobs``) paginate by
``limit``/``offset`` or by the opaque ``cursor`` continuation token the
previous page returned -- the same continuation idiom the event feed
uses.  The event feed is documented in ``docs/service.md`` ("Events &
watch"): resumable cursors over the per-shard audit logs, server-side
``job_id``/``campaign``/``state``/``kind`` filters, SSE heartbeat
comments and ``Last-Event-ID`` resume.

Submissions may carry ``depends_on`` (a list of parent job ids): the
job enters ``BLOCKED`` and is released only when every parent is
``DONE`` (see :mod:`repro.service.dag`).  Campaign specs are expanded
into such a DAG server-side, whole-or-nothing.

Error contract: every error body is
``{"error": {"code": "...", "message": "..."}}`` where ``code`` is the
stable machine-readable identifier the raised
:class:`~repro.errors.ReproError` subclass carries (``bad_config`` 400,
``malformed`` 400, ``unknown_job`` / ``unknown_route`` /
``unknown_parent`` / ``unknown_campaign`` 404, ``unknown_kind`` /
``cycle_detected`` 422, ``bad_offset`` / ``bad_chunk`` /
``bad_cursor`` 422, ``events_truncated`` 410,
``conflict`` / ``lease_expired`` 409, ``overloaded`` /
``rate_limited`` 429 with a ``Retry-After`` header,
``shard_unavailable`` 503); the HTTP status comes from the same class.
Clients re-raise the matching typed exception by ``code``.  Chunk
uploads and ranged reads move raw ``application/octet-stream`` bodies,
bounded by :data:`~repro.service.streams.MAX_CHUNK_BYTES` per request,
so the coordinator never buffers more than one chunk of a result.

Admission control (off by default) guards the three submit routes --
``POST /v1/jobs``, ``/v1/jobs/batch``, ``/v1/campaigns`` -- with a
queue-depth watermark and per-client token buckets keyed on the
``X-Client-Id`` header; see :mod:`repro.service.admission`.  Reads,
cancels, and the lease protocol are never gated, so workers can always
drain and clients can always observe a saturated queue.  ``GET
/v1/events`` is read-class by the same rule: a watcher is never 429'd,
which is the whole point -- watching must stay cheaper than the polling
it replaces even (especially) when the queue is saturated.
"""

from __future__ import annotations

import json
import math
import re
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ...config import HPLConfig
from ...errors import (
    MalformedRequestError,
    ReproError,
    ServiceError,
    UnknownRouteError,
)
from ..admission import AdmissionController
from ..api import Service, SubmitReceipt
from ..streams import DEFAULT_INLINE_MAX, MAX_CHUNK_BYTES
from ..sweep import Sweep
from ..views import JobView
from ..workers import WorkerPool

_JOB_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_RESULT_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/result$")
_CANCEL_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/cancel$")
_COMPLETE_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/complete$")
_FAIL_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/fail$")
_HEARTBEAT_RE = re.compile(r"^/v1/leases/([A-Za-z0-9_-]+)/heartbeat$")
_RESULT_CHUNKS_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/result/chunks$")
_RESULT_FINISH_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/result/finish$")
_CAMPAIGN_RE = re.compile(r"^/v1/campaigns/([A-Za-z0-9_-]+)$")
_CAMPAIGN_DAG_RE = re.compile(r"^/v1/campaigns/([A-Za-z0-9_-]+)/dag$")


def _validate_payloads(kind: str, payloads: list) -> None:
    """Reject bad submissions before they enter the queue.

    ``run`` payloads are full :class:`HPLConfig` dicts, so every grid
    point is constructed eagerly -- a bad corner fails the whole
    submission with a 400, mirroring the CLI's submit-time validation.
    """
    for payload in payloads:
        if not isinstance(payload, dict):
            raise MalformedRequestError(
                f"job payload must be a JSON object,"
                f" got {type(payload).__name__}"
            )
        if kind == "run":
            depth0 = {"depth": 0} if payload.get("schedule") == "classic" \
                else {}
            HPLConfig.from_dict({**payload, **depth0})


def _parse_depends_on(body: dict) -> list:
    depends_on = body.get("depends_on", [])
    if (not isinstance(depends_on, list)
            or not all(isinstance(p, str) and p for p in depends_on)):
        raise MalformedRequestError(
            "'depends_on' must be a list of job id strings"
        )
    return depends_on


def _parse_submission(body: dict) -> tuple[str, list[dict], Sweep | None,
                                           float, int, list]:
    if not isinstance(body, dict):
        raise MalformedRequestError("submission body must be a JSON object")
    try:
        timeout = float(body.get("timeout", 0.0))
        max_retries = int(body.get("max_retries", 2))
    except (TypeError, ValueError) as exc:
        raise MalformedRequestError(
            f"bad timeout/max_retries: {exc}"
        ) from None
    depends_on = _parse_depends_on(body)
    if "sweep" in body:
        spec = body["sweep"]
        if not isinstance(spec, dict) or "kind" not in spec:
            raise MalformedRequestError(
                "'sweep' must be an object with a 'kind'"
            )
        sweep = Sweep(
            kind=spec["kind"],
            axes=spec.get("axes", {}),
            base=spec.get("base", {}),
        )
        return (sweep.kind, sweep.expand(), sweep, timeout, max_retries,
                depends_on)
    if "kind" in body:
        payload = body.get("payload", {})
        return body["kind"], [payload], None, timeout, max_retries, \
            depends_on
    raise MalformedRequestError(
        "submission must carry either 'kind' + 'payload' or a 'sweep'"
    )


#: Safety cap on one batch request, far above the 10k-point sweep the
#: endpoint exists for but low enough that a single request cannot hold
#: the coordinator's memory hostage.
MAX_BATCH_JOBS = 100_000


def _parse_batch(body: dict) -> list[dict]:
    """Normalize a ``/v1/jobs/batch`` body into per-job submissions.

    Accepts either ``{"jobs": [{kind, payload, ...}, ...]}`` with
    optional top-level ``timeout`` / ``max_retries`` / ``depends_on``
    defaults, or ``{"sweep": {...}}`` which is expanded server-side into
    one submission per grid point -- a 10k-point sweep is one request.
    Returns plain dicts in request order, ready for
    :meth:`Service.submit_many`.
    """
    if not isinstance(body, dict):
        raise MalformedRequestError("batch body must be a JSON object")
    try:
        timeout = float(body.get("timeout", 0.0))
        max_retries = int(body.get("max_retries", 2))
    except (TypeError, ValueError) as exc:
        raise MalformedRequestError(
            f"bad timeout/max_retries: {exc}"
        ) from None
    depends_on = _parse_depends_on(body)
    if "sweep" in body:
        spec = body["sweep"]
        if not isinstance(spec, dict) or "kind" not in spec:
            raise MalformedRequestError(
                "'sweep' must be an object with a 'kind'"
            )
        sweep = Sweep(kind=spec["kind"], axes=spec.get("axes", {}),
                      base=spec.get("base", {}))
        jobs = [{"kind": sweep.kind, "payload": p} for p in sweep.expand()]
    else:
        jobs = body.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise MalformedRequestError(
                "batch must carry a non-empty 'jobs' list or a 'sweep'"
            )
    if len(jobs) > MAX_BATCH_JOBS:
        raise MalformedRequestError(
            f"batch of {len(jobs)} jobs exceeds the cap of"
            f" {MAX_BATCH_JOBS}"
        )
    out: list[dict] = []
    for i, item in enumerate(jobs):
        if not isinstance(item, dict):
            raise MalformedRequestError(
                f"jobs[{i}] must be an object, got {type(item).__name__}"
            )
        kind = item.get("kind")
        if not isinstance(kind, str) or not kind:
            raise MalformedRequestError(
                f"jobs[{i}]: 'kind' must be a non-empty string"
            )
        payload = item.get("payload", {})
        _validate_payloads(kind, [payload])
        sub = {
            "kind": kind,
            "payload": payload,
            "timeout": item.get("timeout", timeout),
            "max_retries": item.get("max_retries", max_retries),
            "depends_on": (_parse_depends_on(item)
                           if "depends_on" in item else depends_on),
        }
        out.append(sub)
    return out


def _int_param(params: dict, name: str, default=None):
    raw = params.get(name, [None])[-1]
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise MalformedRequestError(
            f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def _float_param(params: dict, name: str, default=None):
    raw = params.get(name, [None])[-1]
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise MalformedRequestError(
            f"query parameter {name!r} must be a number, got {raw!r}"
        ) from None


#: Long-poll waits and SSE heartbeat intervals are clamped to this many
#: seconds so one subscriber can never park a handler thread for long
#: without the server getting a say (clients simply re-poll).
MAX_EVENT_WAIT = 60.0

#: Per-response cap on the event batch size (and per-shard scan window).
MAX_EVENT_LIMIT = 1000

#: Things this server can do beyond the PR-3 v1 baseline, for client
#: feature detection via ``GET /v1`` -- one probe instead of sniffing
#: 404s per endpoint.
CAPABILITIES = ("batch", "campaigns", "cursor_queue", "dag", "events",
                "leases", "streams")

#: The endpoint table ``GET /v1`` serves, mirroring the module docstring.
ENDPOINTS = (
    "GET /v1",
    "GET /v1/events",
    "GET /v1/healthz",
    "GET /v1/jobs",
    "GET /v1/jobs/{id}",
    "GET /v1/jobs/{id}/result",
    "GET /v1/jobs/{id}/result/chunks",
    "GET /v1/campaigns",
    "GET /v1/campaigns/{id}",
    "GET /v1/campaigns/{id}/dag",
    "GET /v1/queue",
    "POST /v1/jobs",
    "POST /v1/jobs/batch",
    "POST /v1/jobs/{id}/cancel",
    "POST /v1/jobs/{id}/complete",
    "POST /v1/jobs/{id}/fail",
    "POST /v1/jobs/{id}/result/chunks",
    "POST /v1/jobs/{id}/result/finish",
    "POST /v1/leases",
    "POST /v1/leases/{id}/heartbeat",
    "POST /v1/campaigns",
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; route through
    # the server's quiet flag so tests and embedded servers stay silent.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    @property
    def service(self) -> Service:
        return self.server.service

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, obj: dict) -> None:
        data = json.dumps(obj, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_bytes(self, status: int, data: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, code: str, message: str,
                         retry_after: float | None = None) -> None:
        obj = {
            "error": {"code": code, "message": message.splitlines()[-1]},
        }
        if retry_after is not None:
            # HTTP Retry-After is integer seconds; round up so clients
            # never retry before the hinted window has actually passed.
            obj["error"]["retry_after"] = max(1, math.ceil(retry_after))
        data = json.dumps(obj, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if retry_after is not None:
            self.send_header("Retry-After",
                             str(obj["error"]["retry_after"]))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise MalformedRequestError("request body must be a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise MalformedRequestError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise MalformedRequestError(
                f"request body must be a JSON object,"
                f" got {type(body).__name__}"
            )
        return body

    def _dispatch(self, fn) -> None:
        try:
            status, obj = fn()
        except ReproError as exc:
            self._send_error_json(exc.http_status, exc.code, str(exc),
                                  retry_after=getattr(exc, "retry_after",
                                                      None))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, "internal",
                                  f"{type(exc).__name__}: {exc}")
        else:
            if status is None:
                return  # the route streamed its own response (SSE)
            if isinstance(obj, (bytes, bytearray)):
                self._send_bytes(status, bytes(obj))
            else:
                self._send_json(status, obj)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def _admit_submit(self) -> None:
        """Run the admission gate for one submit-path request.

        The client identity is the ``X-Client-Id`` header when present
        (what well-behaved clients send; both bundled clients do), else
        the peer address -- so an anonymous storm from one host is still
        one bucket.  Called *after* the body is read: an early 429 would
        leave the unread body poisoning the keep-alive connection.
        """
        admission: AdmissionController | None = getattr(
            self.server, "admission", None)
        if admission is None:
            return
        client_id = self.headers.get("X-Client-Id") or \
            f"ip:{self.client_address[0]}"
        admission.check_submit(client_id, self.service.store.outstanding)

    def _note_enqueued(self, receipts) -> None:
        admission: AdmissionController | None = getattr(
            self.server, "admission", None)
        if admission is not None:
            admission.note_enqueued(
                sum(len(r.new) for r in receipts))

    def _queue_page(self, query: str) -> dict:
        params = urllib.parse.parse_qs(query)
        state = params.get("state", [None])[-1] or None
        kind = params.get("kind", [None])[-1] or None
        page = self.service.status(
            state=state, kind=kind,
            limit=_int_param(params, "limit"),
            offset=_int_param(params, "offset", 0),
            cursor=params.get("cursor", [None])[-1] or None,
        )
        return page.to_dict()

    # -- the event feed --------------------------------------------------

    def _events_enabled(self) -> bool:
        return getattr(self.server, "events_enabled", True)

    def _parse_event_query(self, query: str) -> dict:
        """Shared long-poll/SSE parameter parsing -> events_page kwargs.

        SSE resume prefers an explicit ``cursor`` param, falling back to
        the standard ``Last-Event-ID`` header an EventSource reconnect
        sends.
        """
        params = urllib.parse.parse_qs(query)
        cursor = params.get("cursor", [None])[-1]
        if cursor is None:
            cursor = self.headers.get("Last-Event-ID") or None
        limit = _int_param(params, "limit", 500)
        if limit < 1 or limit > MAX_EVENT_LIMIT:
            raise MalformedRequestError(
                f"limit must be 1..{MAX_EVENT_LIMIT}, got {limit}"
            )
        timeout = _float_param(params, "timeout", 0.0)
        timeout = min(max(0.0, timeout), MAX_EVENT_WAIT)
        return {
            "cursor": cursor,
            "limit": limit,
            "timeout": timeout,
            "job_ids": params.get("job_id") or None,
            "kinds": params.get("kind") or None,
            "states": params.get("state") or None,
            "campaign": params.get("campaign", [None])[-1] or None,
        }

    def _events_route(self, query: str) -> tuple:
        if not self._events_enabled():
            raise UnknownRouteError("no such endpoint: GET /v1/events")
        kwargs = self._parse_event_query(query)
        accept = self.headers.get("Accept", "")
        if "text/event-stream" in accept:
            params = urllib.parse.parse_qs(query)
            heartbeat = _float_param(params, "heartbeat", 15.0)
            heartbeat = min(max(0.2, heartbeat), MAX_EVENT_WAIT)
            self._serve_sse(kwargs, heartbeat)
            return None, None
        views, cursor, timed_out = self.service.events_page(**kwargs)
        return 200, {
            "events": [v.to_dict() for v in views],
            "cursor": cursor,
            "timed_out": timed_out,
        }

    def _serve_sse(self, kwargs: dict, heartbeat: float) -> None:
        """Stream the feed as Server-Sent Events until the client leaves.

        Every event frame carries ``id:`` -- the cursor just past that
        event -- so a reconnecting client resumes exactly-once via
        ``Last-Event-ID``.  Comment frames (``: heartbeat``) flow every
        ``heartbeat`` seconds of silence to keep intermediaries from
        reaping the idle connection.  This is the one response the
        server frames by connection close instead of Content-Length.
        """
        # Resolve the cursor *before* streaming starts so a bad token
        # still gets its proper 422/410 JSON error.
        self.service.broker.resolve(kwargs["cursor"])
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        kwargs = dict(kwargs)
        try:
            while True:
                kwargs["timeout"] = heartbeat
                views, cursor, timed_out = \
                    self.service.events_page(**kwargs)
                kwargs["cursor"] = cursor
                if timed_out:
                    self.wfile.write(b": heartbeat\n\n")
                for view in views:
                    frame = (
                        f"event: {view.kind}\n"
                        f"id: {view.cursor}\n"
                        f"data: {json.dumps(view.to_dict(), sort_keys=True)}"
                        f"\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # the client went away; the cursor it holds resumes

    def _route_get(self) -> tuple[int, dict]:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/v1":
            # Discovery: clients feature-detect ("events", "batch", ...)
            # with one probe instead of sniffing 404s per endpoint.
            if not self._events_enabled():
                raise UnknownRouteError("no such endpoint: GET /v1")
            return 200, {
                "version": "1",
                "service": "repro",
                "capabilities": list(CAPABILITIES),
                "endpoints": list(ENDPOINTS),
                "nshards": self.service.nshards,
            }
        if path == "/v1/events":
            return self._events_route(query)
        if path == "/v1/healthz":
            shards = self.service.shard_stats()
            degraded = [s["workdir"] for s in shards if not s["ok"]]
            admission = getattr(self.server, "admission", None)
            return 200, {
                "ok": not degraded,
                "workdir": self.service.workdir,
                "workers": getattr(self.server, "workers", 0),
                "nshards": self.service.nshards,
                "shards": shards,
                "degraded": degraded,
                # Per-state queue depths (BLOCKED included), merged
                # across shards -- the one-call liveness + load probe.
                # Each shard's figure is an exact snapshot of that
                # shard; the merge is a smear across the read window
                # (see ShardedStore.counts), never negative and never
                # double-counting.
                "queue": self.service.store.counts(),
                "admission": (admission.stats()
                              if admission is not None else None),
            }
        if path in ("/v1/queue", "/v1/jobs"):
            return 200, self._queue_page(query)
        if path == "/v1/campaigns":
            return 200, {
                "campaigns": [v.to_dict()
                              for v in self.service.list_campaigns()],
            }
        m = _CAMPAIGN_DAG_RE.match(path)
        if m:
            return 200, {
                "dag": self.service.campaign_dag(m.group(1)).to_dict(),
            }
        m = _CAMPAIGN_RE.match(path)
        if m:
            return 200, {
                "campaign":
                    self.service.campaign_view(m.group(1)).to_dict(),
            }
        m = _JOB_RE.match(path)
        if m:
            return 200, {"job": self.service.job_view(m.group(1)).to_dict()}
        m = _RESULT_CHUNKS_RE.match(path)
        if m:
            params = urllib.parse.parse_qs(query)
            offset = _int_param(params, "offset", 0)
            length = _int_param(params, "length")
            if length is None:
                raise MalformedRequestError(
                    "query parameter 'length' is required"
                )
            return 200, self.service.read_result_chunk(
                m.group(1), offset, length
            )
        m = _RESULT_RE.match(path)
        if m:
            return 200, self.service.result_view(m.group(1)).to_dict()
        raise UnknownRouteError(f"no such endpoint: GET {path}")

    def _read_chunk_body(self) -> bytes:
        """The raw octet-stream body of a chunk upload, bounded.

        An oversized declaration is refused *without reading*: the
        connection is closed after the error response, since the unread
        body would otherwise corrupt the next keep-alive request.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_CHUNK_BYTES:
            self.close_connection = True
            raise MalformedRequestError(
                f"chunk of {length} bytes exceeds the"
                f" {MAX_CHUNK_BYTES}-byte cap"
            )
        return self.rfile.read(length) if length else b""

    def _route_post(self) -> tuple[int, dict]:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        m = _RESULT_CHUNKS_RE.match(path)
        if m:
            # Drain the body before any validation can raise, so an
            # error response leaves the connection reusable.
            data = self._read_chunk_body()
            params = urllib.parse.parse_qs(query)
            lease = params.get("lease", [""])[-1]
            sha256 = params.get("sha256", [""])[-1]
            offset = _int_param(params, "offset")
            if not lease or not sha256 or offset is None:
                raise MalformedRequestError(
                    "chunk upload requires 'lease', 'offset' and"
                    " 'sha256' query parameters"
                )
            received = self.service.stage_result_chunk(
                m.group(1), lease, offset, sha256, data
            )
            return 200, {"job_id": m.group(1), "received": received}
        m = _RESULT_FINISH_RE.match(path)
        if m:
            body = self._read_body()
            lease_id = body.get("lease", "")
            if not isinstance(lease_id, str) or not lease_id:
                raise MalformedRequestError(
                    "'lease' must be a non-empty string"
                )
            try:
                size = int(body["size"])
                sha256 = body["sha256"]
            except (KeyError, TypeError, ValueError) as exc:
                raise MalformedRequestError(
                    f"finish requires integer 'size' and 'sha256': {exc}"
                ) from None
            if not isinstance(sha256, str) or not sha256:
                raise MalformedRequestError(
                    "'sha256' must be a non-empty string"
                )
            job = self.service.finish_result(
                m.group(1), lease_id, size, sha256
            )
            return 200, {"job": JobView.from_job(job).to_dict()}
        if path == "/v1/jobs/batch":
            body = self._read_body()
            self._admit_submit()
            submissions = _parse_batch(body)
            receipts = self.service.submit_many(submissions)
            self._note_enqueued(receipts)
            merged = SubmitReceipt()
            for r in receipts:
                merged.merge(r)
            return 200, {
                "receipts": [r.to_dict() for r in receipts],
                "receipt": merged.to_dict(),
            }
        if path == "/v1/jobs":
            body = self._read_body()
            self._admit_submit()
            kind, payloads, sweep, timeout, max_retries, depends_on = \
                _parse_submission(body)
            _validate_payloads(kind, payloads)
            if sweep is not None:
                receipt = self.service.submit_sweep(
                    sweep, timeout=timeout, max_retries=max_retries,
                    depends_on=depends_on,
                )
            else:
                receipt = self.service.submit(
                    kind, payloads[0], timeout=timeout,
                    max_retries=max_retries, depends_on=depends_on,
                )
            self._note_enqueued([receipt])
            return 200, {"receipt": receipt.to_dict()}
        if path == "/v1/campaigns":
            body = self._read_body()
            self._admit_submit()
            try:
                timeout = float(body.pop("timeout", 0.0))
                max_retries = int(body.pop("max_retries", 2))
            except (TypeError, ValueError) as exc:
                raise MalformedRequestError(
                    f"bad timeout/max_retries: {exc}"
                ) from None
            view = self.service.submit_campaign(
                body, timeout=timeout, max_retries=max_retries
            )
            return 200, {"campaign": view.to_dict()}
        if path == "/v1/leases":
            body = self._read_body()
            worker = body.get("worker", "")
            if not isinstance(worker, str) or not worker:
                raise MalformedRequestError(
                    "'worker' must be a non-empty string"
                )
            try:
                n = int(body.get("n", 1))
                ttl = float(body.get("ttl", 30.0))
            except (TypeError, ValueError) as exc:
                raise MalformedRequestError(f"bad n/ttl: {exc}") from None
            lease, jobs = self.service.claim_jobs(worker, n=n, ttl=ttl)
            return 200, {
                "lease": lease.to_dict() if lease else None,
                "jobs": [JobView.from_job(j).to_dict() for j in jobs],
            }
        m = _HEARTBEAT_RE.match(path)
        if m:
            body = self._read_body()
            try:
                ttl = float(body.get("ttl", 30.0))
            except (TypeError, ValueError) as exc:
                raise MalformedRequestError(f"bad ttl: {exc}") from None
            lease = self.service.heartbeat(m.group(1), ttl=ttl)
            return 200, {"lease": lease.to_dict()}
        m = _COMPLETE_RE.match(path)
        if m:
            body = self._read_body()
            lease_id = body.get("lease", "")
            if not isinstance(lease_id, str) or not lease_id:
                raise MalformedRequestError(
                    "'lease' must be a non-empty string"
                )
            job = self.service.complete_job(
                m.group(1), lease_id, body.get("result")
            )
            return 200, {"job": JobView.from_job(job).to_dict()}
        m = _FAIL_RE.match(path)
        if m:
            body = self._read_body()
            lease_id = body.get("lease", "")
            if not isinstance(lease_id, str) or not lease_id:
                raise MalformedRequestError(
                    "'lease' must be a non-empty string"
                )
            job = self.service.fail_job(
                m.group(1), lease_id, str(body.get("error", ""))
            )
            return 200, {"job": JobView.from_job(job).to_dict()}
        m = _CANCEL_RE.match(path)
        if m:
            # Idempotent: cancelling an already-terminal job is a 200
            # with the current view and ``"cancelled": false``; only an
            # unknown id is a 404.
            flipped, view = self.service.cancel_job(m.group(1))
            return 200, {"job": view.to_dict(), "cancelled": flipped}
        raise UnknownRouteError(f"no such endpoint: POST {path}")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    service: Service
    quiet: bool = True
    workers: int = 0
    admission: AdmissionController | None = None
    #: ``False`` emulates a pre-events server (no ``GET /v1``, no
    #: ``GET /v1/events``) so tests can prove the clients' poll
    #: fallback against the modern codebase.
    events_enabled: bool = True


class ServiceHTTPServer:
    """One service workdir served over HTTP, with an optional pool.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  ``workers > 0`` runs an in-process
    :class:`WorkerPool` on a background thread for the server's
    lifetime, so one ``repro serve`` process is a complete batch system.
    With ``workers=0`` the process is a pure coordinator: submissions
    queue up for remote ``repro workers --url`` fleets.  Usable as a
    context manager: ``with ServiceHTTPServer(...) as srv:`` starts the
    background threads and tears them down cleanly.
    """

    def __init__(self, workdir, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, backoff_base: float = 0.5,
                 poll_interval: float = 0.02, quiet: bool = True,
                 shards: int = 1, shard_workdirs=None,
                 busy_timeout: float = 30.0,
                 inline_max: int = DEFAULT_INLINE_MAX,
                 max_queue_depth: int = 0, rate_limit: float = 0.0,
                 rate_burst: float | None = None,
                 events: bool = True) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.service = Service(workdir, backoff_base=backoff_base,
                               shards=shards,
                               shard_workdirs=shard_workdirs,
                               busy_timeout=busy_timeout,
                               inline_max=inline_max)
        self.workers = workers
        self.poll_interval = poll_interval
        # Both gates default off (0); see repro.service.admission.  The
        # controller is exposed as ``.admission`` so tests can shrink
        # depth_ttl or read rejection tallies directly.
        self.admission = (
            AdmissionController(max_queue_depth=max_queue_depth,
                                rate_limit=rate_limit,
                                rate_burst=rate_burst)
            if max_queue_depth > 0 or rate_limit > 0 else None
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self.service
        self._httpd.quiet = quiet
        self._httpd.workers = workers
        self._httpd.admission = self.admission
        self._httpd.events_enabled = events
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        self._pool_threads: list[threading.Thread] = []
        self._pool_stop = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------

    def _start_pool(self) -> None:
        if self.workers < 1 or self._pool_threads:
            return
        # One resident pool per shard workdir (a plain workdir is its
        # own single shard); all pools write the shared root cache.
        workdirs = getattr(self.service.store, "workdirs",
                           [self.service.workdir])
        self._pool_stop.clear()
        for i, workdir in enumerate(workdirs):
            pool = WorkerPool(
                workdir, nworkers=self.workers,
                poll_interval=self.poll_interval,
                backoff_base=self.service.backoff_base,
                name=f"serve-s{i}" if len(workdirs) > 1 else "serve",
                cache_dir=self.service.cache.root,
                # The service's resolver spans every shard, so a job
                # finishing on this shard releases children anywhere.
                dag=self.service.dag,
            )
            thread = threading.Thread(
                target=pool.run,
                kwargs={"drain": False, "stop": self._pool_stop},
                name=f"repro-serve-pool-{i}", daemon=True,
            )
            thread.start()
            self._pool_threads.append(thread)

    def start(self) -> "ServiceHTTPServer":
        """Serve on a background thread (returns immediately)."""
        if self._serve_thread is None:
            self._start_pool()
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-serve-http", daemon=True,
            )
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` loop)."""
        self._start_pool()
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop serving, stop the pool, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        if self._pool_threads:
            self._pool_stop.set()
            for thread in self._pool_threads:
                thread.join(timeout=30.0)
            self._pool_threads = []

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
