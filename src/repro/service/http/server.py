"""JSON-over-HTTP front-end for the batch service (stdlib only).

:class:`ServiceHTTPServer` wraps one :class:`~repro.service.api.Service`
behind a :class:`http.server.ThreadingHTTPServer`, so many remote
clients share a single queue and result cache -- the networked analogue
of many independent submitters keeping one tiled-factorization worker
pool saturated.  Optionally it also hosts an in-process
:class:`~repro.service.workers.WorkerPool` on a background thread
(``workers > 0``), which is what ``repro serve`` runs.

Endpoints (all request/response bodies are JSON):

=======  ==========================  =======================================
method   path                        action
=======  ==========================  =======================================
POST     ``/v1/jobs``                submit one job or a sweep
GET      ``/v1/jobs``                full status (counts + per-job rows)
GET      ``/v1/jobs/{id}``           one job's view
GET      ``/v1/jobs/{id}/result``    result (``ready`` flag while pending)
POST     ``/v1/jobs/{id}/cancel``    cancel a PENDING job
GET      ``/v1/queue``               counts by state + outstanding total
GET      ``/v1/healthz``             liveness probe
=======  ==========================  =======================================

Error contract: :class:`~repro.errors.ConfigError` (bad parameters) maps
to **400**, an unknown job id to **404**, any other
:class:`~repro.errors.ServiceError` (unknown kind, bad submission shape)
to **422**; every error body is a one-line ``{"error": "..."}``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ...config import HPLConfig
from ...errors import ConfigError, ServiceError, UnknownJobError
from ..api import Service, SubmitReceipt
from ..jobs import Job
from ..sweep import Sweep
from ..workers import WorkerPool

_JOB_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_RESULT_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/result$")
_CANCEL_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/cancel$")


def job_view(job: Job) -> dict:
    """The JSON shape one job is reported as over the wire."""
    return {
        "id": job.id,
        "kind": job.kind,
        "state": job.state.value,
        "attempts": job.attempts,
        "cached": job.cached,
        "key": job.key,
        "payload": job.payload,
        "error": job.error.splitlines()[-1] if job.error else "",
        "created": job.created,
        "updated": job.updated,
    }


def receipt_view(receipt: SubmitReceipt) -> dict:
    return {
        "new": receipt.new,
        "cached": receipt.cached,
        "deduped": receipt.deduped,
        "job_ids": receipt.job_ids,
    }


def _validate_payloads(kind: str, payloads: list) -> None:
    """Reject bad submissions before they enter the queue.

    ``run`` payloads are full :class:`HPLConfig` dicts, so every grid
    point is constructed eagerly -- a bad corner fails the whole
    submission with a 400, mirroring the CLI's submit-time validation.
    """
    for payload in payloads:
        if not isinstance(payload, dict):
            raise ConfigError(
                f"job payload must be a JSON object, got {type(payload).__name__}"
            )
        if kind == "run":
            depth0 = {"depth": 0} if payload.get("schedule") == "classic" \
                else {}
            HPLConfig.from_dict({**payload, **depth0})


def _parse_submission(body: dict) -> tuple[str, list[dict], Sweep | None,
                                           float, int]:
    if not isinstance(body, dict):
        raise ConfigError("submission body must be a JSON object")
    try:
        timeout = float(body.get("timeout", 0.0))
        max_retries = int(body.get("max_retries", 2))
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"bad timeout/max_retries: {exc}") from None
    if "sweep" in body:
        spec = body["sweep"]
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ConfigError("'sweep' must be an object with a 'kind'")
        sweep = Sweep(
            kind=spec["kind"],
            axes=spec.get("axes", {}),
            base=spec.get("base", {}),
        )
        return sweep.kind, sweep.expand(), sweep, timeout, max_retries
    if "kind" in body:
        payload = body.get("payload", {})
        return body["kind"], [payload], None, timeout, max_retries
    raise ServiceError(
        "submission must carry either 'kind' + 'payload' or a 'sweep'"
    )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; route through
    # the server's quiet flag so tests and embedded servers stay silent.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    @property
    def service(self) -> Service:
        return self.server.service

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, obj: dict) -> None:
        data = json.dumps(obj, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message.splitlines()[-1]})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") \
                from None

    def _dispatch(self, fn) -> None:
        try:
            status, obj = fn()
        except ConfigError as exc:
            self._send_error_json(400, str(exc))
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except ServiceError as exc:
            self._send_error_json(422, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(status, obj)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def _route_get(self) -> tuple[int, dict]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/healthz":
            return 200, {
                "ok": True,
                "workdir": self.service.workdir,
                "workers": getattr(self.server, "workers", 0),
            }
        if path == "/v1/queue":
            counts = self.service.store.counts()
            return 200, {
                "counts": counts,
                "outstanding": self.service.store.outstanding(),
            }
        if path == "/v1/jobs":
            return 200, self.service.status()
        m = _JOB_RE.match(path)
        if m:
            return 200, job_view(self.service.job(m.group(1)))
        m = _RESULT_RE.match(path)
        if m:
            job = self.service.job(m.group(1))
            result = self.service.result(job.id)
            return 200, {
                "id": job.id,
                "state": job.state.value,
                "cached": job.cached,
                "ready": result is not None,
                "result": result,
                "error": job.error.splitlines()[-1] if job.error else "",
            }
        raise UnknownJobError(f"no such endpoint: GET {path}")

    def _route_post(self) -> tuple[int, dict]:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/jobs":
            body = self._read_body()
            kind, payloads, sweep, timeout, max_retries = \
                _parse_submission(body)
            _validate_payloads(kind, payloads)
            if sweep is not None:
                receipt = self.service.submit_sweep(
                    sweep, timeout=timeout, max_retries=max_retries
                )
            else:
                receipt = self.service.submit(
                    kind, payloads[0], timeout=timeout,
                    max_retries=max_retries,
                )
            return 200, receipt_view(receipt)
        m = _CANCEL_RE.match(path)
        if m:
            job = self.service.job(m.group(1))  # 404 on unknown id
            cancelled = self.service.cancel([job.id])
            return 200, {"id": job.id, "cancelled": bool(cancelled)}
        raise UnknownJobError(f"no such endpoint: POST {path}")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    service: Service
    quiet: bool = True
    workers: int = 0


class ServiceHTTPServer:
    """One service workdir served over HTTP, with an optional pool.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  ``workers > 0`` runs an in-process
    :class:`WorkerPool` on a background thread for the server's
    lifetime, so one ``repro serve`` process is a complete batch system.
    Usable as a context manager: ``with ServiceHTTPServer(...) as srv:``
    starts the background threads and tears them down cleanly.
    """

    def __init__(self, workdir, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, backoff_base: float = 0.5,
                 poll_interval: float = 0.02, quiet: bool = True) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.service = Service(workdir, backoff_base=backoff_base)
        self.workers = workers
        self.poll_interval = poll_interval
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self.service
        self._httpd.quiet = quiet
        self._httpd.workers = workers
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        self._pool_thread: threading.Thread | None = None
        self._pool_stop = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------

    def _start_pool(self) -> None:
        if self.workers < 1 or self._pool_thread is not None:
            return
        pool = WorkerPool(
            self.service.workdir, nworkers=self.workers,
            poll_interval=self.poll_interval,
            backoff_base=self.service.backoff_base, name="serve",
        )
        self._pool_stop.clear()
        self._pool_thread = threading.Thread(
            target=pool.run,
            kwargs={"drain": False, "stop": self._pool_stop},
            name="repro-serve-pool", daemon=True,
        )
        self._pool_thread.start()

    def start(self) -> "ServiceHTTPServer":
        """Serve on a background thread (returns immediately)."""
        if self._serve_thread is None:
            self._start_pool()
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-serve-http", daemon=True,
            )
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` loop)."""
        self._start_pool()
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop serving, stop the pool, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        if self._pool_thread is not None:
            self._pool_stop.set()
            self._pool_thread.join(timeout=30.0)
            self._pool_thread = None

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
