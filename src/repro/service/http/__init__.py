"""HTTP transport for the batch service: server + clients.

The :class:`~repro.service.api.Service` facade is transport-agnostic;
this package exposes it over a socket so remote clients share one queue
and result cache.  :class:`ServiceHTTPServer` is the stdlib-only server
(``repro serve``), :class:`ServiceClient` the blocking client, and
:class:`AsyncServiceClient` the asyncio polling client with exponential
backoff + jitter.  See ``docs/service.md`` for the endpoint reference.
"""

from __future__ import annotations

from .client import (
    TERMINAL_STATES,
    AsyncServiceClient,
    ServiceClient,
    WaitTimeout,
)
from .server import ServiceHTTPServer

__all__ = [
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceHTTPServer",
    "TERMINAL_STATES",
    "WaitTimeout",
]
