"""Resumable event feed over the per-shard JSONL audit logs.

Every state transition the service commits is already durably recorded
in each shard's ``events.jsonl`` (see :meth:`JobStore._event`); this
module exposes those logs as one merged, resumable stream so clients
can *watch* jobs instead of polling them -- the O(clients x poll-rate)
status traffic the admission controller otherwise has to throttle
collapses to O(transitions).

The pieces:

* **Cursors** -- a cursor is one logical byte offset per shard, encoded
  as an opaque base64 token (:func:`encode_cursor` /
  :func:`decode_cursor`).  Offsets are stable across coordinator
  restarts *and* log compactions (each shard's ``events.base`` sidecar
  folds discarded bytes into the offset arithmetic), which is what makes
  ``Last-Event-ID`` resume exactly-once.  The sentinels ``begin`` and
  ``now`` stand for "everything the log still holds" and "only what
  happens from here on".

* **Filters** -- :class:`EventFilter` narrows a feed server-side by job
  id, audit event name (``kind``), and implied job state; filtered-out
  events still advance the cursor, so a narrow watch over a busy queue
  stays cheap for the client without ever skipping a match.

* **:class:`EventBroker`** -- the coordinator-side fan-out.  It tails
  every shard's log with cursor reads, k-way merges them into one
  stream (per-shard file order is preserved even when clock timestamps
  invert under write contention -- file order is the authoritative
  order within a shard), and wakes blocked long-poll/SSE subscribers
  from the store's append hook, falling back to a short re-check
  interval for appends made by *other* processes sharing the workdir.

No broker process, no message queue: the JSONL logs are the bus, the
cursor is the subscription state, and the client holds it.  This is the
decoupled pub/sub shape of Balsam's ``MessageInterface`` fan-out with
the durable log standing in for the AMQP broker.
"""

from __future__ import annotations

import base64
import binascii
import collections
import dataclasses
import json
import threading
import time

from ..errors import BadCursorError
from .jobs import JobState
from .views import EventView

#: Cursor sentinels accepted wherever a token is: the oldest offset the
#: logs still hold, and the offset just past everything already logged.
BEGIN = "begin"
NOW = "now"

#: Job state implied by an audit event whose record carries no explicit
#: ``state`` field.  Events absent here (``stream_started``, custom
#: ``log_event`` records, ...) imply no state at all.
IMPLIED_STATE = {
    "claimed": JobState.RUNNING.value,
    "launched": JobState.RUNNING.value,
    "released": JobState.PENDING.value,
    "cancelled": JobState.CANCELLED.value,
    "done": JobState.DONE.value,
    "failed": JobState.FAILED.value,
    "requeued": JobState.PENDING.value,
}


def encode_cursor(offsets) -> str:
    """Pack per-shard logical offsets into an opaque token."""
    payload = json.dumps({"v": 1, "o": [int(o) for o in offsets]},
                         separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode("ascii")) \
        .decode("ascii").rstrip("=")


def decode_cursor(token: str, nshards: int) -> list[int]:
    """Unpack a cursor token; reject anything that cannot be one.

    Raises :class:`BadCursorError` on undecodable tokens, unknown
    versions, negative offsets, and tokens minted against a different
    shard count (offsets are per-shard, so they do not transfer).
    """
    try:
        padded = token + "=" * (-len(token) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
    except (ValueError, binascii.Error, UnicodeEncodeError):
        raise BadCursorError(f"undecodable cursor token: {token!r}") from None
    if not isinstance(payload, dict) or payload.get("v") != 1:
        raise BadCursorError(f"unsupported cursor version in {token!r}")
    offsets = payload.get("o")
    if (not isinstance(offsets, list)
            or not all(isinstance(o, int) and o >= 0 for o in offsets)):
        raise BadCursorError(f"malformed cursor offsets in {token!r}")
    if len(offsets) != nshards:
        raise BadCursorError(
            f"cursor spans {len(offsets)} shard(s), this feed has {nshards}"
        )
    return offsets


def encode_queue_cursor(offset: int) -> str:
    """Pack a queue-page continuation offset into an opaque token.

    Queue pages and event feeds share one continuation idiom (an opaque
    ``cursor`` string), but their tokens are distinct shapes -- a queue
    token on the event feed (or vice versa) gets ``bad_cursor``.
    """
    payload = json.dumps({"v": 1, "q": int(offset)}, separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode("ascii")) \
        .decode("ascii").rstrip("=")


def decode_queue_cursor(token: str) -> int:
    """Unpack a queue-page token; :class:`BadCursorError` on junk."""
    try:
        padded = token + "=" * (-len(token) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
    except (ValueError, binascii.Error, UnicodeEncodeError):
        raise BadCursorError(
            f"undecodable queue cursor token: {token!r}"
        ) from None
    if not isinstance(payload, dict) or payload.get("v") != 1:
        raise BadCursorError(f"unsupported queue cursor version in {token!r}")
    offset = payload.get("q")
    if not isinstance(offset, int) or offset < 0:
        raise BadCursorError(f"malformed queue cursor offset in {token!r}")
    return offset


def event_state(record: dict) -> str:
    """The job state a raw audit record implies (may be empty)."""
    state = record.get("state")
    if isinstance(state, str) and state:
        return state
    return IMPLIED_STATE.get(record.get("event", ""), "")


@dataclasses.dataclass(frozen=True)
class EventFilter:
    """Server-side narrowing of a feed; ``None`` means "any".

    Matching is against the :class:`EventView` projection: ``kinds``
    are audit event names, ``states`` are implied job states -- so
    ``states={"done"}`` matches both a local pool's ``done`` event and
    a lease-completed ``done`` event, regardless of which extras the
    record carries.
    """

    job_ids: frozenset | None = None
    kinds: frozenset | None = None
    states: frozenset | None = None

    @classmethod
    def build(cls, job_ids=None, kinds=None, states=None) -> "EventFilter":
        def norm(values, fold=str):
            if values is None:
                return None
            values = frozenset(fold(v) for v in values)
            return values or None
        # Job states are canonically uppercase (``JobState.DONE.value``
        # == ``"DONE"``); accept ``state=done`` from the wire anyway.
        return cls(job_ids=norm(job_ids), kinds=norm(kinds),
                   states=norm(states, fold=lambda v: str(v).upper()))

    @property
    def empty(self) -> bool:
        return (self.job_ids is None and self.kinds is None
                and self.states is None)

    def matches(self, view: EventView) -> bool:
        if self.job_ids is not None and view.job_id not in self.job_ids:
            return False
        if self.kinds is not None and view.kind not in self.kinds:
            return False
        if self.states is not None and view.state not in self.states:
            return False
        return True


class EventBroker:
    """Shard-merging tail over the audit logs, with blocking waits.

    One broker per coordinator process, shared by every subscriber; it
    holds no per-subscriber state (the cursor each client carries *is*
    the subscription), so subscribers cost nothing between reads and a
    coordinator restart loses nothing.
    """

    def __init__(self, store, poll_interval: float = 0.2) -> None:
        self.stores = store.event_stores()
        self.nshards = len(self.stores)
        self.poll_interval = poll_interval
        self._cond = threading.Condition()
        self._version = 0
        store.set_event_hook(self._wake)

    def _wake(self) -> None:
        with self._cond:
            self._version += 1
            self._cond.notify_all()

    # -- cursor resolution ----------------------------------------------

    def begin_offsets(self) -> list[int]:
        return [s.events_base() for s in self.stores]

    def end_offsets(self) -> list[int]:
        return [s.events_end() for s in self.stores]

    def resolve(self, token: str | None) -> list[int]:
        """Offsets for a wire token (sentinels included)."""
        if token is None or token == "" or token == BEGIN:
            return self.begin_offsets()
        if token == NOW:
            return self.end_offsets()
        return decode_cursor(token, self.nshards)

    # -- reads -----------------------------------------------------------

    def read(self, offsets, limit: int = 500,
             filter: EventFilter | None = None,
             ) -> tuple[list[EventView], list[int]]:
        """One non-blocking merged read from ``offsets``.

        Returns ``(views, next_offsets)``: up to ``limit`` *matching*
        events in merged order, each carrying the cursor token that
        resumes just past it.  At most ``limit`` raw events are read
        per shard, so one call is bounded regardless of log size; a
        fully-filtered-out window returns no views but still advances
        the offsets (callers loop until offsets stop moving).

        The merge pops whichever shard's oldest unconsumed event has the
        smallest timestamp, but only ever consumes each shard's events
        in file order -- so per-shard order (the authoritative one) is
        never violated by slightly inverted wall clocks, and cutting at
        ``limit`` always leaves each shard at a clean prefix boundary.
        """
        offsets = list(offsets)
        queues = []
        for i, store in enumerate(self.stores):
            batch, _end = store.read_events(offsets[i], limit=limit)
            queues.append(collections.deque(batch))
        views: list[EventView] = []
        while len(views) < limit:
            pick = -1
            best = None
            for i, queue in enumerate(queues):
                if not queue:
                    continue
                head_t = queue[0][0].get("t", 0.0)
                if best is None or head_t < best:
                    best = head_t
                    pick = i
            if pick < 0:
                break
            record, end_offset = queues[pick].popleft()
            offsets[pick] = end_offset
            view = EventView(
                cursor=encode_cursor(offsets),
                t=record.get("t", 0.0),
                job_id=record.get("job", ""),
                kind=record.get("event", ""),
                state=event_state(record),
                shard=pick,
                data={k: v for k, v in record.items()
                      if k not in ("t", "job", "event")},
            )
            if filter is None or filter.matches(view):
                views.append(view)
        return views, offsets

    def poll(self, token: str | None, limit: int = 500,
             filter: EventFilter | None = None, timeout: float = 0.0,
             ) -> tuple[list[EventView], str, bool]:
        """Long-poll: block until a matching event arrives or timeout.

        Returns ``(views, next_token, timed_out)``.  ``timeout=0``
        makes it a plain read.  The wait wakes instantly on same-process
        appends (the store's append hook) and re-checks every
        ``poll_interval`` seconds for appends by other processes
        sharing the workdir.
        """
        offsets = self.resolve(token)
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._cond:
                version = self._version
            before = list(offsets)
            views, offsets = self.read(offsets, limit=limit, filter=filter)
            if views:
                return views, encode_cursor(offsets), False
            if offsets != before:
                continue  # scanned a filtered-out window; keep scanning
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return [], encode_cursor(offsets), True
            with self._cond:
                # An append that landed after the version snapshot (and
                # so may postdate the read) skips the wait entirely.
                if self._version == version:
                    self._cond.wait(min(remaining, self.poll_interval))
