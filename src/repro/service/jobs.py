"""The job model: one schedulable benchmark run with a lifecycle.

A :class:`Job` is a *kind* (``run`` / ``sim`` / ``scale`` / ``fact`` /
``reduce`` / ``probe``) plus a JSON payload of parameters -- for ``run``
jobs the payload is exactly :meth:`repro.config.HPLConfig.to_dict`
output.  Jobs move through
``PENDING -> RUNNING -> DONE | FAILED | CANCELLED``; a failed attempt
within the retry budget moves the job back to ``PENDING`` with a
backoff timestamp (``not_before``).  A job submitted with
``depends_on`` starts in ``BLOCKED`` instead and only turns ``PENDING``
once every parent is ``DONE`` (see :mod:`repro.service.dag`).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import time
import uuid


class JobState(str, enum.Enum):
    """Lifecycle state of a job (string-valued for storage and display)."""

    BLOCKED = "BLOCKED"
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    @property
    def active(self) -> bool:
        """Non-terminal: the job still occupies the queue."""
        return not self.terminal


#: Job kinds that bypass the result cache and active-job dedup: probes
#: exist to exercise the pool itself (sleep / crash / flaky behaviours),
#: so two identical probes must both actually run.
UNCACHED_KINDS = frozenset({"probe"})


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclasses.dataclass
class Job:
    """One queued benchmark run.

    Attributes:
        id: Short unique identifier.
        kind: Runner name (``run``/``sim``/``scale``/``fact``/``probe``).
        payload: JSON-serializable parameter dict for the runner.
        key: Content hash of ``(kind, payload)`` -- the cache key.
        state: Lifecycle state.
        attempts: Number of times a worker has claimed this job.
        max_retries: Extra attempts allowed after the first failure
            (total attempts = ``1 + max_retries``).
        timeout: Per-attempt wall-clock limit in seconds (0 = none).
        not_before: Earliest time a worker may claim the job (backoff).
        error: Last failure's one-line summary + traceback (FAILED jobs).
        result_key: Cache key of the stored result (DONE jobs).
        cached: True when the job was satisfied from cache at submit
            time and never ran.
        worker: Name of the worker slot that last claimed the job.
        lease_id: Id of the remote lease holding the job while RUNNING
            (empty for jobs run by a local, same-filesystem pool).
        lease_expires: Unix time the holding lease lapses; after it a
            still-RUNNING job is requeued and late reports are rejected.
        created / updated: Unix timestamps.
        depends_on: Parent job ids; the job stays BLOCKED until every
            parent is DONE (see :mod:`repro.service.dag`).
        parent_results: Transient parent outputs injected by the worker
            pool just before launch (``{parent_id: {"payload", "result"}}``
            for reduce jobs and ``$winner`` placeholders).  Never
            persisted -- not part of :data:`COLUMNS`.
    """

    id: str
    kind: str
    payload: dict
    key: str
    state: JobState = JobState.PENDING
    attempts: int = 0
    max_retries: int = 2
    timeout: float = 0.0
    not_before: float = 0.0
    error: str = ""
    result_key: str = ""
    cached: bool = False
    worker: str = ""
    lease_id: str = ""
    lease_expires: float = 0.0
    created: float = 0.0
    updated: float = 0.0
    depends_on: list = dataclasses.field(default_factory=list)
    parent_results: dict | None = dataclasses.field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.created:
            self.created = time.time()
        if not self.updated:
            self.updated = self.created
        if isinstance(self.state, str) and not isinstance(self.state, JobState):
            self.state = JobState(self.state)

    def to_row(self) -> tuple:
        """Column tuple in :data:`COLUMNS` order (payload as JSON)."""
        return (
            self.id, self.kind, json.dumps(self.payload, sort_keys=True),
            self.key, self.state.value, self.attempts, self.max_retries,
            self.timeout, self.not_before, self.error, self.result_key,
            int(self.cached), self.worker, self.lease_id,
            self.lease_expires, self.created, self.updated,
            json.dumps(self.depends_on),
        )

    @classmethod
    def from_row(cls, row) -> "Job":
        (jid, kind, payload, key, state, attempts, max_retries, timeout,
         not_before, error, result_key, cached, worker, lease_id,
         lease_expires, created, updated, depends_on) = row
        return cls(
            id=jid, kind=kind, payload=json.loads(payload), key=key,
            state=JobState(state), attempts=attempts,
            max_retries=max_retries, timeout=timeout,
            not_before=not_before, error=error, result_key=result_key,
            cached=bool(cached), worker=worker, lease_id=lease_id,
            lease_expires=lease_expires, created=created,
            updated=updated, depends_on=json.loads(depends_on or "[]"),
        )


COLUMNS = (
    "id", "kind", "payload", "key", "state", "attempts", "max_retries",
    "timeout", "not_before", "error", "result_key", "cached", "worker",
    "lease_id", "lease_expires", "created", "updated", "depends_on",
)


@dataclasses.dataclass
class Lease:
    """One worker's time-bounded claim on a batch of RUNNING jobs.

    A lease is how a worker with *no shared filesystem* holds jobs: the
    store grants it at claim time with a TTL, heartbeats extend it, and
    a lease that lapses (worker died, network partition) forfeits its
    jobs back to PENDING -- exactly once, by the expiry sweep.
    """

    id: str
    worker: str
    created: float
    expires: float

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "worker": self.worker,
            "created": self.created,
            "expires": self.expires,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            id=data["id"], worker=data["worker"],
            created=data["created"], expires=data["expires"],
        )


def new_lease_id() -> str:
    return uuid.uuid4().hex[:12]
