"""Remote worker fleet: drain a coordinator's queue over HTTP.

:class:`RemoteWorkerPool` is the networked sibling of
:class:`~repro.service.workers.WorkerPool`: it runs the same
:data:`~repro.service.workers.RUNNERS` in local child processes (same
crash isolation, same per-job timeout), but instead of sharing the
coordinator's filesystem it *leases* jobs over the v1 HTTP API --
``POST /v1/leases`` claims a batch with a TTL,
``POST /v1/leases/{id}/heartbeat`` keeps it alive while children run,
and ``POST /v1/jobs/{id}/complete|fail`` uploads each outcome.  N hosts
each running ``repro workers --url http://coordinator:8400`` drain one
queue and fill one content-addressed result cache, which is how a sweep
like the paper's Fig. 8 stops being bounded by a single machine.

Failure model: if this process dies (or the network partitions), its
heartbeats stop, the lease lapses, and the coordinator requeues the
jobs exactly once -- the mirror of the local pool's orphan recovery.  A
report that loses the race against lease expiry gets a 409
``lease_expired`` and the job is counted ``lost`` here, never recorded
twice there.  Transient HTTP failures are retried with exponential
backoff before an attempt is given up.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import socket
import time
import traceback
from dataclasses import dataclass, field

from ..errors import LeaseConflictError, ServiceError, UnknownJobError
from .dag import has_placeholders, needs_parent_results, resolve_payload
from .http.client import ServiceClient, _Backoff
from .jobs import Job
from .workers import WorkerOptions, runner_for


def _remote_child_main(job: Job, conn) -> None:
    """Run one leased job in a child; ship the result through the pipe.

    Unlike the local pool's child, the result dict itself crosses the
    pipe (there is no shared cache directory to write into); the
    supervisor uploads it to the coordinator, which owns the cache.
    """
    try:
        result = runner_for(job.kind)(job.payload, job)
        conn.send(("ok", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except BaseException:
            pass
    finally:
        conn.close()


@dataclass
class _Slot:
    """One in-flight leased job: process, pipe, deadline, owning lease."""

    job: Job
    process: multiprocessing.Process
    conn: object
    deadline: float  # 0 = no timeout
    lease_id: str


@dataclass
class FleetSummary:
    """What one :meth:`RemoteWorkerPool.run` call did.

    ``lost`` counts attempts whose report the coordinator rejected with
    ``lease_expired``/``conflict`` (it had already requeued the job) or
    that could not be reported at all -- never double-recorded work.
    """

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    counts: dict = field(default_factory=dict)


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class RemoteWorkerPool:
    """Lease-driven worker pool for one coordinator URL.

    ``options`` is the same :class:`WorkerOptions` bundle the local pool
    takes; ``options.lease_ttl`` sets the claim TTL (heartbeats fire at
    half-TTL while any child of that lease is still running).
    """

    def __init__(self, url: str, options: WorkerOptions | None = None,
                 worker: str | None = None,
                 client: ServiceClient | None = None) -> None:
        self.options = options or WorkerOptions()
        if self.options.n < 1:
            raise ServiceError(
                f"nworkers must be >= 1, got {self.options.n}"
            )
        # The client inherits the pool's inline threshold, so a child's
        # oversized result is chunk-streamed to the coordinator without
        # any code here knowing: ``client.complete`` switches paths.
        self.client = client or ServiceClient(
            url, inline_max=self.options.inline_max
        )
        self.worker = worker or default_worker_name()
        self._slots: list[_Slot] = []
        self._leases: dict[str, float] = {}  # lease id -> expiry time
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # -- HTTP with retry -------------------------------------------------

    def _with_retries(self, fn, *args, attempts: int = 4, **kwargs):
        """Call the coordinator, retrying transient transport failures.

        Lease/job-state rejections (``lease_expired``, ``conflict``,
        ``unknown_job``) are *not* transient and re-raise immediately;
        anything else service-shaped is retried with exponential
        backoff and then re-raised.
        """
        delay = 0.1
        for attempt in range(attempts):
            try:
                return fn(*args, **kwargs)
            except (LeaseConflictError, UnknownJobError):
                raise
            except ServiceError:
                if attempt == attempts - 1:
                    raise
                time.sleep(delay)
                delay *= 2

    # -- slot management -------------------------------------------------

    def _launch(self, job: Job, lease_id: str) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_remote_child_main,
            args=(job, child_conn),
            name=f"{self.worker}-{job.id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = time.time() + job.timeout if job.timeout > 0 else 0.0
        self._slots.append(_Slot(job, proc, parent_conn, deadline,
                                 lease_id))

    def _report(self, slot: _Slot, summary: FleetSummary,
                error: str | None, result: dict | None) -> None:
        try:
            if error is None and result is not None:
                self._with_retries(
                    self.client.complete, slot.job.id, slot.lease_id,
                    result,
                )
                summary.completed += 1
            else:
                self._with_retries(
                    self.client.fail, slot.job.id, slot.lease_id,
                    error or "worker child died without reporting",
                )
                summary.failed += 1
        except (LeaseConflictError, UnknownJobError, ServiceError):
            # The coordinator refused the report (lease lapsed, job
            # requeued/completed elsewhere) or stayed unreachable: the
            # lease-expiry sweep owns the job now.  Never retried here,
            # so the job cannot be recorded twice.
            summary.lost += 1

    def _reap(self, summary: FleetSummary) -> None:
        now = time.time()
        live: list[_Slot] = []
        for slot in self._slots:
            if slot.process.is_alive():
                if slot.deadline and now >= slot.deadline:
                    slot.process.terminate()
                    slot.process.join(timeout=5.0)
                    if slot.process.is_alive():  # pragma: no cover
                        slot.process.kill()
                        slot.process.join()
                    slot.conn.close()
                    self._report(
                        slot, summary,
                        f"timeout: exceeded {slot.job.timeout:.3g}s", None,
                    )
                else:
                    live.append(slot)
                continue
            slot.process.join()
            outcome: tuple | None = None
            if slot.conn.poll():
                try:
                    outcome = slot.conn.recv()
                except (EOFError, OSError):
                    outcome = None
            slot.conn.close()
            if outcome is not None and outcome[0] == "ok":
                self._report(slot, summary, None, outcome[1])
            elif outcome is not None:
                self._report(slot, summary, outcome[1], None)
            else:
                self._report(
                    slot, summary,
                    "worker child crashed"
                    f" (exit code {slot.process.exitcode})", None,
                )
        self._slots = live
        self._leases = {
            lid: exp for lid, exp in self._leases.items()
            if any(s.lease_id == lid for s in self._slots)
        }

    def _heartbeat(self) -> None:
        """Extend every lease that still has children, at half-TTL."""
        now = time.time()
        ttl = self.options.lease_ttl
        for lid, expires in list(self._leases.items()):
            if now < expires - ttl / 2.0:
                continue
            try:
                lease = self._with_retries(
                    self.client.heartbeat, lid, ttl=ttl, attempts=2,
                )
                self._leases[lid] = lease.expires
            except (LeaseConflictError, ServiceError):
                # Lease gone: the coordinator requeued our jobs.  Stop
                # burning cores on work that now belongs to someone else.
                self._leases.pop(lid, None)
                for slot in self._slots:
                    if slot.lease_id == lid and slot.process.is_alive():
                        slot.process.terminate()

    def _prepare(self, job: Job) -> None:
        """Fetch parent results for reduce / ``$winner`` jobs over HTTP.

        A leased job's parents are all DONE (the coordinator only
        releases it then), so their results are one ``GET`` each; the
        client resolves chunk-streamed results transparently.  A
        missing result raises :class:`ServiceError` and the attempt is
        failed back to the coordinator through the retry policy.
        """
        if not needs_parent_results(job):
            return
        parent_results: dict = {}
        for pid in job.depends_on:
            view = self._with_retries(self.client.result, pid, attempts=2)
            if not view.ready or view.result is None:
                raise ServiceError(
                    f"parent {pid} result unavailable"
                    f" (state {view.state})"
                )
            parent_results[pid] = {"payload": view.job.payload,
                                   "result": view.result}
        job.parent_results = parent_results
        if has_placeholders(job.payload):
            job.payload = resolve_payload(job.payload, parent_results)

    def _claim(self, summary: FleetSummary) -> bool:
        free = self.options.n - len(self._slots)
        if free < 1:
            return False
        lease, jobs = self._with_retries(
            self.client.claim, worker=self.worker, n=free,
            ttl=self.options.lease_ttl,
        )
        if lease is None or not jobs:
            return False
        self._leases[lease.id] = lease.expires
        for job in jobs:
            summary.claimed += 1
            try:
                self._prepare(job)
            except ServiceError as exc:
                try:
                    self._with_retries(
                        self.client.fail, job.id, lease.id,
                        f"dag input error: {exc}", attempts=2,
                    )
                    summary.failed += 1
                except (LeaseConflictError, UnknownJobError, ServiceError):
                    summary.lost += 1
                continue
            self._launch(job, lease.id)
        return True

    # -- main loop -------------------------------------------------------

    def run(self, max_seconds: float | None = None) -> FleetSummary:
        """Lease and execute jobs until the coordinator's queue drains.

        With ``options.drain`` (the default) the pool exits once the
        coordinator reports zero outstanding jobs -- which waits out
        other workers' leases too, so a fleet member survives to pick
        up a dead sibling's requeued jobs.  ``options.drain=False``
        polls forever (a resident worker host) until ``max_seconds``
        (or ``options.max_seconds``) elapses or the process is
        interrupted; children are terminated and their attempts failed
        back to the coordinator on the way out, so the jobs requeue
        immediately instead of waiting out the lease.
        """
        options = self.options
        max_seconds = max_seconds if max_seconds is not None \
            else options.max_seconds
        summary = FleetSummary()
        start = time.time()
        # The idle sleep must never outlast the heartbeat window: cap it
        # at a quarter TTL so a lease is always renewed before half-TTL
        # sleep drift can let it lapse under a healthy worker.
        idle = _Backoff(max(options.poll_interval, 0.01),
                        min(2.0, options.lease_ttl / 4.0), 2.0, 0.1,
                        random.Random())
        try:
            while True:
                self._reap(summary)
                self._heartbeat()
                claimed = False
                try:
                    claimed = self._claim(summary)
                except (LeaseConflictError, UnknownJobError,
                        ServiceError):
                    pass  # coordinator briefly unreachable; keep polling
                if options.drain and not self._slots and not claimed:
                    try:
                        outstanding = self.client.queue(limit=0).outstanding
                    except ServiceError:
                        outstanding = -1
                    if outstanding == 0:
                        break
                if max_seconds is not None \
                        and time.time() - start > max_seconds:
                    break
                time.sleep(idle.next_delay(progressed=claimed))
        finally:
            self._shutdown(summary)
        try:
            summary.counts = dict(self.client.queue(limit=0).counts)
        except ServiceError:
            pass  # summary still useful without final queue counts
        return summary

    def _shutdown(self, summary: FleetSummary) -> None:
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():  # pragma: no cover
                    slot.process.kill()
                    slot.process.join()
            slot.conn.close()
            self._report(slot, summary, "remote worker pool shut down",
                         None)
        self._slots = []
        self._leases = {}
