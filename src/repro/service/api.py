"""The service facade: submit / status / results / cancel / run_workers.

:class:`Service` ties the store, cache, sweep expander, and worker pool
together behind the surface the CLI (and future HTTP front-ends) use.
Submission is where result reuse happens:

* a payload whose content key already has a cached result is recorded as
  a DONE job immediately (``cached=True``) and never enters the queue;
* a payload whose key matches a PENDING/RUNNING job is *deduplicated* --
  the existing job's id is returned instead of queueing a twin;
* everything else becomes a PENDING job for the workers.

``probe`` jobs bypass both paths (see
:data:`repro.service.jobs.UNCACHED_KINDS`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from ..errors import (
    MalformedRequestError,
    ServiceError,
    UnknownJobError,
    UnknownJobKindError,
    UnknownParentError,
)
from .cache import ResultCache, payload_key
from .campaign import (CampaignStore, build_campaign_view, build_dag_view,
                       make_record, new_campaign_id, parse_campaign_spec)
from .dag import DagResolver
from .events import (EventBroker, EventFilter, decode_queue_cursor,
                     encode_queue_cursor)
from .jobs import UNCACHED_KINDS, Job, JobState, Lease, new_job_id
from .shard import (ShardedStore, detect_shard_workdirs,
                    shard_workdirs as _shard_layout)
from .store import JobStore
from .streams import DEFAULT_INLINE_MAX, MAX_CHUNK_BYTES
from .sweep import Sweep
from .views import CampaignView, DagView, JobView, QueuePage, ResultView
from .workers import RUNNERS, PoolSummary, WorkerOptions, WorkerPool

DEFAULT_WORKDIR = ".repro-service"


@dataclass
class SubmitReceipt:
    """What one submission call did, job ids grouped by disposition.

    This is *the* submit response shape everywhere: the facade returns
    it, the HTTP server serializes :meth:`to_dict` as the
    ``{"receipt": {...}}`` envelope, and the clients rebuild it with
    :meth:`from_dict` so remote and local submission hand the caller
    the identical object.
    """

    new: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    deduped: list[str] = field(default_factory=list)

    @property
    def job_ids(self) -> list[str]:
        return self.new + self.cached + self.deduped

    def merge(self, other: "SubmitReceipt") -> None:
        self.new += other.new
        self.cached += other.cached
        self.deduped += other.deduped

    def to_dict(self) -> dict:
        return {
            "new": list(self.new),
            "cached": list(self.cached),
            "deduped": list(self.deduped),
            "job_ids": self.job_ids,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SubmitReceipt":
        return cls(
            new=list(data.get("new", ())),
            cached=list(data.get("cached", ())),
            deduped=list(data.get("deduped", ())),
        )


class Service:
    """One service instance rooted at a workdir (queue + cache on disk).

    ``shards > 1`` (or an explicit ``shard_workdirs`` list) fans the
    queue over N workdir shards behind a
    :class:`~repro.service.shard.ShardedStore`; the result cache stays
    single and shared (it is content-addressed, so shard routing never
    affects it).  ``shards=1`` with no explicit list is the historical
    single-:class:`JobStore` service, bit-for-bit -- and a pre-shard
    workdir *is* shard 0 of 1, so no migration step exists.
    """

    def __init__(self, workdir=DEFAULT_WORKDIR,
                 backoff_base: float = 0.5, shards: int = 1,
                 shard_workdirs=None,
                 busy_timeout: float = 30.0,
                 inline_max: int = DEFAULT_INLINE_MAX) -> None:
        self.workdir = os.fspath(workdir)
        if shard_workdirs is None and shards == 1:
            # Respect a shards/ layout already on disk: reopening a
            # sharded workdir without --shards must not strand the
            # shard queues.
            detected = detect_shard_workdirs(self.workdir)
            if detected != [self.workdir]:
                shard_workdirs = detected
        if shard_workdirs is None and shards > 1:
            shard_workdirs = _shard_layout(self.workdir, shards)
        if shard_workdirs is not None:
            self.store = ShardedStore(shard_workdirs,
                                      busy_timeout=busy_timeout)
        else:
            self.store = JobStore(self.workdir,
                                  busy_timeout=busy_timeout)
        self.inline_max = inline_max
        self.cache = ResultCache(os.path.join(self.workdir, "cache"),
                                 inline_max=inline_max)
        self.backoff_base = backoff_base
        self.campaigns = CampaignStore(
            os.path.join(self.workdir, "campaigns"))
        # Dependency-aware release: the resolver hangs off the store's
        # terminal hook so a parent finishing on any shard releases (or
        # cancels) its children event-driven.  The opening sweep is
        # crash recovery -- a coordinator SIGKILLed between a parent's
        # commit and its children's release reconciles here.
        self.dag = DagResolver(self.store)
        self.store.set_terminal_hook(self.dag.on_terminal)
        self.dag.sweep()
        # The event feed: tails every shard's audit log with resumable
        # cursors and wakes long-poll/SSE subscribers on append.  Holds
        # no subscriber state, so constructing it is cheap even for
        # one-shot CLI calls.
        self.broker = EventBroker(self.store)

    @property
    def nshards(self) -> int:
        """How many shards back the queue (1 for a plain store)."""
        return getattr(self.store, "nshards", 1)

    def shard_stats(self) -> list[dict]:
        """Per-shard depth/lease figures (one entry even when unsharded)."""
        if isinstance(self.store, ShardedStore):
            return self.store.shard_stats()
        counts = self.store.counts()
        leases = self.store.active_leases()
        return [{
            "index": 0, "workdir": self.store.workdir, "ok": True,
            "counts": counts,
            "outstanding": sum(counts[s.value] for s in JobState
                               if not s.terminal),
            "leases": len(leases),
        }]

    # -- submission ------------------------------------------------------

    def _check_parents(self, depends_on) -> tuple[list[str], bool]:
        """Validate ``depends_on``; returns ``(parent_ids, all_done)``.

        Parent ids are deduplicated preserving order; every parent must
        already exist (:class:`UnknownParentError` / 404 otherwise).  A
        single direct submission cannot create a cycle -- its own id
        does not exist yet, so a self- or forward-reference fails the
        existence check; cyclic *stage* graphs are rejected by the
        campaign expander before anything is enqueued.
        """
        parents = list(dict.fromkeys(depends_on))
        for pid in parents:
            if not isinstance(pid, str) or not pid:
                raise MalformedRequestError(
                    "depends_on entries must be non-empty job-id strings"
                )
        all_done = True
        for pid in parents:
            try:
                parent = self.store.get(pid)
            except UnknownJobError:
                raise UnknownParentError(
                    f"unknown parent job: {pid}"
                ) from None
            if parent.state is not JobState.DONE:
                all_done = False
        return parents, all_done

    def submit(self, kind: str, payload: dict, timeout: float = 0.0,
               max_retries: int = 2, depends_on=()) -> SubmitReceipt:
        """Submit one job; serve from cache / dedupe when possible.

        ``depends_on`` lists parent job ids: the job starts BLOCKED and
        only turns PENDING once every parent is DONE (a failed parent
        cancels it instead).  Parent ids are part of the content key --
        a reduce over one grid is not a reduce over another -- so cache
        reuse and dedup stay correct for dependent jobs.
        """
        if kind not in RUNNERS:
            raise UnknownJobKindError(
                f"unknown job kind {kind!r}"
                f" (known: {', '.join(sorted(RUNNERS))})"
            )
        if max_retries < 0:
            raise MalformedRequestError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        parents, parents_done = self._check_parents(depends_on)
        key = payload_key(kind, payload, parents=parents)
        receipt = SubmitReceipt()
        job = Job(
            id=new_job_id(), kind=kind, payload=payload, key=key,
            timeout=timeout, max_retries=max_retries,
            state=JobState.PENDING if parents_done else JobState.BLOCKED,
            depends_on=parents,
        )
        if kind not in UNCACHED_KINDS:
            if key in self.cache:
                # A cached result under a parent-aware key implies the
                # same child of the same parents already completed, so
                # the parents were DONE -- serving it needs no release.
                job.state = JobState.DONE
                job.result_key = key
                job.cached = True
                self.store.add(job)
                receipt.cached.append(job.id)
                return receipt
            # The existence check and the insert are one store
            # transaction, so concurrent submitters (HTTP handler
            # threads, parallel processes) can never queue two active
            # jobs for one content key.
            added, existing = self.store.add_if_no_active(job)
            if existing is not None:
                receipt.deduped.append(existing.id)
                return receipt
            receipt.new.append(added.id)
        else:
            self.store.add(job)
            receipt.new.append(job.id)
        if job.state is JobState.BLOCKED:
            # Close the submit-vs-completion race: a parent that turned
            # terminal between the state check above and the insert
            # fired its hook before this child's edges existed.
            self.dag.reconcile(job.id)
        return receipt

    def submit_sweep(self, sweep: Sweep, timeout: float = 0.0,
                     max_retries: int = 2, depends_on=()) -> SubmitReceipt:
        """Expand a sweep and submit every unique point."""
        receipt = SubmitReceipt()
        for payload in sweep.expand():
            receipt.merge(
                self.submit(sweep.kind, payload, timeout=timeout,
                            max_retries=max_retries,
                            depends_on=depends_on)
            )
        return receipt

    def submit_many(self, submissions, timeout: float = 0.0,
                    max_retries: int = 2) -> list[SubmitReceipt]:
        """Submit N jobs with one store transaction per shard.

        ``submissions`` is a sequence of dicts, each with ``kind`` and
        ``payload`` plus optional per-item ``timeout`` / ``max_retries``
        / ``depends_on`` overriding the call-level defaults.  Returns
        one :class:`SubmitReceipt` per submission, **in request order**,
        each identical to what :meth:`submit` would have returned for
        that item submitted alone in sequence -- same cache hits, same
        dedup (including duplicates *within* the batch deduplicating
        against the batch's own earlier items), same content keys.  The
        only differences are mechanical: one round of validation before
        anything is enqueued (so a malformed item rejects the whole
        batch with nothing inserted), and one ``BEGIN IMMEDIATE`` per
        shard instead of one per job -- which is the entire point, per
        the tiled-algorithms rule that per-item overhead caps sustained
        throughput.  ``depends_on`` may only name jobs that already
        exist; batch items cannot reference each other (their ids are
        not assigned until the batch commits) -- use a campaign for
        staged graphs.
        """
        staged: list[tuple[Job, bool, str]] = []
        for i, sub in enumerate(submissions):
            if not isinstance(sub, dict):
                raise MalformedRequestError(
                    f"submission #{i} must be an object, got"
                    f" {type(sub).__name__}"
                )
            kind = sub.get("kind")
            payload = sub.get("payload")
            if not isinstance(kind, str) or not kind:
                raise MalformedRequestError(
                    f"submission #{i}: 'kind' must be a non-empty string"
                )
            if kind not in RUNNERS:
                raise UnknownJobKindError(
                    f"submission #{i}: unknown job kind {kind!r}"
                    f" (known: {', '.join(sorted(RUNNERS))})"
                )
            if not isinstance(payload, dict):
                raise MalformedRequestError(
                    f"submission #{i}: 'payload' must be an object"
                )
            item_retries = int(sub.get("max_retries", max_retries))
            if item_retries < 0:
                raise MalformedRequestError(
                    f"submission #{i}: max_retries must be >= 0,"
                    f" got {item_retries}"
                )
            parents, parents_done = self._check_parents(
                sub.get("depends_on", ()))
            key = payload_key(kind, payload, parents=parents)
            job = Job(
                id=new_job_id(), kind=kind, payload=payload, key=key,
                timeout=float(sub.get("timeout", timeout)),
                max_retries=item_retries,
                state=(JobState.PENDING if parents_done
                       else JobState.BLOCKED),
                depends_on=parents,
            )
            if kind not in UNCACHED_KINDS and key in self.cache:
                # Same cache-hit shape as single submit: recorded DONE,
                # never queued.  dedup=False matches the single path's
                # unconditional ``store.add``.
                job.state = JobState.DONE
                job.result_key = key
                job.cached = True
                staged.append((job, False, "cached"))
            elif kind not in UNCACHED_KINDS:
                staged.append((job, True, "new"))
            else:
                staged.append((job, False, "new"))
        results = self.store.add_batch(
            [(job, dedup) for job, dedup, _ in staged])
        receipts: list[SubmitReceipt] = []
        blocked: list[str] = []
        for (job, _dedup, disposition), (added, existing) in zip(
                staged, results):
            receipt = SubmitReceipt()
            if existing is not None:
                receipt.deduped.append(existing.id)
            elif disposition == "cached":
                receipt.cached.append(added.id)
            else:
                receipt.new.append(added.id)
                if added.state is JobState.BLOCKED:
                    blocked.append(added.id)
            receipts.append(receipt)
        for job_id in blocked:
            # Same submit-vs-completion race closure as single submit.
            self.dag.reconcile(job_id)
        return receipts

    # -- campaigns -------------------------------------------------------

    def submit_campaign(self, spec: dict, timeout: float = 0.0,
                        max_retries: int = 2) -> CampaignView:
        """Expand a staged campaign spec into a job DAG and submit it.

        Stages are validated (shape, known kinds, acyclic ``after``
        graph -- :class:`~repro.errors.CycleError` before any job is
        enqueued) and submitted in topological order; every job of a
        stage depends on every job of each parent stage.  Returns the
        campaign's initial progress view.
        """
        name, stages, order = parse_campaign_spec(spec)
        for stage in stages:
            if stage.kind not in RUNNERS:
                raise UnknownJobKindError(
                    f"stage {stage.name!r}: unknown job kind"
                    f" {stage.kind!r}"
                    f" (known: {', '.join(sorted(RUNNERS))})"
                )
        by_name = {s.name: s for s in stages}
        stage_jobs: dict[str, list[str]] = {}
        for stage_name in order:
            stage = by_name[stage_name]
            parents = [jid for pname in stage.after
                       for jid in stage_jobs[pname]]
            ids: list[str] = []
            for payload in stage.payloads:
                r = self.submit(
                    stage.kind, payload,
                    timeout=(timeout if stage.timeout is None
                             else stage.timeout),
                    max_retries=(max_retries if stage.max_retries is None
                                 else stage.max_retries),
                    depends_on=parents,
                )
                ids.extend(r.job_ids)
            stage_jobs[stage_name] = ids
        record = make_record(new_campaign_id(), name, [
            {"name": s.name, "kind": s.kind, "after": list(s.after),
             "job_ids": stage_jobs[s.name]}
            for s in stages
        ])
        self.campaigns.put(record)
        return build_campaign_view(record, self.store)

    def campaign_view(self, campaign_id: str) -> CampaignView:
        """Live per-stage progress for one campaign."""
        return build_campaign_view(self.campaigns.get(campaign_id),
                                   self.store)

    def campaign_dag(self, campaign_id: str) -> DagView:
        """The campaign's dependency graph with live node states."""
        return build_dag_view(self.campaigns.get(campaign_id), self.store)

    def list_campaigns(self) -> list[CampaignView]:
        """Progress views for every recorded campaign, oldest first."""
        return [build_campaign_view(r, self.store)
                for r in self.campaigns.list()]

    # -- events ----------------------------------------------------------

    def campaign_job_ids(self, campaign_id: str) -> list[str]:
        """Every job id a campaign expanded into, stage order."""
        record = self.campaigns.get(campaign_id)
        return [jid for stage in record["stages"]
                for jid in stage["job_ids"]]

    def events_page(self, cursor: str | None = None, limit: int = 500,
                    timeout: float = 0.0, job_ids=None, kinds=None,
                    states=None, campaign: str | None = None,
                    ) -> tuple[list, str, bool]:
        """One (optionally blocking) read of the merged event feed.

        Returns ``(views, next_cursor, timed_out)`` -- the long-poll
        contract of ``GET /v1/events``.  A ``campaign`` filter expands
        to the campaign's job-id set (404 on an unknown campaign);
        combined with an explicit ``job_ids`` the two sets intersect.
        """
        if limit < 1:
            raise MalformedRequestError(f"limit must be >= 1, got {limit}")
        if campaign is not None:
            campaign_ids = set(self.campaign_job_ids(campaign))
            job_ids = (campaign_ids if job_ids is None
                       else campaign_ids & set(job_ids))
        filter = EventFilter.build(job_ids=job_ids, kinds=kinds,
                                   states=states)
        return self.broker.poll(cursor, limit=limit,
                                filter=None if filter.empty else filter,
                                timeout=timeout)

    # -- queries ---------------------------------------------------------

    def status(self, state: str | None = None, kind: str | None = None,
               limit: int | None = None, offset: int = 0,
               cursor: str | None = None) -> QueuePage:
        """One filtered, windowed page of the queue (a :class:`QueuePage`).

        ``state`` filters on lifecycle state (``"DONE"`` etc.), ``kind``
        on job kind; ``limit``/``offset`` window the matches, oldest
        first.  ``cursor`` -- the opaque continuation token a previous
        page returned -- stands in for ``offset`` (and wins over an
        explicit one).  ``counts`` and ``outstanding`` on the page
        always cover the whole queue.  Expired leases are swept first so
        the page never shows a dead worker's jobs as RUNNING.
        """
        if cursor is not None:
            offset = decode_queue_cursor(cursor)
        if state is not None:
            try:
                state = JobState(state).value
            except ValueError:
                raise MalformedRequestError(
                    f"unknown state {state!r} (one of:"
                    f" {', '.join(s.value for s in JobState)})"
                ) from None
        if limit is not None and limit < 0:
            raise MalformedRequestError(f"limit must be >= 0, got {limit}")
        if offset < 0:
            raise MalformedRequestError(f"offset must be >= 0, got {offset}")
        self.store.expire_leases()
        jobs = self.store.list(state=state, kind=kind, limit=limit,
                               offset=offset)
        total = self.store.count_matching(state=state, kind=kind)
        next_cursor = None
        if limit is not None and limit > 0 and offset + limit < total:
            next_cursor = encode_queue_cursor(offset + limit)
        return QueuePage(
            jobs=tuple(JobView.from_job(j) for j in jobs),
            counts=self.store.counts(),
            total=total,
            outstanding=self.store.outstanding(),
            limit=limit, offset=offset, state=state, kind=kind,
            workdir=self.workdir, cursor=next_cursor,
        )

    def job(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def job_view(self, job_id: str) -> JobView:
        """The :class:`JobView` projection of one job."""
        return JobView.from_job(self.store.get(job_id))

    def result(self, job_id: str) -> dict | None:
        """The result dict of a DONE job (None while not DONE)."""
        job = self.store.get(job_id)
        if job.state is not JobState.DONE:
            return None
        record = self.cache.get(job.result_key)
        return record["result"] if record else None

    def result_view(self, job_id: str) -> ResultView:
        """The full :class:`ResultView` envelope for one job.

        Results whose canonical encoding is at most ``inline_max`` bytes
        travel inline (the historical shape, byte-for-byte); larger ones
        come back with ``result=None`` plus a ``stream`` descriptor
        (``{"size", "sha256"}``) that clients resolve through the ranged
        chunk endpoint -- the coordinator never loads the result.
        """
        job = self.store.get(job_id)
        view = JobView.from_job(job)
        if job.state is not JobState.DONE:
            return ResultView(job=view, ready=False, result=None)
        info = self.cache.result_info(job.result_key)
        if info is None:
            return ResultView(job=view, ready=False, result=None)
        if info["size"] > self.inline_max:
            return ResultView(job=view, ready=True, result=None,
                              stream={"size": info["size"],
                                      "sha256": info["sha256"]})
        record = self.cache.get(job.result_key)
        if record is None:
            return ResultView(job=view, ready=False, result=None)
        return ResultView(job=view, ready=True, result=record["result"])

    def results(self, job_ids=None) -> dict[str, ResultView]:
        """Map of job id -> :class:`ResultView` (``ready=False`` rows
        included, so callers see exactly which jobs still owe results).
        """
        if job_ids is None:
            job_ids = [j.id for j in self.store.list()]
        return {jid: self.result_view(jid) for jid in job_ids}

    # -- leases (remote workers) -----------------------------------------

    def claim_jobs(self, worker: str, n: int = 1,
                   ttl: float = 30.0) -> tuple[Lease | None, list[Job]]:
        """Lease up to ``n`` ready jobs to a named remote worker.

        Jobs whose result is already cached are completed on the spot
        (never shipped), exactly like the local pool's claim-time
        fulfilment, so a remote fleet shares the cache's savings.
        """
        if n < 1:
            raise MalformedRequestError(f"n must be >= 1, got {n}")
        if ttl <= 0:
            raise MalformedRequestError(f"ttl must be > 0, got {ttl}")
        if not worker:
            raise MalformedRequestError("worker name must be non-empty")
        lease, jobs = self.store.claim_batch(worker, limit=n, ttl=ttl)
        shipped = []
        for job in jobs:
            if job.kind not in UNCACHED_KINDS and job.key in self.cache:
                self.store.complete_leased(job.id, job.lease_id, job.key)
                continue
            self.store.log_event(job.id, "launched", worker=worker,
                                 lease=job.lease_id)
            shipped.append(job)
        return (lease if shipped else None), shipped

    def heartbeat(self, lease_id: str, ttl: float = 30.0) -> Lease:
        """Extend a live lease; raises ``LeaseExpiredError`` if lapsed."""
        if ttl <= 0:
            raise MalformedRequestError(f"ttl must be > 0, got {ttl}")
        return self.store.heartbeat_lease(lease_id, ttl=ttl)

    def complete_job(self, job_id: str, lease_id: str, result: dict) -> Job:
        """Accept a leased job's result: cache it, then mark DONE.

        The cache write is content-addressed and idempotent, so it is
        safe even when the lease guard then rejects a late upload.
        """
        if not isinstance(result, dict):
            raise MalformedRequestError(
                f"result must be a JSON object,"
                f" got {type(result).__name__}"
            )
        job = self.store.get(job_id)
        # The stored key, not a recomputation: for dependent jobs the
        # key folds in the parent ids (and the payload may have been a
        # placeholder form the worker resolved before running).
        self.cache.put(job.key, job.kind, job.payload, result)
        return self.store.complete_leased(job_id, lease_id, job.key)

    def fail_job(self, job_id: str, lease_id: str, error: str) -> Job:
        """Record a leased attempt's failure (bounded retry applies)."""
        return self.store.fail_leased(
            job_id, lease_id, str(error),
            backoff_base=self.backoff_base,
        )

    # -- streamed results ------------------------------------------------

    def stage_result_chunk(self, job_id: str, lease_id: str, offset: int,
                           sha256: str, data: bytes) -> int:
        """Spool one uploaded result chunk; returns total bytes staged."""
        if not lease_id:
            raise MalformedRequestError("lease id must be non-empty")
        if offset < 0:
            raise MalformedRequestError(f"offset must be >= 0, got {offset}")
        if len(data) > MAX_CHUNK_BYTES:
            raise MalformedRequestError(
                f"chunk of {len(data)} bytes exceeds the"
                f" {MAX_CHUNK_BYTES}-byte cap"
            )
        return self.store.stage_chunk(job_id, lease_id, offset, sha256, data)

    def finish_result(self, job_id: str, lease_id: str, size: int,
                      sha256: str) -> Job:
        """Promote a verified staged upload and mark the job DONE.

        The spool is moved (never read) into the cache as a blob-backed
        record, then ``complete_leased`` applies the same lease guard as
        the inline path.  Like the inline path, the cache write is
        content-addressed and idempotent, so a lease lost at the last
        moment wastes nothing but the late worker's upload.
        """
        path = self.store.finish_staged(job_id, lease_id, size, sha256)
        job = self.store.get(job_id)
        key = job.key  # parent-aware for dependent jobs; see complete_job
        try:
            # The stream must be a JSON *object* to be a result; one
            # byte tells us without loading it.
            with open(path, "rb") as fh:
                first = fh.read(1)
            if first != b"{":
                raise MalformedRequestError("result must be a JSON object")
            self.cache.put_file(key, job.kind, job.payload, path,
                                size=size, sha256=sha256)
        except BaseException:
            self.store.discard_staged(job_id)
            raise
        return self.store.complete_leased(job_id, lease_id, key)

    def read_result_chunk(self, job_id: str, offset: int,
                          length: int) -> bytes:
        """One ranged read of a DONE job's result bytes.

        Serves from the cache's blob (or the re-encoded inline record)
        with a seek + bounded read -- at most ``min(length,
        MAX_CHUNK_BYTES)`` bytes are ever in memory.  Reads past the end
        return ``b""``.
        """
        if offset < 0:
            raise MalformedRequestError(f"offset must be >= 0, got {offset}")
        if length < 1:
            raise MalformedRequestError(f"length must be >= 1, got {length}")
        job = self.store.get(job_id)
        if job.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} has no result yet (state {job.state.value})"
            )
        opened = self.cache.open_result(job.result_key)
        if opened is None:
            raise ServiceError(f"result record for job {job_id} is missing")
        fh, _size = opened
        try:
            fh.seek(offset)
            return fh.read(min(length, MAX_CHUNK_BYTES))
        finally:
            fh.close()

    # -- control ---------------------------------------------------------

    def cancel(self, job_ids) -> list[str]:
        """Cancel the given BLOCKED/PENDING jobs; returns the ids cancelled."""
        return [jid for jid in job_ids if self.store.cancel(jid)]

    def cancel_job(self, job_id: str) -> tuple[bool, JobView]:
        """Idempotently cancel one job; ``(flipped, current_view)``.

        An unknown id raises :class:`UnknownJobError`; a job already
        terminal (including already CANCELLED) is *not* an error --
        ``flipped`` is False and the view reports its current state, so
        racing cancellers (a user and the DAG failure propagation) both
        get a coherent answer.
        """
        self.store.get(job_id)  # 404 on unknown id
        flipped = self.store.cancel(job_id)
        return flipped, self.job_view(job_id)

    def run_workers(self, options: WorkerOptions | None = None,
                    **overrides) -> PoolSummary:
        """Drain the queue with a local worker pool (blocking).

        Accepts a :class:`WorkerOptions` bundle; bare keyword overrides
        (``run_workers(n=4, max_seconds=60)``) are folded into it, so
        the historical call shape keeps working.
        """
        if options is None:
            options = WorkerOptions(backoff_base=self.backoff_base)
        if overrides:
            options = options.replace(**overrides)
        if not isinstance(self.store, ShardedStore):
            pool = WorkerPool.from_options(self.workdir, options,
                                           dag=self.dag)
            return pool.run(drain=options.drain,
                            max_seconds=options.max_seconds)
        # One pool per shard, run concurrently, all writing the shared
        # root cache so a result computed on one shard fulfils cached
        # twins everywhere.  Each pool keeps the full ``n`` slots: shard
        # queues are hash-partitioned, so capping slots per shard would
        # idle workers whenever keys cluster.
        summaries: list[PoolSummary | None] = [None] * self.store.nshards

        def _drain(i: int, workdir: str) -> None:
            # ``dag`` spans the *logical* sharded store: a parent
            # finishing in this shard's pool releases children that
            # hashed to any other shard (the cross-shard notifier).
            pool = WorkerPool.from_options(
                workdir, options.replace(name=f"{options.name}-s{i}"),
                cache_dir=self.cache.root, dag=self.dag,
            )
            summaries[i] = pool.run(drain=options.drain,
                                    max_seconds=options.max_seconds)

        threads = [
            threading.Thread(target=_drain, args=(i, wd), daemon=True)
            for i, wd in enumerate(self.store.workdirs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = PoolSummary()
        for s in summaries:
            if s is None:
                continue
            merged.completed += s.completed
            merged.failed += s.failed
            merged.retried += s.retried
            merged.fulfilled_from_cache += s.fulfilled_from_cache
        merged.counts = self.store.counts()
        return merged
