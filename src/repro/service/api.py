"""The service facade: submit / status / results / cancel / run_workers.

:class:`Service` ties the store, cache, sweep expander, and worker pool
together behind the surface the CLI (and future HTTP front-ends) use.
Submission is where result reuse happens:

* a payload whose content key already has a cached result is recorded as
  a DONE job immediately (``cached=True``) and never enters the queue;
* a payload whose key matches a PENDING/RUNNING job is *deduplicated* --
  the existing job's id is returned instead of queueing a twin;
* everything else becomes a PENDING job for the workers.

``probe`` jobs bypass both paths (see
:data:`repro.service.jobs.UNCACHED_KINDS`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import ServiceError
from .cache import ResultCache, payload_key
from .jobs import UNCACHED_KINDS, Job, JobState, new_job_id
from .store import JobStore
from .sweep import Sweep
from .workers import RUNNERS, PoolSummary, WorkerPool

DEFAULT_WORKDIR = ".repro-service"


@dataclass
class SubmitReceipt:
    """What one submission call did, job ids grouped by disposition."""

    new: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    deduped: list[str] = field(default_factory=list)

    @property
    def job_ids(self) -> list[str]:
        return self.new + self.cached + self.deduped

    def merge(self, other: "SubmitReceipt") -> None:
        self.new += other.new
        self.cached += other.cached
        self.deduped += other.deduped


class Service:
    """One service instance rooted at a workdir (queue + cache on disk)."""

    def __init__(self, workdir=DEFAULT_WORKDIR,
                 backoff_base: float = 0.5) -> None:
        self.workdir = os.fspath(workdir)
        self.store = JobStore(self.workdir)
        self.cache = ResultCache(os.path.join(self.workdir, "cache"))
        self.backoff_base = backoff_base

    # -- submission ------------------------------------------------------

    def submit(self, kind: str, payload: dict, timeout: float = 0.0,
               max_retries: int = 2) -> SubmitReceipt:
        """Submit one job; serve from cache / dedupe when possible."""
        if kind not in RUNNERS:
            raise ServiceError(
                f"unknown job kind {kind!r}"
                f" (known: {', '.join(sorted(RUNNERS))})"
            )
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        key = payload_key(kind, payload)
        receipt = SubmitReceipt()
        job = Job(
            id=new_job_id(), kind=kind, payload=payload, key=key,
            timeout=timeout, max_retries=max_retries,
        )
        if kind not in UNCACHED_KINDS:
            if key in self.cache:
                job.state = JobState.DONE
                job.result_key = key
                job.cached = True
                self.store.add(job)
                receipt.cached.append(job.id)
                return receipt
            # The existence check and the insert are one store
            # transaction, so concurrent submitters (HTTP handler
            # threads, parallel processes) can never queue two active
            # jobs for one content key.
            added, existing = self.store.add_if_no_active(job)
            if existing is not None:
                receipt.deduped.append(existing.id)
            else:
                receipt.new.append(added.id)
            return receipt
        self.store.add(job)
        receipt.new.append(job.id)
        return receipt

    def submit_sweep(self, sweep: Sweep, timeout: float = 0.0,
                     max_retries: int = 2) -> SubmitReceipt:
        """Expand a sweep and submit every unique point."""
        receipt = SubmitReceipt()
        for payload in sweep.expand():
            receipt.merge(
                self.submit(sweep.kind, payload, timeout=timeout,
                            max_retries=max_retries)
            )
        return receipt

    # -- queries ---------------------------------------------------------

    def status(self) -> dict:
        """Counts per state plus a per-job summary list."""
        jobs = self.store.list()
        return {
            "workdir": self.workdir,
            "counts": self.store.counts(),
            "jobs": [
                {
                    "id": j.id, "kind": j.kind, "state": j.state.value,
                    "attempts": j.attempts, "cached": j.cached,
                    "error": j.error.splitlines()[-1] if j.error else "",
                }
                for j in jobs
            ],
        }

    def job(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def result(self, job_id: str) -> dict | None:
        """The result dict of a DONE job (None while not DONE)."""
        job = self.store.get(job_id)
        if job.state is not JobState.DONE:
            return None
        record = self.cache.get(job.result_key)
        return record["result"] if record else None

    def results(self, job_ids=None) -> dict[str, dict | None]:
        """Map of job id -> result (None for jobs without one yet)."""
        if job_ids is None:
            job_ids = [j.id for j in self.store.list()]
        return {jid: self.result(jid) for jid in job_ids}

    # -- control ---------------------------------------------------------

    def cancel(self, job_ids) -> list[str]:
        """Cancel the given PENDING jobs; returns the ids cancelled."""
        return [jid for jid in job_ids if self.store.cancel(jid)]

    def run_workers(self, n: int = 2, drain: bool = True,
                    max_seconds: float | None = None,
                    poll_interval: float = 0.02) -> PoolSummary:
        """Drain the queue with an ``n``-slot worker pool (blocking)."""
        pool = WorkerPool(
            self.workdir, nworkers=n, poll_interval=poll_interval,
            backoff_base=self.backoff_base,
        )
        return pool.run(drain=drain, max_seconds=max_seconds)
