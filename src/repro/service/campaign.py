"""Server-side campaigns: a staged spec expanded into a job DAG.

A campaign describes the paper's staged studies in one request: a grid
stage tunes NB over a sweep, a reduce stage picks the winner, and a
study stage runs the Fig. 8 scaling sweep *at* the winning point.  The
spec is JSON::

    {
      "name": "tune-then-scale",
      "stages": [
        {"name": "grid",
         "sweep": {"kind": "sim", "axes": {"nb": [128, 192, 256]},
                   "base": {"n": 4096, "p": 2, "q": 2}}},
        {"name": "pick", "after": ["grid"],
         "kind": "reduce",
         "payload": {"metric": "score_tflops", "mode": "max"}},
        {"name": "study", "after": ["pick"],
         "sweep": {"kind": "scale", "axes": {"nnodes": [1, 2, 4]},
                   "base": {"n_single": 4096, "nb": {"$winner": "nb"}}}}
      ]
    }

Each stage is either a ``sweep`` (expanded through the existing
:class:`~repro.service.sweep.Sweep` grid expander) or a single
``kind`` + ``payload``; ``after`` names the stages it depends on, and
every job of a stage depends on *every* job of each parent stage.  The
stage graph is toposorted before anything is enqueued -- a cyclic
``after`` graph is rejected whole with :class:`~repro.errors.CycleError`
(HTTP 422 ``cycle_detected``) and no job exists afterwards.  Payload
values of the form ``{"$winner": "<field>"}`` are resolved at launch
from the upstream reduce stage's winner (see
:mod:`repro.service.dag`).

Campaign records are one JSON file per id under the root workdir's
``campaigns/`` directory, written atomically like cache records; the
progress views are computed live from job states, so the record itself
never needs updating after submission.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import uuid

from ..errors import MalformedRequestError, UnknownCampaignError
from .dag import toposort
from .jobs import JobState
from .sweep import Sweep
from .views import CampaignView, DagView, StageView


def new_campaign_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclasses.dataclass(frozen=True)
class CampaignStage:
    """One validated stage: a name, its parents, and concrete payloads."""

    name: str
    kind: str
    payloads: tuple
    after: tuple
    timeout: float | None = None
    max_retries: int | None = None


def _stage_payloads(entry: dict, name: str) -> tuple[str, tuple]:
    if "sweep" in entry:
        sweep = entry["sweep"]
        if not isinstance(sweep, dict) or "kind" not in sweep:
            raise MalformedRequestError(
                f"stage {name!r}: 'sweep' must be an object with 'kind'"
            )
        expanded = Sweep(
            kind=sweep["kind"],
            axes=sweep.get("axes", {}),
            base=sweep.get("base", {}),
        ).expand()
        return sweep["kind"], tuple(expanded)
    if "kind" in entry:
        payload = entry.get("payload", {})
        if not isinstance(payload, dict):
            raise MalformedRequestError(
                f"stage {name!r}: 'payload' must be an object"
            )
        return entry["kind"], (payload,)
    raise MalformedRequestError(
        f"stage {name!r} needs either 'sweep' or 'kind'"
    )


def parse_campaign_spec(spec) -> tuple[str, list[CampaignStage], list[str]]:
    """Validate a spec; returns ``(name, stages, topo_order)``.

    ``stages`` keeps the spec's order (for display); ``topo_order`` is
    the submission order.  Raises :class:`MalformedRequestError` on
    shape problems and :class:`CycleError` on a cyclic stage graph --
    both before any job is enqueued.
    """
    if not isinstance(spec, dict):
        raise MalformedRequestError("campaign spec must be a JSON object")
    name = spec.get("name", "campaign")
    if not isinstance(name, str) or not name:
        raise MalformedRequestError("campaign 'name' must be a string")
    raw = spec.get("stages")
    if not isinstance(raw, list) or not raw:
        raise MalformedRequestError(
            "campaign 'stages' must be a non-empty list"
        )
    stages: list[CampaignStage] = []
    names: set[str] = set()
    for entry in raw:
        if not isinstance(entry, dict):
            raise MalformedRequestError("each stage must be an object")
        stage_name = entry.get("name")
        if not isinstance(stage_name, str) or not stage_name:
            raise MalformedRequestError("each stage needs a string 'name'")
        if stage_name in names:
            raise MalformedRequestError(
                f"duplicate stage name: {stage_name!r}"
            )
        names.add(stage_name)
        after = entry.get("after", [])
        if (not isinstance(after, list)
                or not all(isinstance(a, str) for a in after)):
            raise MalformedRequestError(
                f"stage {stage_name!r}: 'after' must be a list of stage"
                " names"
            )
        kind, payloads = _stage_payloads(entry, stage_name)
        timeout = entry.get("timeout")
        max_retries = entry.get("max_retries")
        stages.append(CampaignStage(
            name=stage_name, kind=kind, payloads=payloads,
            after=tuple(dict.fromkeys(after)), timeout=timeout,
            max_retries=max_retries,
        ))
    for stage in stages:
        for parent in stage.after:
            if parent not in names:
                raise MalformedRequestError(
                    f"stage {stage.name!r} is after unknown stage"
                    f" {parent!r}"
                )
    order = toposort([s.name for s in stages],
                     {s.name: list(s.after) for s in stages})
    return name, stages, order


class CampaignStore:
    """One JSON record per campaign under ``<root>/campaigns/``."""

    def __init__(self, root) -> None:
        self.root = os.fspath(root)

    def _path(self, campaign_id: str) -> str:
        return os.path.join(self.root, f"{campaign_id}.json")

    def put(self, record: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(record["id"])
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, path)

    def get(self, campaign_id: str) -> dict:
        try:
            with open(self._path(campaign_id)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            raise UnknownCampaignError(
                f"no such campaign: {campaign_id}"
            ) from None

    def list(self) -> list[dict]:
        """Every campaign record, oldest first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        records = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, name)) as fh:
                    records.append(json.load(fh))
            except (OSError, ValueError):
                continue
        records.sort(key=lambda r: (r.get("created", 0.0), r.get("id", "")))
        return records


def make_record(campaign_id: str, name: str,
                stage_jobs: list[dict]) -> dict:
    """The persisted campaign shape (stage order = spec order)."""
    return {
        "id": campaign_id,
        "name": name,
        "created": time.time(),
        "stages": stage_jobs,
    }


def _collapse(counts: dict, total: int) -> str:
    if counts[JobState.FAILED.value]:
        return "failed"
    if counts[JobState.CANCELLED.value]:
        return "cancelled"
    if total and counts[JobState.DONE.value] == total:
        return "done"
    if counts[JobState.RUNNING.value] or counts[JobState.DONE.value]:
        return "running"
    if counts[JobState.PENDING.value]:
        return "pending"
    return "blocked"


def build_campaign_view(record: dict, store) -> CampaignView:
    """Live progress for one campaign record, computed from job states."""
    stages = []
    total_counts = {s.value: 0 for s in JobState}
    njobs = 0
    for entry in record["stages"]:
        counts = {s.value: 0 for s in JobState}
        for job_id in entry["job_ids"]:
            try:
                state = store.get(job_id).state.value
            except Exception:  # noqa: BLE001 -- vanished/unreachable job
                continue
            counts[state] += 1
            total_counts[state] += 1
        njobs += len(entry["job_ids"])
        stages.append(StageView(
            name=entry["name"], kind=entry["kind"],
            after=tuple(entry["after"]),
            job_ids=tuple(entry["job_ids"]),
            counts=counts,
            state=_collapse(counts, len(entry["job_ids"])),
        ))
    return CampaignView(
        id=record["id"], name=record["name"],
        created=record["created"],
        state=_collapse(total_counts, njobs),
        stages=tuple(stages), njobs=njobs,
    )


def build_dag_view(record: dict, store) -> DagView:
    """The campaign's dependency graph with live node states."""
    nodes = []
    for entry in record["stages"]:
        for job_id in entry["job_ids"]:
            try:
                job = store.get(job_id)
                state, depends_on = job.state.value, list(job.depends_on)
            except Exception:  # noqa: BLE001 -- vanished/unreachable job
                state, depends_on = "UNKNOWN", []
            nodes.append({
                "id": job_id,
                "stage": entry["name"],
                "kind": entry["kind"],
                "state": state,
                "depends_on": depends_on,
            })
    return DagView(campaign_id=record["id"], nodes=tuple(nodes))
