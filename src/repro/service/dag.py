"""Dependency-aware job release: the DAG resolver.

Jobs submitted with ``depends_on`` start BLOCKED and carry their parent
ids both on the row (``depends_on``) and as child-side edges in the
store's ``deps`` table.  This module owns the two transitions out of
BLOCKED:

* **Release** -- when a parent commits DONE, the store's terminal hook
  calls :meth:`DagResolver.on_terminal`, which releases every BLOCKED
  child whose parents are now *all* DONE.  Release is event-driven (no
  polling) and exactly-once: the store's guarded
  ``UPDATE ... WHERE state = 'BLOCKED'`` lets exactly one of any racing
  resolvers win, and only the winner logs the ``released`` audit event.
  Because a requeued parent (retry backoff, lease expiry within budget)
  is PENDING -- not terminal -- no hook fires for it and its children
  stay BLOCKED until the parent genuinely finishes.

* **Kill-on-parent-failure** -- when a parent commits FAILED or
  CANCELLED, the resolver cancels the parent's entire descendant
  closure with a single ``parent_failed`` audit event per descendant.
  Every descendant of a non-DONE parent is necessarily still BLOCKED (a
  job only leaves BLOCKED once all parents are DONE, and DONE is
  permanent), so the guarded BLOCKED -> CANCELLED update covers exactly
  the descendant set.

The resolver is written against the *logical* store -- a single
:class:`~repro.service.store.JobStore` or a
:class:`~repro.service.shard.ShardedStore` -- so a parent completing on
one shard releases children that hashed to any other shard: this is the
cross-shard release notifier.  :meth:`DagResolver.sweep` replays the
same decisions over every BLOCKED job for crash recovery (a coordinator
SIGKILLed between a parent's commit and its children's release).
"""

from __future__ import annotations

from ..errors import CycleError, ServiceError, UnknownJobError
from .jobs import Job, JobState

#: Payload placeholder marker: a dict value of exactly
#: ``{"$winner": "<field>"}`` is replaced at launch with that field of
#: the upstream reduce job's ``winner_payload``.
WINNER_MARKER = "$winner"


def toposort(nodes: list[str], parents: dict[str, list[str]]) -> list[str]:
    """Order ``nodes`` so every entry follows all of its parents.

    ``parents`` maps a node to the nodes it depends on; ids absent from
    ``nodes`` are ignored (already-existing jobs cannot complete a
    cycle).  Raises :class:`CycleError` naming the cyclic members.  The
    order is deterministic: ready nodes keep their input order.
    """
    known = set(nodes)
    remaining = {n: {p for p in parents.get(n, ()) if p in known}
                 for n in nodes}
    order: list[str] = []
    while remaining:
        ready = [n for n in nodes if n in remaining and not remaining[n]]
        if not ready:
            cycle = ", ".join(sorted(remaining))
            raise CycleError(f"dependency cycle among: {cycle}")
        for n in ready:
            del remaining[n]
            order.append(n)
        for deps in remaining.values():
            deps.difference_update(ready)
    return order


def has_placeholders(payload) -> bool:
    """Whether any value in the payload is a ``$winner`` placeholder."""
    if isinstance(payload, dict):
        if set(payload) == {WINNER_MARKER}:
            return True
        return any(has_placeholders(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return any(has_placeholders(v) for v in payload)
    return False


def needs_parent_results(job: Job) -> bool:
    """Whether the pool must inject parent results before launching."""
    return bool(job.depends_on) and (
        job.kind == "reduce" or has_placeholders(job.payload)
    )


def _winner_payload(parent_results: dict) -> dict:
    for pid in sorted(parent_results):
        result = parent_results[pid].get("result") or {}
        if isinstance(result, dict) and "winner_payload" in result:
            return result["winner_payload"]
    raise ServiceError(
        "payload has $winner placeholders but no parent produced a"
        " winner_payload (is a reduce stage upstream?)"
    )


def resolve_payload(payload, parent_results: dict):
    """Substitute ``$winner`` placeholders from the reduce parent.

    ``parent_results`` maps parent job id to
    ``{"payload": ..., "result": ...}``; the winner payload comes from
    the (unique) parent whose result carries ``winner_payload``.
    Raises :class:`ServiceError` when a referenced field is missing.
    """
    if isinstance(payload, dict):
        if set(payload) == {WINNER_MARKER}:
            field = payload[WINNER_MARKER]
            winner = _winner_payload(parent_results)
            if field not in winner:
                raise ServiceError(
                    f"winner payload has no field {field!r}"
                )
            return winner[field]
        return {k: resolve_payload(v, parent_results)
                for k, v in payload.items()}
    if isinstance(payload, list):
        return [resolve_payload(v, parent_results) for v in payload]
    return payload


class DagResolver:
    """Releases and cancels BLOCKED jobs off terminal transitions.

    Stateless between calls: every decision re-reads job states from
    the store, so any number of resolver instances (one per worker
    pool, one in the coordinator) may observe the same transition --
    the store's guarded updates keep the outcome exactly-once.
    """

    def __init__(self, store) -> None:
        self.store = store

    # -- event-driven path (terminal hook) -------------------------------

    def on_terminal(self, job: Job) -> None:
        """Terminal-transition hook: react to one parent finishing."""
        if job.state is JobState.DONE:
            self.release_children(job.id)
        elif job.state in (JobState.FAILED, JobState.CANCELLED):
            self.cancel_descendants(job.id)

    def release_children(self, parent_id: str) -> list[str]:
        """Release every BLOCKED child whose parents are all DONE."""
        released = []
        for child in self.store.children_of(parent_id):
            if self._parents_all_done(child) and self.store.release(child.id):
                released.append(child.id)
        return released

    def cancel_descendants(self, failed_id: str) -> list[str]:
        """Cancel the BLOCKED descendant closure of a failed parent.

        Traverses child edges breadth-first; every reachable BLOCKED
        job gets one guarded BLOCKED -> CANCELLED flip and one
        ``parent_failed`` event naming ``failed_id``.  Nodes another
        resolver already cancelled are still traversed (their subtrees
        may not be), which is safe: the guarded update is idempotent.
        """
        cancelled = []
        frontier = [failed_id]
        seen = {failed_id}
        while frontier:
            node = frontier.pop(0)
            for child in self.store.children_of(node):
                if child.id in seen:
                    continue
                seen.add(child.id)
                if self.store.cancel_from_parent(child.id, failed_id):
                    cancelled.append(child.id)
                frontier.append(child.id)
        return cancelled

    def _parents_all_done(self, child: Job) -> bool:
        for pid in child.depends_on:
            try:
                if self.store.get(pid).state is not JobState.DONE:
                    return False
            except UnknownJobError:
                return False
        return True

    # -- reconciliation (submit races, crash recovery) -------------------

    def reconcile(self, child_id: str) -> None:
        """Settle one freshly inserted BLOCKED job against its parents.

        Closes the submit-vs-completion race: a parent that finished
        between the submit-time state check and the insert fired its
        hook before the child's edges existed, so nobody would ever
        release (or cancel) the child.  Re-checking after the insert
        makes one of the two sides see the final picture.
        """
        try:
            child = self.store.get(child_id)
        except UnknownJobError:
            return
        if child.state is not JobState.BLOCKED:
            return
        for pid in child.depends_on:
            try:
                parent = self.store.get(pid)
            except UnknownJobError:
                parent = None
            if parent is None or parent.state in (JobState.FAILED,
                                                  JobState.CANCELLED):
                self.store.cancel_from_parent(child.id, pid)
                self.cancel_descendants(child.id)
                return
            if parent.state is not JobState.DONE:
                return
        self.store.release(child.id)

    def sweep(self) -> tuple[list[str], list[str]]:
        """Reconcile every BLOCKED job; returns (released, cancelled).

        Crash recovery: replays the release/cancel decisions a
        SIGKILLed coordinator may have dropped between a parent's
        terminal commit and the children's transitions.  Iterates to a
        fixpoint because a cancellation can cascade within one sweep.
        Idempotent and safe against live traffic -- the guarded updates
        make each transition happen exactly once, here or there.
        """
        released: list[str] = []
        cancelled: list[str] = []
        progressed = True
        while progressed:
            progressed = False
            for child in self.store.list(state=JobState.BLOCKED):
                verdict = self._verdict(child)
                if verdict == "release" and self.store.release(child.id):
                    released.append(child.id)
                    progressed = True
                elif verdict and verdict != "release":
                    if self.store.cancel_from_parent(child.id, verdict):
                        cancelled.append(child.id)
                        progressed = True
        return released, cancelled

    def _verdict(self, child: Job) -> str | None:
        """"release", the failed parent's id, or None (still waiting)."""
        all_done = True
        for pid in child.depends_on:
            try:
                parent = self.store.get(pid)
            except UnknownJobError:
                return pid  # parent vanished: the child can never run
            if parent.state in (JobState.FAILED, JobState.CANCELLED):
                return pid
            if parent.state is not JobState.DONE:
                all_done = False
        return "release" if all_done else None
