"""Chunk framing codec for streaming large job results.

A result that is too big for one inline ``POST /v1/jobs/{id}/complete``
body travels as a sequence of content-hashed chunks instead: the worker
encodes the result dict with :func:`repro.config.canonical_json`, splits
the bytes into fixed-size chunks (:func:`iter_chunks`), and uploads each
with its offset and sha256.  The receiving side feeds them through a
:class:`ChunkAssembler`, which enforces three invariants:

* chunks arrive in order (``offset`` must equal bytes received so far),
* every chunk's bytes hash to its declared sha256, and
* the finished stream's total size and whole-stream sha256 match what
  the uploader declares at finish time.

Violations raise :class:`~repro.errors.ChunkOffsetError` /
:class:`~repro.errors.ChunkIntegrityError`, which carry the 422
``bad_offset`` / ``bad_chunk`` codes across the v1 wire.  The assembler
writes into any binary file-like sink, so the coordinator can spool a
multi-gigabyte upload to disk while holding at most one chunk in memory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
from typing import BinaryIO, Iterator

from ..config import canonical_json
from ..errors import ChunkIntegrityError, ChunkOffsetError, MalformedRequestError

#: Chunk size used by clients when splitting a result for upload and
#: when issuing ranged downloads.  Big enough to amortize per-request
#: overhead, small enough that the coordinator's transient buffers stay
#: far below any realistic result size.
DEFAULT_CHUNK_SIZE = 4 * 1024 * 1024

#: Results whose canonical encoding is at most this many bytes travel
#: inline, byte-for-byte as before; anything larger streams as chunks.
DEFAULT_INLINE_MAX = 1024 * 1024

#: Hard server-side cap on a single uploaded chunk / ranged read, so a
#: misbehaving client cannot make the coordinator buffer an arbitrarily
#: large body in one request.
MAX_CHUNK_BYTES = 32 * 1024 * 1024


def encode_result(result: dict) -> bytes:
    """Canonical JSON bytes of a result dict (the streamed wire form)."""
    if not isinstance(result, dict):
        raise MalformedRequestError("result must be a JSON object")
    return canonical_json(result).encode("utf-8")


def decode_result(data: bytes) -> dict:
    """Inverse of :func:`encode_result`; rejects non-object payloads."""
    try:
        result = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ChunkIntegrityError(f"result stream is not valid JSON: {exc}")
    if not isinstance(result, dict):
        raise MalformedRequestError("result must be a JSON object")
    return result


def chunk_sha256(data: bytes) -> str:
    """Hex sha256 of one chunk's bytes."""
    return hashlib.sha256(data).hexdigest()


@dataclasses.dataclass(frozen=True)
class Chunk:
    """One frame of a chunked result: offset, bytes, content hash."""

    offset: int
    data: bytes
    sha256: str


def iter_chunks(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Chunk]:
    """Split ``data`` into ordered, content-hashed chunks.

    Empty input yields no chunks; the stream is then just a finish
    declaring ``size=0`` and the sha256 of the empty string.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for offset in range(0, len(data), chunk_size):
        piece = data[offset:offset + chunk_size]
        yield Chunk(offset=offset, data=piece, sha256=chunk_sha256(piece))


def stream_sha256(data: bytes) -> str:
    """Hex sha256 of the whole stream (what finish must declare)."""
    return hashlib.sha256(data).hexdigest()


class ChunkAssembler:
    """Reassemble an ordered chunk stream into a binary sink.

    ``feed`` rejects out-of-order offsets and corrupt chunks *before*
    writing, so the sink only ever holds a verified prefix; ``finish``
    checks the declared total size and whole-stream hash.  The default
    sink is an in-memory buffer (see :meth:`getvalue`); pass an open
    binary file to spool to disk instead.
    """

    def __init__(self, sink: BinaryIO | None = None) -> None:
        self.sink: BinaryIO = sink if sink is not None else io.BytesIO()
        self.bytes_received = 0
        self._hasher = hashlib.sha256()

    def feed(self, offset: int, data: bytes, sha256: str) -> int:
        """Verify and append one chunk; returns total bytes received."""
        if offset != self.bytes_received:
            raise ChunkOffsetError(
                f"chunk offset {offset} out of order "
                f"(expected {self.bytes_received})"
            )
        if chunk_sha256(data) != sha256:
            raise ChunkIntegrityError(
                f"chunk at offset {offset} does not match its sha256"
            )
        self.sink.write(data)
        self._hasher.update(data)
        self.bytes_received += len(data)
        return self.bytes_received

    def finish(self, size: int, sha256: str) -> int:
        """Verify the completed stream; returns its byte size."""
        if size != self.bytes_received:
            raise ChunkOffsetError(
                f"stream declared {size} bytes but {self.bytes_received} "
                f"were received"
            )
        if self._hasher.hexdigest() != sha256:
            raise ChunkIntegrityError(
                "assembled stream does not match its declared sha256"
            )
        return self.bytes_received

    def getvalue(self) -> bytes:
        """The assembled bytes (only for the default in-memory sink)."""
        if not isinstance(self.sink, io.BytesIO):
            raise TypeError("getvalue() requires the in-memory sink")
        return self.sink.getvalue()
