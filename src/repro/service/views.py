"""Typed read models for the v1 API: one shape per resource.

Every surface that reports a job -- the :class:`~repro.service.api.Service`
facade, the HTTP server, both HTTP clients, and the CLI tables -- speaks
:class:`JobView`; collections travel as a :class:`QueuePage` (jobs plus
counts plus the pagination window) and results as a :class:`ResultView`.
Serialization is symmetric (``to_dict`` / ``from_dict``), so a view that
crosses the wire reconstructs into the same dataclass on the client,
and the JSON envelope is always ``{"job": {...}}`` for one job and
``{"jobs": [...], ...}`` for a page -- never a bare dict.
"""

from __future__ import annotations

import dataclasses

from .jobs import Job, JobState

_TERMINAL_STATES = frozenset(s.value for s in JobState if s.terminal)


def one_line(error: str) -> str:
    """The last line of a (possibly multi-line) error, for display."""
    return error.splitlines()[-1] if error else ""


@dataclasses.dataclass(frozen=True)
class JobView:
    """The read-only projection of one job that crosses the API."""

    id: str
    kind: str
    state: str
    attempts: int
    max_retries: int
    timeout: float
    cached: bool
    key: str
    payload: dict
    error: str
    result_key: str
    worker: str
    created: float
    updated: float
    depends_on: tuple = ()

    @classmethod
    def from_job(cls, job: Job) -> "JobView":
        return cls(
            id=job.id, kind=job.kind, state=job.state.value,
            attempts=job.attempts, max_retries=job.max_retries,
            timeout=job.timeout, cached=job.cached, key=job.key,
            payload=job.payload, error=one_line(job.error),
            result_key=job.result_key, worker=job.worker,
            created=job.created, updated=job.updated,
            depends_on=tuple(job.depends_on),
        )

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["depends_on"] = list(self.depends_on)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobView":
        # ``depends_on`` is tolerated missing so views from a pre-DAG
        # server still parse.
        return cls(**{
            f.name: (tuple(data.get("depends_on", ()))
                     if f.name == "depends_on" else data[f.name])
            for f in dataclasses.fields(cls)
        })

    def to_job(self) -> Job:
        """A :class:`Job` a *remote* worker can execute.

        Reconstructs the fields runners and supervisors consume
        (payload, attempt count, retry budget, timeout); store-side
        bookkeeping the wire view deliberately drops (``not_before``,
        lease columns) stays at its defaults.
        """
        return Job(
            id=self.id, kind=self.kind, payload=self.payload,
            key=self.key, state=self.state, attempts=self.attempts,
            max_retries=self.max_retries, timeout=self.timeout,
            error=self.error, result_key=self.result_key,
            cached=self.cached, worker=self.worker,
            created=self.created, updated=self.updated,
            depends_on=list(self.depends_on),
        )


@dataclasses.dataclass(frozen=True)
class QueuePage:
    """One filtered, windowed slice of the queue plus its global counts.

    ``total`` counts every job matching the ``state``/``kind`` filter
    *before* the ``limit``/``offset`` window was applied, so clients can
    page through without a separate count call; ``counts`` and
    ``outstanding`` always describe the whole queue, unfiltered.
    """

    jobs: tuple
    counts: dict
    total: int
    outstanding: int
    limit: int | None
    offset: int
    state: str | None = None
    kind: str | None = None
    workdir: str = ""
    #: Opaque continuation token for the next page, or ``None`` when
    #: this page reaches the end of the match set.  Shares the event
    #: feed's cursor idiom; tolerated missing so pages from an older
    #: server still parse.
    cursor: str | None = None

    def to_dict(self) -> dict:
        return {
            "jobs": [v.to_dict() for v in self.jobs],
            "counts": dict(self.counts),
            "total": self.total,
            "outstanding": self.outstanding,
            "limit": self.limit,
            "offset": self.offset,
            "state": self.state,
            "kind": self.kind,
            "workdir": self.workdir,
            "cursor": self.cursor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueuePage":
        return cls(
            jobs=tuple(JobView.from_dict(j) for j in data["jobs"]),
            counts=data["counts"], total=data["total"],
            outstanding=data["outstanding"], limit=data["limit"],
            offset=data["offset"], state=data.get("state"),
            kind=data.get("kind"), workdir=data.get("workdir", ""),
            cursor=data.get("cursor"),
        )


@dataclasses.dataclass(frozen=True)
class EventView:
    """One audit-log event as it crosses the v1 event feed.

    ``cursor`` is the opaque continuation token positioned *just past*
    this event -- resuming a feed from it (long-poll ``?cursor=`` or SSE
    ``Last-Event-ID``) never replays the event, which is what makes the
    feed exactly-once.  ``kind`` is the audit event name (``submitted``,
    ``claimed``, ``done``, ...); ``state`` is the job state the event
    implies (explicit in the record, or derived from the event name),
    empty for events that carry none.  ``data`` holds every extra field
    of the raw record (``worker``, ``lease``, ``error``, the job's own
    ``kind`` for submissions, ...).
    """

    cursor: str
    t: float
    job_id: str
    kind: str
    state: str
    shard: int
    data: dict

    @property
    def terminal(self) -> bool:
        """True when this event put the job in a terminal state."""
        return self.state in _TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "cursor": self.cursor,
            "t": self.t,
            "job": self.job_id,
            "event": self.kind,
            "state": self.state,
            "shard": self.shard,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventView":
        return cls(
            cursor=data["cursor"], t=data["t"], job_id=data["job"],
            kind=data["event"], state=data.get("state", ""),
            shard=data.get("shard", 0), data=data.get("data", {}),
        )


@dataclasses.dataclass(frozen=True)
class ResultView:
    """One job's result envelope: the job view plus readiness + payload.

    A result larger than the service's inline threshold does not travel
    in the envelope: ``ready`` is True, ``result`` is None, and
    ``stream`` carries ``{"size", "sha256"}`` so the client can fetch
    the bytes through the ranged chunk endpoint.  ``stream`` is omitted
    from the wire dict entirely for inline results, keeping the
    historical three-key envelope byte-for-byte.
    """

    job: JobView
    ready: bool
    result: dict | None
    stream: dict | None = None

    @property
    def state(self) -> str:
        return self.job.state

    def to_dict(self) -> dict:
        out = {
            "job": self.job.to_dict(),
            "ready": self.ready,
            "result": self.result,
        }
        if self.stream is not None:
            out["stream"] = dict(self.stream)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ResultView":
        return cls(
            job=JobView.from_dict(data["job"]),
            ready=data["ready"], result=data["result"],
            stream=data.get("stream"),
        )


@dataclasses.dataclass(frozen=True)
class StageView:
    """One campaign stage's live progress.

    ``counts`` maps every job state to how many of the stage's jobs are
    in it; ``state`` collapses that to one word with failure dominating:
    ``failed`` > ``cancelled`` > ``done`` (all) > ``running`` >
    ``pending`` > ``blocked``.
    """

    name: str
    kind: str
    after: tuple
    job_ids: tuple
    counts: dict
    state: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "after": list(self.after),
            "job_ids": list(self.job_ids),
            "counts": dict(self.counts),
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageView":
        return cls(
            name=data["name"], kind=data["kind"],
            after=tuple(data["after"]), job_ids=tuple(data["job_ids"]),
            counts=data["counts"], state=data["state"],
        )


@dataclasses.dataclass(frozen=True)
class CampaignView:
    """One campaign: its identity plus per-stage progress."""

    id: str
    name: str
    created: float
    state: str
    stages: tuple
    njobs: int

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "created": self.created,
            "state": self.state,
            "stages": [s.to_dict() for s in self.stages],
            "njobs": self.njobs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignView":
        return cls(
            id=data["id"], name=data["name"], created=data["created"],
            state=data["state"],
            stages=tuple(StageView.from_dict(s) for s in data["stages"]),
            njobs=data["njobs"],
        )


@dataclasses.dataclass(frozen=True)
class DagView:
    """A campaign's dependency graph: one node per job, edges inline.

    ``nodes`` is a tuple of dicts ``{"id", "stage", "kind", "state",
    "depends_on"}`` in submission (topological) order -- the shape is a
    plain adjacency list so clients can render or analyze it without
    further calls.
    """

    campaign_id: str
    nodes: tuple

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "nodes": [dict(n) for n in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DagView":
        return cls(
            campaign_id=data["campaign_id"],
            nodes=tuple(data["nodes"]),
        )
