"""Parameter-grid expansion for batch submission.

A :class:`Sweep` is a job kind plus axes: every parameter maps to one
value or a list of values, and :meth:`Sweep.expand` takes the cartesian
product in deterministic order.  ``dedupe`` collapses payloads with the
same content key -- grid corners that describe the same benchmark point
(and points another sweep already queued) are submitted once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ServiceError
from .cache import payload_key


def expand_grid(axes: dict) -> list[dict]:
    """Cartesian product of the axes, scalars treated as length-1 lists.

    The output order is deterministic: axes vary slowest-first in the
    dict's insertion order, so ``{"n": [1, 2], "nb": [8, 16]}`` yields
    ``n=1,nb=8``, ``n=1,nb=16``, ``n=2,nb=8``, ``n=2,nb=16``.
    """
    names = list(axes)
    value_lists = []
    for name in names:
        v = axes[name]
        if isinstance(v, (list, tuple)):
            if not v:
                raise ServiceError(f"sweep axis {name!r} is empty")
            value_lists.append(list(v))
        else:
            value_lists.append([v])
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*value_lists)
    ]


def dedupe(kind: str, payloads: list[dict]) -> tuple[list[dict], int]:
    """Drop payloads whose content key repeats; keep first occurrences.

    Returns ``(unique_payloads, dropped_count)``.
    """
    seen: set[str] = set()
    unique: list[dict] = []
    for payload in payloads:
        key = payload_key(kind, payload)
        if key in seen:
            continue
        seen.add(key)
        unique.append(payload)
    return unique, len(payloads) - len(unique)


@dataclass(frozen=True)
class Sweep:
    """One batch of jobs over a parameter grid.

    Attributes:
        kind: Job kind every expanded payload is submitted as.
        axes: Parameter name -> value or list of values to sweep.
        base: Fixed parameters merged into every payload (an axis with
            the same name overrides the base value).
    """

    kind: str
    axes: dict = field(default_factory=dict)
    base: dict = field(default_factory=dict)

    def expand(self) -> list[dict]:
        """Deduplicated payload dicts for the full grid."""
        payloads = [
            {**self.base, **point} for point in expand_grid(self.axes)
        ]
        unique, _ = dedupe(self.kind, payloads)
        return unique

    @property
    def npoints(self) -> int:
        """Grid size before deduplication."""
        total = 1
        for v in self.axes.values():
            total *= len(v) if isinstance(v, (list, tuple)) else 1
        return total
