"""Persistent job store: an SQLite queue plus a JSONL event log.

The store is the service's single source of truth.  SQLite gives the
multiprocess worker pool atomic job claims (``BEGIN IMMEDIATE`` write
transactions serialize claimers across processes), and the sidecar
``events.jsonl`` append-only log records every transition so tests and
operators can audit exactly what ran -- e.g. "how many jobs entered
RUNNING during this resubmission?" is a one-line scan.

Connections are opened lazily *per process and per thread*: a
:class:`JobStore` handle may be created in a supervisor and used after
``fork`` in a worker child, or shared by the threads of an HTTP
front-end; each (process, thread) pair gets its own connection, since
SQLite connections are neither fork- nor thread-shareable.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from ..errors import (
    BadCursorError,
    ChunkOffsetError,
    EventsTruncatedError,
    LeaseConflictError,
    LeaseExpiredError,
    UnknownJobError,
)
from .jobs import COLUMNS, Job, JobState, Lease, new_lease_id
from .streams import ChunkAssembler

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    key TEXT NOT NULL,
    state TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    max_retries INTEGER NOT NULL,
    timeout REAL NOT NULL,
    not_before REAL NOT NULL,
    error TEXT NOT NULL,
    result_key TEXT NOT NULL,
    cached INTEGER NOT NULL,
    worker TEXT NOT NULL,
    lease_id TEXT NOT NULL DEFAULT '',
    lease_expires REAL NOT NULL DEFAULT 0,
    created REAL NOT NULL,
    updated REAL NOT NULL,
    depends_on TEXT NOT NULL DEFAULT '[]'
);
CREATE TABLE IF NOT EXISTS leases (
    id TEXT PRIMARY KEY,
    worker TEXT NOT NULL,
    created REAL NOT NULL,
    expires REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS deps (
    child TEXT NOT NULL,
    parent TEXT NOT NULL,
    PRIMARY KEY (child, parent)
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, not_before, created);
CREATE INDEX IF NOT EXISTS jobs_key ON jobs (key);
CREATE INDEX IF NOT EXISTS deps_parent ON deps (parent);
"""

#: Columns an older database is missing; added in place on open so a
#: workdir created by an older service keeps working under this one.
_MIGRATIONS = (
    ("lease_id", "ALTER TABLE jobs ADD COLUMN lease_id"
                 " TEXT NOT NULL DEFAULT ''"),
    ("lease_expires", "ALTER TABLE jobs ADD COLUMN lease_expires"
                      " REAL NOT NULL DEFAULT 0"),
    ("depends_on", "ALTER TABLE jobs ADD COLUMN depends_on"
                   " TEXT NOT NULL DEFAULT '[]'"),
)

_COLS = ", ".join(COLUMNS)
_PLACEHOLDERS = ", ".join("?" for _ in COLUMNS)


class _StagedUpload:
    """One in-flight chunked result upload spooled under ``staging/``.

    Holds the open spool file and the running offset/sha256 state, so a
    chunk costs one verified append -- the upload is never buffered
    whole.  Lives only in the coordinator process's memory; after a
    restart the worker's next out-of-order chunk gets ``bad_offset``
    with ``expected 0`` and the client restarts the upload.
    """

    def __init__(self, path: str, lease_id: str) -> None:
        self.path = path
        self.lease_id = lease_id
        self.fh = open(path, "wb")
        self.assembler = ChunkAssembler(self.fh)

    @property
    def bytes_received(self) -> int:
        return self.assembler.bytes_received

    def close(self) -> None:
        try:
            self.fh.close()
        except OSError:
            pass


class JobStore:
    """Queue of :class:`~repro.service.jobs.Job` rows under a workdir."""

    def __init__(self, workdir, busy_timeout: float = 30.0) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        self.db_path = os.path.join(self.workdir, "jobs.sqlite")
        self.events_path = os.path.join(self.workdir, "events.jsonl")
        self.events_base_path = os.path.join(self.workdir, "events.base")
        self.staging_dir = os.path.join(self.workdir, "staging")
        self.busy_timeout = busy_timeout
        self._local = threading.local()
        self._events_lock = threading.Lock()
        self._staging: dict[str, _StagedUpload] = {}
        self._staging_lock = threading.Lock()
        #: Callback fired (outside any transaction) after a job commits a
        #: terminal transition.  The DAG resolver hangs off this to
        #: release or cancel dependent jobs event-driven; see
        #: :meth:`set_terminal_hook`.
        self.on_terminal = None
        #: Callback fired after every audit-log append; the event broker
        #: hangs off this to wake long-poll/SSE subscribers without
        #: busy-polling the log.  See :meth:`set_event_hook`.
        self.on_event = None
        self._repair_events_tail()
        self._connection()  # create the schema eagerly

    # -- connection management -------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", -1) != pid:
            # A connection inherited across fork must not be reused (the
            # child would share the parent's file locks), and sqlite3
            # connections refuse cross-thread use; open fresh per
            # (process, thread).
            conn = sqlite3.connect(self.db_path, timeout=self.busy_timeout)
            conn.isolation_level = None  # explicit transactions only
            conn.execute("PRAGMA busy_timeout = %d"
                         % max(0, int(self.busy_timeout * 1000)))
            conn.executescript(_SCHEMA)
            have = {row[1] for row in conn.execute("PRAGMA table_info(jobs)")}
            for column, ddl in _MIGRATIONS:
                if column not in have:
                    conn.execute(ddl)
            self._local.conn = conn
            self._local.pid = pid
        return conn

    def _event(self, job_id: str, event: str, **extra) -> None:
        record = {"t": time.time(), "pid": os.getpid(), "job": job_id,
                  "event": event, **extra}
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._events_lock:
            with open(self.events_path, "a") as fh:
                fh.write(line)
        callback = self.on_event
        if callback is not None:
            try:
                callback()
            except Exception:  # noqa: BLE001 -- wake-ups are best-effort
                pass

    def log_event(self, job_id: str, event: str, **extra) -> None:
        """Append a custom record to the JSONL audit log."""
        self._event(job_id, event, **extra)

    def events(self) -> list[dict]:
        """All logged events, oldest first (empty if none yet)."""
        if not os.path.exists(self.events_path):
            return []
        with open(self.events_path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    # -- event cursors (resumable audit-log reads) -----------------------
    #
    # Every event has a stable *logical* offset: the byte position just
    # past its line, plus the bytes discarded by earlier compactions
    # (``events.base`` holds that discarded-byte count).  Offsets only
    # ever grow, so a cursor held across a coordinator restart -- or a
    # compaction -- still means the same position in the stream.

    def event_stores(self) -> list["JobStore"]:
        """The stores whose logs an event feed over this store tails.

        A plain store is its own single shard; :class:`ShardedStore`
        overrides this with its shard list.  Gives the event broker one
        uniform surface over both.
        """
        return [self]

    def set_event_hook(self, callback) -> None:
        """Install ``callback()``, fired after every audit-log append.

        Runs outside the events lock (and outside any transaction) so a
        broker may immediately read the log from it.  Exceptions are
        swallowed: appending an audit event must never fail because a
        subscriber misbehaved.
        """
        self.on_event = callback

    def _repair_events_tail(self) -> None:
        """Terminate a torn final line left by a SIGKILLed writer.

        A coordinator killed mid-append can leave ``events.jsonl``
        without a trailing newline; the next append would then fuse two
        records into one unparseable line.  Sealing the torn tail with a
        newline on open costs one byte and keeps every *later* event
        intact (the torn record itself is lost either way -- readers
        skip the unparseable line but still advance past it).
        """
        try:
            with self._events_lock, open(self.events_path, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
        except OSError:
            pass  # no log yet

    def events_base(self) -> int:
        """Logical offset of the first byte still present in the log."""
        try:
            with open(self.events_base_path) as fh:
                return int(fh.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def events_end(self) -> int:
        """Logical offset just past the last byte of the log."""
        try:
            size = os.path.getsize(self.events_path)
        except OSError:
            size = 0
        return self.events_base() + size

    def read_events(self, offset: int, limit: int | None = None,
                    ) -> tuple[list[tuple[dict, int]], int]:
        """Complete events at logical ``offset`` on, with their offsets.

        Returns ``(batch, next_offset)`` where ``batch`` pairs each
        parsed record with the logical offset just past its line --
        resuming from that offset never re-reads the record, so a
        cursor-driven reader sees every event exactly once.  Only lines
        terminated by a newline are consumed: a line still being
        appended is left for the next call, so no read ever yields a
        torn record.  Unparseable lines (a sealed torn tail) are
        skipped but still advance ``next_offset``.

        Raises :class:`EventsTruncatedError` when ``offset`` precedes a
        compaction and :class:`BadCursorError` when it lies beyond the
        end of the log.
        """
        base = self.events_base()
        if offset < base:
            raise EventsTruncatedError(
                f"cursor offset {offset} precedes the compacted log"
                f" (events before offset {base} are gone)"
            )
        batch: list[tuple[dict, int]] = []
        try:
            fh = open(self.events_path, "rb")
        except OSError:
            if offset > base:
                raise BadCursorError(
                    f"cursor offset {offset} is beyond the end of the"
                    f" log ({base})"
                ) from None
            return batch, offset
        with fh:
            fh.seek(0, os.SEEK_END)
            end = base + fh.tell()
            if offset > end:
                raise BadCursorError(
                    f"cursor offset {offset} is beyond the end of the"
                    f" log ({end})"
                )
            fh.seek(offset - base)
            position = offset
            while limit is None or len(batch) < limit:
                line = fh.readline()
                if not line.endswith(b"\n"):
                    break  # torn tail (or EOF): leave it for later
                position += len(line)
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # sealed torn line: skip, offset advances
                batch.append((record, position))
        return batch, position

    def truncate_events(self) -> int:
        """Compact the audit log by discarding every event in it.

        The discarded byte count folds into ``events.base``, so logical
        offsets keep their meaning: a cursor minted before the
        compaction either still points at live data (offset == end) or
        gets :class:`EventsTruncatedError` on its next read.  Returns
        the new base offset.
        """
        with self._events_lock:
            try:
                dropped = os.path.getsize(self.events_path)
            except OSError:
                dropped = 0
            base = self.events_base() + dropped
            tmp = self.events_base_path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{base}\n")
            os.replace(tmp, self.events_base_path)
            with open(self.events_path, "w"):
                pass
        return base

    # -- DAG hook --------------------------------------------------------

    def set_terminal_hook(self, callback) -> None:
        """Install ``callback(job)``, fired after terminal transitions.

        The callback runs after the transition's COMMIT and outside any
        transaction, so it may freely read and write the store (the DAG
        resolver releases children from it).  A callback failure is
        logged to the audit log and swallowed: completing a job must
        never fail because a dependent shard is wedged -- the recovery
        sweep reconciles missed releases later.
        """
        self.on_terminal = callback

    def _fire_terminal(self, job: Job) -> None:
        callback = self.on_terminal
        if callback is None or not job.state.terminal:
            return
        try:
            callback(job)
        except Exception as exc:  # noqa: BLE001 -- see set_terminal_hook
            self._event(job.id, "dag_hook_error",
                        error=f"{type(exc).__name__}: {exc}"[:200])

    @staticmethod
    def _insert_deps(conn, job: Job) -> None:
        """Record the job's parent edges child-side, in the caller's txn."""
        for parent in job.depends_on:
            conn.execute(
                "INSERT OR IGNORE INTO deps (child, parent) VALUES (?, ?)",
                (job.id, parent),
            )

    # -- writes ----------------------------------------------------------

    def add(self, job: Job) -> Job:
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                f"INSERT INTO jobs ({_COLS}) VALUES ({_PLACEHOLDERS})",
                job.to_row(),
            )
            self._insert_deps(conn, job)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "submitted", kind=job.kind, key=job.key,
                    state=job.state.value, cached=job.cached)
        return job

    def add_if_no_active(self, job: Job) -> tuple[Job | None, Job | None]:
        """Insert ``job`` unless an active job already holds its key.

        The existence check and the insert share one ``BEGIN IMMEDIATE``
        transaction, so two submitters racing on the same content key
        (threads of an HTTP front-end, or separate processes) can never
        both queue a job for it.  Returns ``(job, None)`` when the job
        was inserted and ``(None, existing)`` when an active
        (BLOCKED/PENDING/RUNNING) twin was found instead.
        """
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE key = ?"
                " AND state IN (?, ?, ?) ORDER BY created LIMIT 1",
                (job.key, JobState.BLOCKED.value, JobState.PENDING.value,
                 JobState.RUNNING.value),
            ).fetchone()
            if row is not None:
                conn.execute("COMMIT")
                return None, Job.from_row(row)
            conn.execute(
                f"INSERT INTO jobs ({_COLS}) VALUES ({_PLACEHOLDERS})",
                job.to_row(),
            )
            self._insert_deps(conn, job)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "submitted", kind=job.kind, key=job.key,
                    state=job.state.value, cached=job.cached)
        return job, None

    def add_batch(
        self, items: list[tuple[Job, bool]]
    ) -> list[tuple[Job | None, Job | None]]:
        """Insert many jobs in ONE transaction, preserving submit order.

        ``items`` pairs each job with a ``dedup`` flag: with dedup the
        item behaves exactly like :meth:`add_if_no_active` (returns
        ``(None, existing)`` on an active twin), without it exactly like
        :meth:`add`.  Because every per-item SELECT runs inside the same
        ``BEGIN IMMEDIATE`` as the earlier items' INSERTs, in-batch
        duplicates dedup against each other precisely as sequential
        single submits would -- the batch is observationally equivalent
        to N ordered calls, just one fsync instead of N.

        Atomic: either every insert of the batch commits or none does.
        Events are emitted post-COMMIT in submit order, identical to the
        single-call paths (no batch marker on the wire or in the log).
        """
        conn = self._connection()
        results: list[tuple[Job | None, Job | None]] = []
        inserted: list[Job] = []
        conn.execute("BEGIN IMMEDIATE")
        try:
            for job, dedup in items:
                if dedup:
                    row = conn.execute(
                        f"SELECT {_COLS} FROM jobs WHERE key = ?"
                        " AND state IN (?, ?, ?) ORDER BY created LIMIT 1",
                        (job.key, JobState.BLOCKED.value,
                         JobState.PENDING.value, JobState.RUNNING.value),
                    ).fetchone()
                    if row is not None:
                        results.append((None, Job.from_row(row)))
                        continue
                conn.execute(
                    f"INSERT INTO jobs ({_COLS}) VALUES ({_PLACEHOLDERS})",
                    job.to_row(),
                )
                self._insert_deps(conn, job)
                results.append((job, None))
                inserted.append(job)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        for job in inserted:
            self._event(job.id, "submitted", kind=job.kind, key=job.key,
                        state=job.state.value, cached=job.cached)
        return results

    def claim(self, worker: str, now: float | None = None) -> Job | None:
        """Atomically move the oldest ready PENDING job to RUNNING.

        Ready means ``not_before <= now`` (jobs in retry backoff are
        skipped until their backoff expires).  Returns ``None`` when no
        job is ready.  Safe to call concurrently from many processes.
        """
        now = time.time() if now is None else now
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ? AND not_before <= ?"
                " ORDER BY created, id LIMIT 1",
                (JobState.PENDING.value, now),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            job = Job.from_row(row)
            job.state = JobState.RUNNING
            job.attempts += 1
            job.worker = worker
            job.updated = now
            conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?, worker = ?,"
                " updated = ? WHERE id = ?",
                (job.state.value, job.attempts, worker, now, job.id),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "claimed", worker=worker, attempt=job.attempts)
        return job

    def _set(self, job_id: str, event: str, **fields) -> Job:
        conn = self._connection()
        fields["updated"] = time.time()
        assignments = ", ".join(f"{k} = ?" for k in fields)
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                f"UPDATE jobs SET {assignments} WHERE id = ?",
                (*fields.values(), job_id),
            )
            if cur.rowcount == 0:
                raise UnknownJobError(f"no such job: {job_id}")
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            raise
        loggable = {k: v for k, v in fields.items()
                    if k in ("state", "error", "not_before", "worker")}
        if "error" in loggable:
            loggable["error"] = loggable["error"].splitlines()[-1][:200] \
                if loggable["error"] else ""
        self._event(job_id, event, **loggable)
        return self.get(job_id)

    def mark_done(self, job_id: str, result_key: str) -> Job:
        job = self._set(job_id, "done", state=JobState.DONE.value,
                        result_key=result_key, error="")
        self._fire_terminal(job)
        return job

    def mark_failed(self, job_id: str, error: str) -> Job:
        job = self._set(job_id, "failed", state=JobState.FAILED.value,
                        error=error)
        self._fire_terminal(job)
        return job

    def requeue(self, job_id: str, error: str, not_before: float) -> Job:
        """Put a failed attempt back in the queue with a backoff."""
        return self._set(job_id, "requeued", state=JobState.PENDING.value,
                         error=error, not_before=not_before)

    def cancel(self, job_id: str) -> bool:
        """Cancel a BLOCKED/PENDING job.

        Returns False when the job already left the queue (RUNNING or
        terminal) -- cancelling an already-terminal job is a no-op, not
        an error, so racing cancellers (a user and the DAG failure
        propagation) are both safe.
        """
        conn = self._connection()
        now = time.time()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE id = ?"
                " AND state IN (?, ?)",
                (JobState.CANCELLED.value, now, job_id,
                 JobState.BLOCKED.value, JobState.PENDING.value),
            )
            hit = cur.rowcount > 0
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if hit:
            self._event(job_id, "cancelled")
            self._fire_terminal(self.get(job_id))
        return hit

    # -- DAG edges (dependency-aware release) ----------------------------

    def children_of(self, parent_id: str) -> list[Job]:
        """BLOCKED jobs that declare ``parent_id`` as a parent.

        Edges are stored child-side (in this store's ``deps`` table), so
        a sharded deployment asks every shard and unions the answers --
        see :meth:`ShardedStore.children_of`.
        """
        cols = ", ".join(f"jobs.{c}" for c in COLUMNS)
        rows = self._connection().execute(
            f"SELECT {cols} FROM jobs JOIN deps ON deps.child = jobs.id"
            " WHERE deps.parent = ? AND jobs.state = ?"
            " ORDER BY jobs.created, jobs.id",
            (parent_id, JobState.BLOCKED.value),
        ).fetchall()
        return [Job.from_row(r) for r in rows]

    def release(self, job_id: str) -> bool:
        """Move a BLOCKED job to PENDING (all parents DONE).

        The guarded UPDATE makes release exactly-once: two resolvers
        racing on the same child (concurrent parent completions, or a
        recovery sweep racing live traffic) see exactly one winning
        rowcount, and only the winner logs the ``released`` event.
        """
        conn = self._connection()
        now = time.time()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE id = ?"
                " AND state = ?",
                (JobState.PENDING.value, now, job_id,
                 JobState.BLOCKED.value),
            )
            hit = cur.rowcount > 0
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if hit:
            self._event(job_id, "released")
        return hit

    def cancel_from_parent(self, job_id: str, parent_id: str) -> bool:
        """Cancel a BLOCKED descendant of a FAILED/CANCELLED parent.

        Exactly-once by the same guarded-UPDATE argument as
        :meth:`release`; only the winner logs the single
        ``parent_failed`` audit event.  Unlike :meth:`cancel` this does
        *not* fire the terminal hook -- the resolver that calls it owns
        the whole descendant closure and would only re-enter itself.
        """
        conn = self._connection()
        now = time.time()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE id = ?"
                " AND state = ?",
                (JobState.CANCELLED.value, now, job_id,
                 JobState.BLOCKED.value),
            )
            hit = cur.rowcount > 0
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if hit:
            self._event(job_id, "parent_failed", parent=parent_id,
                        state=JobState.CANCELLED.value)
        return hit

    # -- leases (remote workers) -----------------------------------------

    def claim_batch(self, worker: str, limit: int = 1, ttl: float = 60.0,
                    now: float | None = None,
                    lease_id: str | None = None) -> tuple[Lease | None,
                                                          list[Job]]:
        """Atomically lease up to ``limit`` ready PENDING jobs to ``worker``.

        The batch and its lease are created in one transaction, so two
        remote pools polling one coordinator can never lease the same
        job.  Returns ``(None, [])`` when nothing is ready -- no empty
        lease is minted.  Expired leases are swept first, so a dead
        worker's jobs become claimable by the very call that replaces it.

        ``lease_id`` lets a sharded coordinator span one logical lease
        over several stores: each store records its own lease row under
        the caller's id.  Left ``None``, a fresh id is minted.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            rows = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ? AND not_before <= ?"
                " ORDER BY created, id LIMIT ?",
                (JobState.PENDING.value, now, max(0, int(limit))),
            ).fetchall()
            if not rows:
                conn.execute("COMMIT")
                return None, []
            lease = Lease(id=lease_id or new_lease_id(), worker=worker,
                          created=now, expires=now + ttl)
            conn.execute(
                "INSERT INTO leases (id, worker, created, expires)"
                " VALUES (?, ?, ?, ?)",
                (lease.id, lease.worker, lease.created, lease.expires),
            )
            jobs = []
            for row in rows:
                job = Job.from_row(row)
                job.state = JobState.RUNNING
                job.attempts += 1
                job.worker = worker
                job.lease_id = lease.id
                job.lease_expires = lease.expires
                job.updated = now
                conn.execute(
                    "UPDATE jobs SET state = ?, attempts = ?, worker = ?,"
                    " lease_id = ?, lease_expires = ?, updated = ?"
                    " WHERE id = ?",
                    (job.state.value, job.attempts, worker, lease.id,
                     lease.expires, now, job.id),
                )
                jobs.append(job)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        for job in jobs:
            self._event(job.id, "claimed", worker=worker,
                        attempt=job.attempts, lease=lease.id)
        return lease, jobs

    def heartbeat_lease(self, lease_id: str, ttl: float = 60.0,
                        now: float | None = None) -> Lease:
        """Extend a live lease (and its jobs) by ``ttl`` seconds.

        Raises :class:`LeaseExpiredError` when the lease has lapsed or
        never existed -- either way the worker no longer owns its jobs.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT id, worker, created, expires FROM leases"
                " WHERE id = ?", (lease_id,),
            ).fetchone()
            if row is None or row[3] <= now:
                conn.execute("COMMIT")
                raise LeaseExpiredError(
                    f"lease {lease_id} has expired or does not exist"
                )
            lease = Lease(id=row[0], worker=row[1], created=row[2],
                          expires=now + ttl)
            conn.execute("UPDATE leases SET expires = ? WHERE id = ?",
                         (lease.expires, lease_id))
            conn.execute(
                "UPDATE jobs SET lease_expires = ?, updated = ?"
                " WHERE lease_id = ? AND state = ?",
                (lease.expires, now, lease_id, JobState.RUNNING.value),
            )
            conn.execute("COMMIT")
        except LeaseExpiredError:
            raise
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return lease

    def _leased_job(self, conn, job_id: str, lease_id: str) -> Job:
        """Fetch ``job_id`` and verify ``lease_id`` still holds it.

        Must run inside the caller's write transaction so the check and
        the subsequent state change are atomic.
        """
        row = conn.execute(
            f"SELECT {_COLS} FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise UnknownJobError(f"no such job: {job_id}")
        job = Job.from_row(row)
        if job.state is JobState.RUNNING and job.lease_id == lease_id:
            return job
        if job.state is JobState.RUNNING and job.lease_id:
            raise LeaseConflictError(
                f"job {job_id} is held by lease {job.lease_id},"
                f" not {lease_id}"
            )
        raise LeaseExpiredError(
            f"lease {lease_id} no longer holds job {job_id}"
            f" (state {job.state.value})"
        )

    def complete_leased(self, job_id: str, lease_id: str,
                        result_key: str,
                        now: float | None = None) -> Job:
        """Mark a leased job DONE, guarded by lease ownership.

        A worker whose lease lapsed mid-upload gets
        :class:`LeaseExpiredError` and must drop the job: the store has
        already requeued it, and accepting the late result would let one
        job complete twice.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            job = self._leased_job(conn, job_id, lease_id)
            job.state = JobState.DONE
            job.result_key = result_key
            job.error = ""
            job.lease_id = ""
            job.lease_expires = 0.0
            job.updated = now
            conn.execute(
                "UPDATE jobs SET state = ?, result_key = ?, error = '',"
                " lease_id = '', lease_expires = 0, updated = ?"
                " WHERE id = ?",
                (job.state.value, result_key, now, job_id),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job_id, "done", state=job.state.value, lease=lease_id)
        self.discard_staged(job_id)
        self._fire_terminal(job)
        return job

    def fail_leased(self, job_id: str, lease_id: str, error: str,
                    backoff_base: float = 0.5,
                    now: float | None = None) -> Job:
        """Record a leased attempt's failure, guarded by lease ownership.

        Applies the same bounded-retry policy as the local pool: within
        ``max_retries`` the job returns to PENDING with exponential
        backoff, otherwise it is FAILED.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            job = self._leased_job(conn, job_id, lease_id)
            if job.attempts <= job.max_retries:
                job.state = JobState.PENDING
                job.not_before = now + backoff_base * 2 ** (job.attempts - 1)
            else:
                job.state = JobState.FAILED
            job.error = error
            job.lease_id = ""
            job.lease_expires = 0.0
            job.updated = now
            conn.execute(
                "UPDATE jobs SET state = ?, not_before = ?, error = ?,"
                " lease_id = '', lease_expires = 0, updated = ?"
                " WHERE id = ?",
                (job.state.value, job.not_before, error, now, job_id),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        event = "requeued" if job.state is JobState.PENDING else "failed"
        self._event(job_id, event, state=job.state.value, lease=lease_id,
                    error=error.splitlines()[-1][:200] if error else "")
        self.discard_staged(job_id)
        self._fire_terminal(job)
        return job

    def expire_leases(self, now: float | None = None) -> list[Job]:
        """Requeue jobs whose lease lapsed; delete the dead leases.

        The scan, the job transitions, and the lease deletions share one
        write transaction, so concurrent sweeps (every claim/heartbeat
        runs one) serialize and each orphaned job is requeued **exactly
        once** -- the second sweep finds no matching rows.  Jobs whose
        retry budget is already spent are FAILED instead of requeued.
        """
        now = time.time() if now is None else now
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            dead = conn.execute(
                "SELECT id FROM leases WHERE expires <= ?", (now,)
            ).fetchall()
            rows = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ?"
                " AND lease_id != '' AND lease_expires <= ?",
                (JobState.RUNNING.value, now),
            ).fetchall()
            recovered = []
            for row in rows:
                job = Job.from_row(row)
                expired_lease = job.lease_id
                message = (f"lease {job.lease_id} expired"
                           f" (worker {job.worker} presumed dead)")
                if job.attempts <= job.max_retries:
                    job.state = JobState.PENDING
                    job.not_before = now
                else:
                    job.state = JobState.FAILED
                job.error = message
                job.lease_id = ""
                job.lease_expires = 0.0
                job.updated = now
                conn.execute(
                    "UPDATE jobs SET state = ?, not_before = ?, error = ?,"
                    " lease_id = '', lease_expires = 0, updated = ?"
                    " WHERE id = ?",
                    (job.state.value, job.not_before, message, now, job.id),
                )
                recovered.append((job, expired_lease))
            if dead:
                conn.execute("DELETE FROM leases WHERE expires <= ?", (now,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        for job, expired_lease in recovered:
            self._event(job.id, "lease_expired", lease=expired_lease,
                        worker=job.worker, state=job.state.value)
            # A dead worker's half-uploaded result must not outlive its
            # lease: the requeued job will stream a fresh one.
            self.discard_staged(job.id)
            # Only jobs FAILED here (retry budget spent) are terminal;
            # requeued ones stay active, so their children stay BLOCKED.
            self._fire_terminal(job)
        return [job for job, _ in recovered]

    # -- staged result uploads (chunk streaming) -------------------------

    def _check_lease_owns(self, job_id: str, lease_id: str) -> Job:
        """Read-side lease guard for staging calls (no transaction)."""
        job = self.get(job_id)
        if job.state is JobState.RUNNING and job.lease_id == lease_id:
            return job
        if job.state is JobState.RUNNING and job.lease_id:
            raise LeaseConflictError(
                f"job {job_id} is held by lease {job.lease_id},"
                f" not {lease_id}"
            )
        raise LeaseExpiredError(
            f"lease {lease_id} no longer holds job {job_id}"
            f" (state {job.state.value})"
        )

    def staged_path(self, job_id: str) -> str:
        return os.path.join(self.staging_dir, f"{job_id}.part")

    def stage_chunk(self, job_id: str, lease_id: str, offset: int,
                    sha256: str, data: bytes,
                    now: float | None = None) -> int:
        """Verify and spool one uploaded chunk; returns bytes staged.

        Chunks must arrive in order, each hashing to its declared
        sha256, under a lease that still owns the job.  ``offset == 0``
        always (re)starts the upload -- a retrying worker or one talking
        to a restarted coordinator truncates any stale spool and begins
        fresh.  Chunks are appended to ``staging/<job_id>.part``; the
        upload is never held in memory.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        self._check_lease_owns(job_id, lease_id)
        with self._staging_lock:
            staged = self._staging.get(job_id)
            if offset == 0:
                if staged is not None:
                    staged.close()
                os.makedirs(self.staging_dir, exist_ok=True)
                staged = _StagedUpload(self.staged_path(job_id), lease_id)
                self._staging[job_id] = staged
                self._event(job_id, "stream_started", lease=lease_id)
            elif staged is None:
                raise ChunkOffsetError(
                    f"no staged upload for job {job_id}"
                    f" (expected offset 0, got {offset})"
                )
            received = staged.assembler.feed(offset, data, sha256)
            staged.lease_id = lease_id
            staged.fh.flush()
            return received

    def finish_staged(self, job_id: str, lease_id: str, size: int,
                      sha256: str,
                      now: float | None = None) -> str:
        """Verify a completed upload; returns the spooled file's path.

        The caller (the service facade) promotes the file into the
        result cache and then completes the lease.  On any verification
        failure the spool is discarded -- the worker must restart from
        offset 0.
        """
        now = time.time() if now is None else now
        self.expire_leases(now=now)
        self._check_lease_owns(job_id, lease_id)
        with self._staging_lock:
            staged = self._staging.pop(job_id, None)
            if staged is None:
                raise ChunkOffsetError(
                    f"no staged upload to finish for job {job_id}"
                )
            try:
                staged.assembler.finish(size, sha256)
            except BaseException:
                staged.close()
                self._unlink_spool(job_id)
                raise
            staged.close()
        self._event(job_id, "stream_finished", lease=lease_id, size=size)
        return staged.path

    def discard_staged(self, job_id: str) -> bool:
        """Drop any staged upload for ``job_id`` (registry + spool file).

        Returns True when something was removed.  Called by the
        lease-expiry sweep (a dead worker's partial upload must not
        outlive its lease) and by terminal job transitions.
        """
        with self._staging_lock:
            staged = self._staging.pop(job_id, None)
            if staged is not None:
                staged.close()
            removed = self._unlink_spool(job_id)
        if staged is not None or removed:
            self._event(job_id, "stream_discarded")
        return staged is not None or removed

    def _unlink_spool(self, job_id: str) -> bool:
        try:
            os.unlink(self.staged_path(job_id))
            return True
        except OSError:
            return False

    def staged_info(self, job_id: str) -> dict | None:
        """``{"bytes_received", "path", "lease"}`` for an in-flight upload."""
        with self._staging_lock:
            staged = self._staging.get(job_id)
            if staged is None:
                return None
            return {"bytes_received": staged.bytes_received,
                    "path": staged.path, "lease": staged.lease_id}

    def get_lease(self, lease_id: str) -> Lease | None:
        """The lease row, if it still exists (expired rows are swept)."""
        row = self._connection().execute(
            "SELECT id, worker, created, expires FROM leases WHERE id = ?",
            (lease_id,),
        ).fetchone()
        if row is None:
            return None
        return Lease(id=row[0], worker=row[1], created=row[2],
                     expires=row[3])

    def active_leases(self, now: float | None = None) -> list[Lease]:
        """Leases that have not yet lapsed, oldest first."""
        now = time.time() if now is None else now
        rows = self._connection().execute(
            "SELECT id, worker, created, expires FROM leases"
            " WHERE expires > ? ORDER BY created, id", (now,),
        ).fetchall()
        return [Lease(id=r[0], worker=r[1], created=r[2], expires=r[3])
                for r in rows]

    # -- reads -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        row = self._connection().execute(
            f"SELECT {_COLS} FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise UnknownJobError(f"no such job: {job_id}")
        return Job.from_row(row)

    @staticmethod
    def _filters(state, kind) -> tuple[str, list]:
        clauses, params = [], []
        if state is not None:
            value = state.value if isinstance(state, JobState) \
                else JobState(state).value
            clauses.append("state = ?")
            params.append(value)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def list(self, state: JobState | str | None = None,
             kind: str | None = None, limit: int | None = None,
             offset: int = 0) -> list[Job]:
        """Jobs matching the filters, oldest first, windowed.

        ``limit=None`` returns every match from ``offset`` on; a string
        ``state`` is validated against :class:`JobState` (raising
        ``ValueError`` on junk, which callers surface as bad input).
        """
        where, params = self._filters(state, kind)
        sql = f"SELECT {_COLS} FROM jobs{where} ORDER BY created, id"
        if limit is not None or offset:
            sql += " LIMIT ? OFFSET ?"
            params += [-1 if limit is None else max(0, int(limit)),
                       max(0, int(offset))]
        rows = self._connection().execute(sql, params).fetchall()
        return [Job.from_row(r) for r in rows]

    def count_matching(self, state: JobState | str | None = None,
                       kind: str | None = None) -> int:
        """How many jobs match the filters (the pre-window total)."""
        where, params = self._filters(state, kind)
        return self._connection().execute(
            f"SELECT COUNT(*) FROM jobs{where}", params
        ).fetchone()[0]

    def counts(self) -> dict[str, int]:
        """Job count per state (every state present, zero included)."""
        out = {s.value: 0 for s in JobState}
        for state, n in self._connection().execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            out[state] = n
        return out

    def active_by_key(self, key: str) -> Job | None:
        """The active (non-terminal) job with this content key (dedup)."""
        row = self._connection().execute(
            f"SELECT {_COLS} FROM jobs WHERE key = ? AND state IN (?, ?, ?)"
            " ORDER BY created LIMIT 1",
            (key, JobState.BLOCKED.value, JobState.PENDING.value,
             JobState.RUNNING.value),
        ).fetchone()
        return Job.from_row(row) if row else None

    def outstanding(self) -> int:
        """Number of non-terminal jobs (BLOCKED and backoff included)."""
        c = self.counts()
        return sum(c[s.value] for s in JobState if not s.terminal)

    def close(self) -> None:
        """Close the calling thread's connection (others are untouched)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", -1) == os.getpid():
            conn.close()
        self._local.conn = None
