"""Persistent job store: an SQLite queue plus a JSONL event log.

The store is the service's single source of truth.  SQLite gives the
multiprocess worker pool atomic job claims (``BEGIN IMMEDIATE`` write
transactions serialize claimers across processes), and the sidecar
``events.jsonl`` append-only log records every transition so tests and
operators can audit exactly what ran -- e.g. "how many jobs entered
RUNNING during this resubmission?" is a one-line scan.

Connections are opened lazily *per process and per thread*: a
:class:`JobStore` handle may be created in a supervisor and used after
``fork`` in a worker child, or shared by the threads of an HTTP
front-end; each (process, thread) pair gets its own connection, since
SQLite connections are neither fork- nor thread-shareable.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from ..errors import UnknownJobError
from .jobs import COLUMNS, Job, JobState

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    key TEXT NOT NULL,
    state TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    max_retries INTEGER NOT NULL,
    timeout REAL NOT NULL,
    not_before REAL NOT NULL,
    error TEXT NOT NULL,
    result_key TEXT NOT NULL,
    cached INTEGER NOT NULL,
    worker TEXT NOT NULL,
    created REAL NOT NULL,
    updated REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, not_before, created);
CREATE INDEX IF NOT EXISTS jobs_key ON jobs (key);
"""

_COLS = ", ".join(COLUMNS)
_PLACEHOLDERS = ", ".join("?" for _ in COLUMNS)


class JobStore:
    """Queue of :class:`~repro.service.jobs.Job` rows under a workdir."""

    def __init__(self, workdir) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        self.db_path = os.path.join(self.workdir, "jobs.sqlite")
        self.events_path = os.path.join(self.workdir, "events.jsonl")
        self._local = threading.local()
        self._events_lock = threading.Lock()
        self._connection()  # create the schema eagerly

    # -- connection management -------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", -1) != pid:
            # A connection inherited across fork must not be reused (the
            # child would share the parent's file locks), and sqlite3
            # connections refuse cross-thread use; open fresh per
            # (process, thread).
            conn = sqlite3.connect(self.db_path, timeout=30.0)
            conn.isolation_level = None  # explicit transactions only
            conn.execute("PRAGMA busy_timeout = 30000")
            conn.executescript(_SCHEMA)
            self._local.conn = conn
            self._local.pid = pid
        return conn

    def _event(self, job_id: str, event: str, **extra) -> None:
        record = {"t": time.time(), "pid": os.getpid(), "job": job_id,
                  "event": event, **extra}
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._events_lock:
            with open(self.events_path, "a") as fh:
                fh.write(line)

    def log_event(self, job_id: str, event: str, **extra) -> None:
        """Append a custom record to the JSONL audit log."""
        self._event(job_id, event, **extra)

    def events(self) -> list[dict]:
        """All logged events, oldest first (empty if none yet)."""
        if not os.path.exists(self.events_path):
            return []
        with open(self.events_path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    # -- writes ----------------------------------------------------------

    def add(self, job: Job) -> Job:
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                f"INSERT INTO jobs ({_COLS}) VALUES ({_PLACEHOLDERS})",
                job.to_row(),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "submitted", kind=job.kind, key=job.key,
                    state=job.state.value, cached=job.cached)
        return job

    def add_if_no_active(self, job: Job) -> tuple[Job | None, Job | None]:
        """Insert ``job`` unless an active job already holds its key.

        The existence check and the insert share one ``BEGIN IMMEDIATE``
        transaction, so two submitters racing on the same content key
        (threads of an HTTP front-end, or separate processes) can never
        both queue a job for it.  Returns ``(job, None)`` when the job
        was inserted and ``(None, existing)`` when a PENDING/RUNNING
        twin was found instead.
        """
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE key = ? AND state IN (?, ?)"
                " ORDER BY created LIMIT 1",
                (job.key, JobState.PENDING.value, JobState.RUNNING.value),
            ).fetchone()
            if row is not None:
                conn.execute("COMMIT")
                return None, Job.from_row(row)
            conn.execute(
                f"INSERT INTO jobs ({_COLS}) VALUES ({_PLACEHOLDERS})",
                job.to_row(),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "submitted", kind=job.kind, key=job.key,
                    state=job.state.value, cached=job.cached)
        return job, None

    def claim(self, worker: str, now: float | None = None) -> Job | None:
        """Atomically move the oldest ready PENDING job to RUNNING.

        Ready means ``not_before <= now`` (jobs in retry backoff are
        skipped until their backoff expires).  Returns ``None`` when no
        job is ready.  Safe to call concurrently from many processes.
        """
        now = time.time() if now is None else now
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ? AND not_before <= ?"
                " ORDER BY created, id LIMIT 1",
                (JobState.PENDING.value, now),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            job = Job.from_row(row)
            job.state = JobState.RUNNING
            job.attempts += 1
            job.worker = worker
            job.updated = now
            conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?, worker = ?,"
                " updated = ? WHERE id = ?",
                (job.state.value, job.attempts, worker, now, job.id),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._event(job.id, "claimed", worker=worker, attempt=job.attempts)
        return job

    def _set(self, job_id: str, event: str, **fields) -> Job:
        conn = self._connection()
        fields["updated"] = time.time()
        assignments = ", ".join(f"{k} = ?" for k in fields)
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                f"UPDATE jobs SET {assignments} WHERE id = ?",
                (*fields.values(), job_id),
            )
            if cur.rowcount == 0:
                raise UnknownJobError(f"no such job: {job_id}")
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            raise
        loggable = {k: v for k, v in fields.items()
                    if k in ("state", "error", "not_before", "worker")}
        if "error" in loggable:
            loggable["error"] = loggable["error"].splitlines()[-1][:200] \
                if loggable["error"] else ""
        self._event(job_id, event, **loggable)
        return self.get(job_id)

    def mark_done(self, job_id: str, result_key: str) -> Job:
        return self._set(job_id, "done", state=JobState.DONE.value,
                         result_key=result_key, error="")

    def mark_failed(self, job_id: str, error: str) -> Job:
        return self._set(job_id, "failed", state=JobState.FAILED.value,
                         error=error)

    def requeue(self, job_id: str, error: str, not_before: float) -> Job:
        """Put a failed attempt back in the queue with a backoff."""
        return self._set(job_id, "requeued", state=JobState.PENDING.value,
                         error=error, not_before=not_before)

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING job; returns False if it already left PENDING."""
        conn = self._connection()
        now = time.time()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE id = ?"
                " AND state = ?",
                (JobState.CANCELLED.value, now, job_id,
                 JobState.PENDING.value),
            )
            hit = cur.rowcount > 0
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if hit:
            self._event(job_id, "cancelled")
        return hit

    # -- reads -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        row = self._connection().execute(
            f"SELECT {_COLS} FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise UnknownJobError(f"no such job: {job_id}")
        return Job.from_row(row)

    def list(self, state: JobState | None = None) -> list[Job]:
        conn = self._connection()
        if state is None:
            rows = conn.execute(
                f"SELECT {_COLS} FROM jobs ORDER BY created, id"
            ).fetchall()
        else:
            rows = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ?"
                " ORDER BY created, id",
                (state.value,),
            ).fetchall()
        return [Job.from_row(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job count per state (every state present, zero included)."""
        out = {s.value: 0 for s in JobState}
        for state, n in self._connection().execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            out[state] = n
        return out

    def active_by_key(self, key: str) -> Job | None:
        """The PENDING/RUNNING job with this content key, if any (dedup)."""
        row = self._connection().execute(
            f"SELECT {_COLS} FROM jobs WHERE key = ? AND state IN (?, ?)"
            " ORDER BY created LIMIT 1",
            (key, JobState.PENDING.value, JobState.RUNNING.value),
        ).fetchone()
        return Job.from_row(row) if row else None

    def outstanding(self) -> int:
        """Number of non-terminal jobs (PENDING in backoff included)."""
        c = self.counts()
        return c[JobState.PENDING.value] + c[JobState.RUNNING.value]

    def close(self) -> None:
        """Close the calling thread's connection (others are untouched)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", -1) == os.getpid():
            conn.close()
        self._local.conn = None
