"""Sustained-load generation against a live coordinator (stdlib only).

The service tier claims it can absorb "heavy traffic"; this module is
how the claim gets measured instead of asserted, in the spirit of the
source paper's method -- find the ceiling, then move it -- and of
Balsam's ``tests/benchmark`` locust harness.  A storm is:

* **N worker processes** (real processes, so the generator itself never
  serializes behind one GIL while the threaded server fans out), each
  running
* **C asyncio coroutines** over keep-alive HTTP/1.1 connections
  (:class:`MiniClient` -- the server always frames responses with
  ``Content-Length``, which is what makes a ~100-line client correct),
  each drawing
* operations from a weighted **mix** of submit / batch-submit / status /
  result / cancel until the deadline.

Every operation records its latency and status code; the merged
:func:`run_storm` report carries per-endpoint p50/p95/p99, a status-code
histogram (429s are the admission control *working*, 5xx other than 503
``shard_unavailable`` are bugs), aggregate submits/s, and the error
samples needed to debug a failure.  :func:`measure_drain` then times the
queue going to zero, and :func:`rss_bytes` reads the coordinator's
resident set from ``/proc`` so a leak under load is a number, not a
vibe.  ``benchmarks/bench_service_load.py`` drives all of this and
appends to the ``BENCH_service_throughput.json`` trajectory.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import random
import time
import urllib.parse

#: The operation names a mix may weight.
OPERATIONS = ("submit", "batch", "status", "result", "cancel", "watch")

#: Default operation mix: submit-heavy, like a sweep-driven workload.
#: ``watch`` (one resumable ``GET /v1/events`` long-poll per draw,
#: cursor carried between draws) is off by default -- scenarios opt in.
DEFAULT_MIX = {"submit": 6, "batch": 1, "status": 2, "result": 2,
               "cancel": 1}

#: Long-poll hold per ``watch`` draw; short so a watch-heavy mix still
#: ticks through enough operations to measure within a storm.
WATCH_POLL_S = 1.0

#: Jobs per batch-submit operation.
DEFAULT_BATCH_SIZE = 25

_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: list[float], pct: float) -> float:
    """Linear-interpolated percentile of an unsorted sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def rss_bytes(pid: int) -> int | None:
    """The process's resident set size from ``/proc`` (None off-Linux)."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class MiniClient:
    """A minimal asyncio HTTP/1.1 keep-alive client for one server.

    Correct *for this server* rather than in general: ``repro serve``
    always sends ``Content-Length`` (JSON and octet-stream paths alike),
    never chunked transfer encoding, so framing is trivial.  One
    instance owns one connection; a coroutine uses its own instance.
    Broken connections reconnect transparently on the next request.
    """

    def __init__(self, url: str, client_id: str = "loadgen") -> None:
        parsed = urllib.parse.urlsplit(
            url if "://" in url else f"http://{url}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.client_id = client_id
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      body: dict | None = None) -> tuple[int, dict]:
        """One round-trip; returns ``(status, parsed-JSON body)``.

        Retries exactly once on a dead keep-alive connection (the
        server may have closed it between requests); any other
        transport error propagates as :class:`ConnectionError`.
        """
        payload = (json.dumps(body).encode() if body is not None else b"")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"X-Client-Id: {self.client_id}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("ascii")
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                self._writer.write(head + payload)
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise ConnectionError(
                        f"{method} {path}: connection failed twice"
                    ) from None

    async def _read_response(self) -> tuple[int, dict]:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        status = int(parts[1])
        length = 0
        close = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length":
                length = int(value)
            elif name == "connection" and value.lower() == "close":
                close = True
        raw = await self._reader.readexactly(length) if length else b"{}"
        if close:
            await self.close()
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            parsed = {}
        return status, parsed if isinstance(parsed, dict) else {}


def _merge_op(stats: dict, op: str, status: int, elapsed_ms: float) -> None:
    entry = stats.setdefault(op, {"latencies": [], "codes": {}})
    entry["latencies"].append(elapsed_ms)
    key = str(status)
    entry["codes"][key] = entry["codes"].get(key, 0) + 1


async def _one_worker(url: str, worker_id: str, deadline: float,
                      mix: dict[str, float], batch_size: int,
                      rng: random.Random, stats: dict,
                      submitted_ids: list[str],
                      errors: list[str]) -> None:
    """One coroutine's request loop until the deadline."""
    client = MiniClient(url, client_id=worker_id)
    ops = [op for op in OPERATIONS if mix.get(op, 0) > 0]
    weights = [mix[op] for op in ops]
    seq = 0
    # Each coroutine is one subscriber: its event cursor persists
    # across ``watch`` draws, so the feed is consumed incrementally
    # the way a real watching client would.
    cursor = "now"
    try:
        while time.monotonic() < deadline:
            op = rng.choices(ops, weights)[0]
            seq += 1
            tag = f"{worker_id}-{seq}"
            try:
                t0 = time.monotonic()
                if op == "submit":
                    status, body = await client.request(
                        "POST", "/v1/jobs",
                        {"kind": "probe",
                         "payload": {"behavior": "ok", "tag": tag}})
                elif op == "batch":
                    jobs = [{"kind": "probe",
                             "payload": {"behavior": "ok",
                                         "tag": f"{tag}.{i}"}}
                            for i in range(batch_size)]
                    status, body = await client.request(
                        "POST", "/v1/jobs/batch", {"jobs": jobs})
                elif op == "status":
                    status, body = await client.request(
                        "GET", "/v1/queue?limit=20")
                elif op == "result" and submitted_ids:
                    jid = rng.choice(submitted_ids)
                    status, body = await client.request(
                        "GET", f"/v1/jobs/{jid}/result")
                elif op == "cancel" and submitted_ids:
                    jid = rng.choice(submitted_ids)
                    status, body = await client.request(
                        "POST", f"/v1/jobs/{jid}/cancel")
                elif op == "watch":
                    status, body = await client.request(
                        "GET", "/v1/events?cursor="
                        + urllib.parse.quote(cursor)
                        + f"&timeout={WATCH_POLL_S}&limit=100")
                    if status == 200 and body.get("cursor"):
                        cursor = body["cursor"]
                    elif status in (410, 422):
                        cursor = "now"  # resync a stale/foreign cursor
                else:
                    # No ids yet to read or cancel: probe liveness so
                    # the tick still measures something.
                    op = "status"
                    status, body = await client.request(
                        "GET", "/v1/healthz")
                elapsed_ms = (time.monotonic() - t0) * 1000.0
            except ConnectionError as exc:
                if len(errors) < 20:
                    errors.append(f"{op}: {exc}")
                continue
            _merge_op(stats, op, status, elapsed_ms)
            if status == 200 and op in ("submit", "batch"):
                receipt = body.get("receipt", {})
                ids = receipt.get("job_ids", [])
                # A bounded reservoir of ids to read back / cancel.
                for jid in ids[:5]:
                    if len(submitted_ids) < 500:
                        submitted_ids.append(jid)
                stats.setdefault("_submitted", [0])[0] += len(ids)
            elif status >= 500 and len(errors) < 20:
                errors.append(
                    f"{op}: HTTP {status}"
                    f" {body.get('error', {}).get('code', '?')}")
    finally:
        await client.close()


async def _process_storm(url: str, prefix: str, duration: float,
                         concurrency: int, mix: dict[str, float],
                         batch_size: int, seed: int) -> dict:
    deadline = time.monotonic() + duration
    stats: dict = {}
    submitted_ids: list[str] = []
    errors: list[str] = []
    await asyncio.gather(*(
        _one_worker(url, f"{prefix}-c{i}", deadline, mix, batch_size,
                    random.Random(seed * 1000 + i), stats, submitted_ids,
                    errors)
        for i in range(concurrency)
    ))
    return {"stats": stats, "errors": errors}


def _storm_entry(url: str, prefix: str, duration: float, concurrency: int,
                 mix: dict[str, float], batch_size: int, seed: int,
                 out: "multiprocessing.Queue") -> None:
    """Child-process entry point: run one process's share of the storm."""
    try:
        result = asyncio.run(_process_storm(
            url, prefix, duration, concurrency, mix, batch_size, seed))
    except Exception as exc:  # noqa: BLE001 -- report, don't hang join()
        result = {"stats": {}, "errors": [f"process {prefix}:"
                                          f" {type(exc).__name__}: {exc}"]}
    out.put(result)


def run_storm(url: str, duration: float = 10.0, processes: int = 2,
              concurrency: int = 8, mix: dict[str, float] | None = None,
              batch_size: int = DEFAULT_BATCH_SIZE, seed: int = 0,
              server_pid: int | None = None) -> dict:
    """Hammer ``url`` and return the merged measurement report.

    ``processes`` worker processes x ``concurrency`` coroutines each,
    drawing from ``mix`` (see :data:`DEFAULT_MIX`) for ``duration``
    seconds.  With ``server_pid`` the coordinator's RSS is sampled
    before and after, so memory growth under load lands in the report.
    The report is JSON-ready: per-endpoint latency percentiles and
    status-code histograms, aggregate ``submits_per_s`` (jobs enqueued,
    counting every batch point), and up to 20 error samples.
    """
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(OPERATIONS)
    if unknown:
        raise ValueError(f"unknown operations in mix: {sorted(unknown)}")
    rss_before = rss_bytes(server_pid) if server_pid else None
    ctx = multiprocessing.get_context()
    out: multiprocessing.Queue = ctx.Queue()
    procs = [
        ctx.Process(target=_storm_entry,
                    args=(url, f"lg{seed}-p{i}", duration, concurrency,
                          mix, batch_size, seed + i, out),
                    daemon=True)
        for i in range(processes)
    ]
    t0 = time.monotonic()
    for p in procs:
        p.start()
    merged: dict = {}
    errors: list[str] = []
    submitted = 0
    for _ in procs:
        # Generous grace on top of the storm itself; a wedged child
        # must not hang the harness forever.
        result = out.get(timeout=duration + 120.0)
        for op, entry in result["stats"].items():
            if op == "_submitted":
                submitted += entry[0]
                continue
            target = merged.setdefault(op, {"latencies": [], "codes": {}})
            target["latencies"].extend(entry["latencies"])
            for code, n in entry["codes"].items():
                target["codes"][code] = target["codes"].get(code, 0) + n
        errors.extend(result["errors"])
    for p in procs:
        p.join(timeout=30.0)
    wall = time.monotonic() - t0
    rss_after = rss_bytes(server_pid) if server_pid else None
    report: dict = {
        "duration_s": round(wall, 3),
        "processes": processes,
        "concurrency": concurrency,
        "mix": mix,
        "batch_size": batch_size,
        "submitted_jobs": submitted,
        "submits_per_s": round(submitted / wall, 2) if wall > 0 else 0.0,
        "ops": {},
        "status_codes": {},
        "errors": errors[:20],
        "rss_before_bytes": rss_before,
        "rss_after_bytes": rss_after,
    }
    for op, entry in sorted(merged.items()):
        lat = entry["latencies"]
        report["ops"][op] = {
            "count": len(lat),
            "mean_ms": round(sum(lat) / len(lat), 3) if lat else 0.0,
            **{f"p{int(p) if p == int(p) else p}_ms":
               round(percentile(lat, p), 3) for p in _PERCENTILES},
            "codes": dict(sorted(entry["codes"].items())),
        }
        for code, n in entry["codes"].items():
            report["status_codes"][code] = \
                report["status_codes"].get(code, 0) + n
    report["status_codes"] = dict(sorted(report["status_codes"].items()))
    return report


def bad_5xx(report: dict) -> int:
    """Server errors that are bugs: 5xx minus 503 graceful degradation."""
    return sum(n for code, n in report.get("status_codes", {}).items()
               if code.startswith("5") and code != "503")


def measure_drain(url: str, timeout: float = 120.0,
                  poll: float = 0.25) -> dict:
    """Time the queue draining to zero outstanding jobs via healthz.

    Returns ``{"initial_depth", "drained", "seconds", "drain_per_s"}``;
    raises :class:`TimeoutError` if jobs are still outstanding after
    ``timeout`` seconds (the acceptance criterion is that a storm's
    backlog fully drains).
    """
    import urllib.request

    def depth() -> int:
        with urllib.request.urlopen(f"{url}/v1/healthz",
                                    timeout=10.0) as resp:
            queue = json.load(resp).get("queue", {})
        return sum(queue.get(s, 0)
                   for s in ("BLOCKED", "PENDING", "RUNNING"))

    initial = depth()
    t0 = time.monotonic()
    deadline = t0 + timeout
    current = initial
    while current > 0:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"queue still holds {current} outstanding job(s)"
                f" after {timeout:.0f}s"
            )
        time.sleep(poll)
        current = depth()
    seconds = time.monotonic() - t0
    return {
        "initial_depth": initial,
        "drained": initial,
        "seconds": round(seconds, 3),
        "drain_per_s": round(initial / seconds, 2) if seconds > 0 else 0.0,
    }
