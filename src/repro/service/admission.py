"""Admission control for the HTTP front-end: watermark + rate limits.

The coordinator must refuse work it cannot absorb *before* the refusal
itself becomes expensive -- the service-tier analogue of the paper's
rule that the critical path must never block on a slow consumer.  Two
independent gates guard the submit endpoints (``POST /v1/jobs``,
``/v1/jobs/batch``, ``/v1/campaigns``):

* **Queue-depth watermark** -- when the number of outstanding
  (non-terminal) jobs is at or above ``max_queue_depth``, submissions
  are rejected with 429 ``overloaded`` and a ``Retry-After`` hint.
  Depth is read through a short-TTL cache (:attr:`depth_ttl`) so a
  storm of submissions costs one store scan per window, not one per
  request; the watermark is therefore *soft* by at most one window's
  worth of admissions, which is exactly the tolerance a sharded
  ``counts()`` has anyway (see :meth:`ShardedStore.counts`).
* **Per-client token bucket** -- each client (the ``X-Client-Id``
  header, falling back to the peer address) gets ``rate_limit`` tokens
  per second with a burst of ``rate_burst``; a request finding the
  bucket empty is rejected with 429 ``rate_limited`` and the time until
  the next token as ``Retry-After``.  One request costs one token
  regardless of batch size -- batching is the *reward*, not a loophole,
  per the tiled-algorithms rule that per-item overhead is what caps
  sustained throughput.

Reads (status / result / healthz) and relief traffic (cancel, lease
completions) are never gated: a client must always be able to observe
and shrink the backlog.
"""

from __future__ import annotations

import math
import threading
import time

from ..errors import OverloadedError, RateLimitedError

#: Buckets idle longer than this are eligible for eviction.
_BUCKET_IDLE_SECONDS = 120.0
#: Soft cap on tracked clients; crossing it triggers an idle sweep.
_MAX_CLIENTS = 4096


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float,
                 now: float | None = None) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = time.monotonic() if now is None else now

    def take(self, now: float | None = None, cost: float = 1.0) -> float:
        """Try to spend ``cost`` tokens; 0.0 on success, else the wait.

        On refusal nothing is spent and the return value is how many
        seconds until the bucket will hold ``cost`` tokens again.
        """
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate if self.rate > 0 \
            else float("inf")


class AdmissionController:
    """The submit-path gatekeeper one HTTP server owns.

    ``max_queue_depth=0`` disables the watermark; ``rate_limit=0``
    disables per-client limiting -- both default off, so a server
    constructed without admission flags behaves exactly as before.
    """

    def __init__(self, max_queue_depth: int = 0, rate_limit: float = 0.0,
                 rate_burst: float | None = None,
                 retry_after: float = 1.0,
                 depth_ttl: float = 0.2) -> None:
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if rate_limit < 0:
            raise ValueError(f"rate_limit must be >= 0, got {rate_limit}")
        self.max_queue_depth = int(max_queue_depth)
        self.rate_limit = float(rate_limit)
        # Default burst: one second's worth of tokens, but never < 1 so
        # a tiny rate still admits single requests.
        self.rate_burst = max(1.0, float(
            rate_burst if rate_burst is not None else rate_limit
        ))
        self.retry_after = float(retry_after)
        self.depth_ttl = float(depth_ttl)
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._depth = 0
        self._depth_stamp = -math.inf
        #: Rejection tallies served on /v1/healthz for operators.
        self.rejected_overloaded = 0
        self.rejected_rate_limited = 0

    # -- rate limiting ---------------------------------------------------

    def _bucket(self, client_id: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= _MAX_CLIENTS:
                self._evict_idle(now)
            bucket = TokenBucket(self.rate_limit, self.rate_burst, now=now)
            self._buckets[client_id] = bucket
        return bucket

    def _evict_idle(self, now: float) -> None:
        """Drop buckets idle past the window (full buckets lose nothing)."""
        idle = [cid for cid, b in self._buckets.items()
                if now - b.stamp > _BUCKET_IDLE_SECONDS]
        for cid in idle:
            del self._buckets[cid]
        if len(self._buckets) >= _MAX_CLIENTS:
            # Every bucket is hot; shed the oldest half so memory stays
            # bounded even under a rotating-client-id attack.
            by_age = sorted(self._buckets, key=lambda c: self._buckets[c].stamp)
            for cid in by_age[:len(by_age) // 2]:
                del self._buckets[cid]

    # -- the gate --------------------------------------------------------

    def check_submit(self, client_id: str, outstanding_fn) -> None:
        """Admit or reject one submission request.

        ``outstanding_fn`` reads the store's current non-terminal depth;
        it is only called when the cached figure is older than
        :attr:`depth_ttl`.  Raises :class:`RateLimitedError` (the
        cheaper check, so a hammering client never triggers depth scans)
        or :class:`OverloadedError`.
        """
        now = time.monotonic()
        if self.rate_limit > 0:
            with self._lock:
                wait = self._bucket(client_id, now).take(now=now)
            if wait > 0:
                with self._lock:
                    self.rejected_rate_limited += 1
                raise RateLimitedError(
                    f"client {client_id!r} exceeded {self.rate_limit:g}"
                    f" submit request(s)/s (burst {self.rate_burst:g})",
                    retry_after=max(wait, 0.05),
                )
        if self.max_queue_depth > 0:
            with self._lock:
                if now - self._depth_stamp > self.depth_ttl:
                    self._depth = int(outstanding_fn())
                    self._depth_stamp = now
                depth = self._depth
            if depth >= self.max_queue_depth:
                with self._lock:
                    self.rejected_overloaded += 1
                raise OverloadedError(
                    f"queue depth {depth} is at the admission watermark"
                    f" ({self.max_queue_depth}); retry after the backlog"
                    f" drains",
                    retry_after=self.retry_after,
                )

    def note_enqueued(self, njobs: int) -> None:
        """Advance the cached depth without waiting for the TTL.

        Called after a successful submission so a burst inside one TTL
        window walks the cached figure toward the watermark instead of
        sailing past it unmetered.
        """
        if self.max_queue_depth > 0 and njobs > 0:
            with self._lock:
                self._depth += njobs

    def stats(self) -> dict:
        """The figures /v1/healthz serves under ``"admission"``."""
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "rate_limit": self.rate_limit,
                "rate_burst": self.rate_burst if self.rate_limit > 0 else 0,
                "clients": len(self._buckets),
                "rejected_overloaded": self.rejected_overloaded,
                "rejected_rate_limited": self.rejected_rate_limited,
            }
