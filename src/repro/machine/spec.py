"""Hardware specification dataclasses.

A :class:`NodeSpec` describes one Crusher/Frontier-style node: a single CPU
socket plus a set of GPU *devices* (for MI250X, each Graphics Compute Die
counts as one device, matching rocHPL's one-rank-per-GCD design).  A
:class:`ClusterSpec` is a set of identical nodes on an interconnect.

All bandwidths are GB/s (1e9 bytes), latencies seconds, rates GFLOP/s or
TFLOP/s as named.  Specs are frozen: a run's hardware does not mutate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class GPUSpec:
    """One GPU device (one GCD of an MI250X).

    Attributes:
        name: Marketing/device name.
        peak_fp64_matrix_tflops: FP64 matrix-core peak.
        hbm_gb: HBM capacity.
        hbm_bw_gbs: HBM bandwidth (drives row gather/scatter kernels).
        kernel_latency_s: Launch-to-start latency of one kernel.
        gemm_eff_max: Asymptotic fraction of matrix peak large DGEMMs reach.
        gemm_k_half: ``k`` at which DGEMM reaches half its asymptotic
            efficiency (the blocking-factor knee the paper discusses when
            motivating NB=512).
        gemm_mn_half: Same knee for the ``m``/``n`` extents.
        trsm_eff: DTRSM rate relative to same-shape DGEMM (rocBLAS
            triangular kernels trail square ones).
        rowswap_bw_gbs: Effective HBM bandwidth of the strided row
            gather/scatter kernels (well below streaming bandwidth).
    """

    name: str = "GCD"
    peak_fp64_matrix_tflops: float = 47.9
    hbm_gb: float = 64.0
    hbm_bw_gbs: float = 1600.0
    kernel_latency_s: float = 10e-6
    gemm_eff_max: float = 0.576
    gemm_k_half: float = 45.0
    gemm_mn_half: float = 2000.0
    trsm_eff: float = 0.5
    rowswap_bw_gbs: float = 400.0

    def __post_init__(self) -> None:
        if self.peak_fp64_matrix_tflops <= 0:
            raise ConfigError("GPU peak must be positive")
        if not 0 < self.gemm_eff_max <= 1:
            raise ConfigError("gemm_eff_max must be in (0, 1]")


@dataclass(frozen=True)
class CPUSpec:
    """The node's CPU socket.

    Attributes:
        cores: Physical cores.
        ccds: Core Complex Dies (cache/affinity domains).
        core_dgemm_gflops: Sustained per-core DGEMM rate (BLIS).
        l3_mb: Total L3 (the FACT working set usually fits, per the paper).
        mem_bw_gbs: DDR bandwidth (the penalty when it does not fit).
        sync_latency_s: One barrier/reduction hop between threads.
        col_overhead_s: Fixed serial cost per factored column (pivot
            bookkeeping, MPI progression, swap latency) -- dominates the
            latency-bound tail of the benchmark.
        pivot_row_bw_gbs: Effective rate of the per-column pivot row swap
            and broadcast inside the socket.
    """

    cores: int = 64
    ccds: int = 8
    core_dgemm_gflops: float = 27.0
    l3_mb: float = 256.0
    mem_bw_gbs: float = 205.0
    sync_latency_s: float = 0.4e-6
    col_overhead_s: float = 12e-6
    pivot_row_bw_gbs: float = 30.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.ccds < 1:
            raise ConfigError("CPU needs at least one core and one CCD")
        if self.cores % self.ccds:
            raise ConfigError(f"{self.cores} cores do not tile {self.ccds} CCDs")

    @property
    def cores_per_ccd(self) -> int:
        return self.cores // self.ccds


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link: alpha-beta (latency + bandwidth) model.

    ``seconds(nbytes) = latency + nbytes / bandwidth``.
    """

    bandwidth_gbs: float
    latency_s: float

    def seconds(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class NodeSpec:
    """One accelerated node.

    Attributes:
        cpu: The CPU socket.
        gpu: The per-device GPU spec.
        gpus: Number of GPU devices (GCDs) -- also the ranks per node.
        h2d: Host-to-device link per device (Infinity Fabric).
        d2h: Device-to-host link per device.
        gpu_gpu: Device-to-device link on node (Infinity Fabric).
        nic: Off-node link per device (Slingshot NIC share).
    """

    cpu: CPUSpec = field(default_factory=CPUSpec)
    gpu: GPUSpec = field(default_factory=GPUSpec)
    gpus: int = 8
    h2d: LinkSpec = field(default_factory=lambda: LinkSpec(36.0, 8e-6))
    d2h: LinkSpec = field(default_factory=lambda: LinkSpec(36.0, 8e-6))
    gpu_gpu: LinkSpec = field(default_factory=lambda: LinkSpec(50.0, 2e-6))
    nic: LinkSpec = field(default_factory=lambda: LinkSpec(23.0, 4e-6))

    def __post_init__(self) -> None:
        if self.gpus < 1:
            raise ConfigError("node needs at least one GPU device")

    @property
    def hbm_total_gb(self) -> float:
        return self.gpus * self.gpu.hbm_gb

    def fits_n(self, n: int, fill: float = 0.95) -> bool:
        """Would an ``n x n`` float64 matrix (plus workspace) fit in HBM?"""
        return 8.0 * n * n <= fill * self.hbm_total_gb * 1e9


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    node: NodeSpec = field(default_factory=NodeSpec)
    nnodes: int = 1
    inter_node_hop_latency_s: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ConfigError("cluster needs at least one node")

    def max_n(self, fill: float = 0.95) -> int:
        """Largest n whose matrix fits the cluster's total HBM."""
        total = self.nnodes * self.node.hbm_total_gb * 1e9 * fill
        return int((total / 8.0) ** 0.5)
