"""Hardware models of the Crusher/Frontier node (the simulated substrate).

We have no MI250X GPUs, Slingshot NICs, or 64-core EPYC sockets; these
modules model them analytically, calibrated to the numbers the paper
reports (49 TFLOPS DGEMM per MI250X at NB=512, 153 TFLOPS single node,
etc.).  The models answer one kind of question: *how long would this much
work / this much traffic take on that hardware?* -- and the discrete-event
timeline simulator (:mod:`repro.sched`) composes the answers according to
the paper's iteration DAGs.
"""

from .spec import (
    CPUSpec,
    ClusterSpec,
    GPUSpec,
    LinkSpec,
    NodeSpec,
)
from .frontier import crusher_node, crusher_cluster
from .gemm_model import dgemm_seconds, dgemm_tflops
from .cpu_model import fact_seconds, fact_gflops
from .comm_model import CommModel
from .transfer_model import transfer_seconds

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "LinkSpec",
    "NodeSpec",
    "ClusterSpec",
    "crusher_node",
    "crusher_cluster",
    "dgemm_tflops",
    "dgemm_seconds",
    "fact_seconds",
    "fact_gflops",
    "CommModel",
    "transfer_seconds",
]
