"""CPU panel-factorization performance model (the paper's Figure 5).

Models the tiled multi-threaded FACT of Section III.A factoring an
``M x NB`` panel with ``T`` threads:

* **Work**: ``M NB^2 - NB^3/3`` flops, executed at the per-core BLIS DGEMM
  rate discounted by a small-k efficiency (the recursion's inner updates
  have k <= NB) and by a cache factor when the working set spills L3.
* **Parallelism**: tiles are whole ``NB``-row blocks, so at most
  ``ceil(M / NB)`` threads can have work; threads beyond that idle -- this
  is what bends the high-thread curves down at small M in Fig. 5.  The
  first tile's triangle work is main-thread-only; we charge it as a serial
  ``NB^3/3`` term.
* **Synchronization**: each of the NB columns performs a tree reduction
  over threads for the pivot (``ceil(log2 T)`` hops) plus a row
  swap/broadcast of ``NB`` doubles through shared cache.

The model is intentionally few-parameter; the paper's Fig. 5 claims we
must reproduce are *shape* claims: multi-threading helps dramatically,
more cores keep helping at large M, and even small panels benefit from
many cores.
"""

from __future__ import annotations

import math

import numpy as np

from ..blas.kernels import flops_getrf
from .spec import CPUSpec

#: Efficiency of the recursion's small-k GEMMs relative to peak DGEMM.
#: Calibrated (with the triangle term below) against the paper's overall
#: 153-TFLOPS single-node score, whose tail regime is FACT-bound.
_PANEL_BLAS_EFF = 0.42
#: Serial (main-thread-only) fraction: the recursion triangle + pivot logic.
_TRIANGLE_EFF = 0.30


def fact_seconds(cpu: CPUSpec, m: int, nb: int, nthreads: int) -> float:
    """Wall seconds to factor an ``M x NB`` panel with ``T`` threads."""
    if m < nb:
        raise ValueError(f"panel must be at least NB tall: m={m}, nb={nb}")
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    ntiles = math.ceil(m / nb)
    t_eff = min(nthreads, ntiles)
    core_rate = cpu.core_dgemm_gflops * 1e9

    # Cache factor: the panel working set versus L3 (the paper notes the
    # FACT working set typically stays resident in the 64-core socket's
    # L3).  Once it spills, the blocked recursion streams the panel from
    # DDR at an arithmetic intensity of roughly NBMIN/8 ~ 2 flops/byte,
    # capping the achievable rate at ~2x the memory bandwidth.
    working_set = 8.0 * m * nb
    l3 = cpu.l3_mb * 1e6
    if working_set <= l3:
        cache = 1.0
    else:
        bw_rate = cpu.mem_bw_gbs * 1e9 * 2.0  # flops/s at 2 flops/byte
        compute_rate = t_eff * core_rate * _PANEL_BLAS_EFF
        cache = min(1.0, bw_rate / compute_rate)

    # Parallel bulk work (trailing updates across tiles).
    bulk = flops_getrf(m, nb) - flops_getrf(nb, nb)
    t_bulk = bulk / (t_eff * core_rate * _PANEL_BLAS_EFF * cache)
    # Serial triangle on the main thread.
    t_tri = flops_getrf(nb, nb) / (core_rate * _TRIANGLE_EFF)
    # Per-column synchronization: pivot tree reduce + row exchange.
    hops = math.ceil(math.log2(nthreads)) if nthreads > 1 else 0
    t_sync = nb * (
        cpu.col_overhead_s
        + hops * cpu.sync_latency_s
        + 8.0 * nb / (cpu.pivot_row_bw_gbs * 1e9)
    )
    return t_bulk + t_tri + t_sync


def fact_seconds_array(
    cpu: CPUSpec, m: np.ndarray, nb: np.ndarray, nthreads: int
) -> np.ndarray:
    """Batch :func:`fact_seconds` over aligned ``m``/``nb`` arrays.

    Performs the identical IEEE operation sequence per element as the
    scalar path (the only cubed quantities are integer-valued, where
    numpy's pow fast path is exact), so the fast ledger prices FACT
    bit-for-bit like the per-``k`` loop.  Every row must describe a
    valid panel (``m >= nb >= 1``); callers mask out iterations with no
    factorization before calling.
    """
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    m = np.asarray(m, dtype=np.float64)
    nb = np.asarray(nb, dtype=np.float64)
    if np.any(m < nb) or np.any(nb < 1):
        raise ValueError("every row must satisfy m >= nb >= 1")
    ntiles = np.ceil(m / nb)
    t_eff = np.minimum(float(nthreads), ntiles)
    core_rate = cpu.core_dgemm_gflops * 1e9

    working_set = 8.0 * m * nb
    l3 = cpu.l3_mb * 1e6
    bw_rate = cpu.mem_bw_gbs * 1e9 * 2.0
    compute_rate = t_eff * core_rate * _PANEL_BLAS_EFF
    cache = np.where(
        working_set <= l3, 1.0, np.minimum(1.0, bw_rate / compute_rate)
    )

    bulk = (m * nb * nb - nb**3 / 3.0) - (nb * nb * nb - nb**3 / 3.0)
    t_bulk = bulk / (t_eff * core_rate * _PANEL_BLAS_EFF * cache)
    t_tri = (nb * nb * nb - nb**3 / 3.0) / (core_rate * _TRIANGLE_EFF)
    hops = math.ceil(math.log2(nthreads)) if nthreads > 1 else 0
    t_sync = nb * (
        cpu.col_overhead_s
        + hops * cpu.sync_latency_s
        + 8.0 * nb / (cpu.pivot_row_bw_gbs * 1e9)
    )
    return t_bulk + t_tri + t_sync


def fact_gflops(cpu: CPUSpec, m: int, nb: int, nthreads: int) -> float:
    """Achieved GFLOP/s of the panel factorization (Fig. 5's y-axis)."""
    return flops_getrf(m, nb) / fact_seconds(cpu, m, nb, nthreads) / 1e9
