"""Node power model: HPL as a peak-power stress test.

The paper motivates HPL partly as a reliability/burn-in tool because it
"draws essentially the peak amount of power the system can use".  This
module prices a simulated run's energy: each device draws its busy power
while its resource is active in the timeline and idle power otherwise,
yielding total joules, mean node watts, and the GFLOPS/W figure of merit
(the Green500 metric).

Defaults follow public Crusher/Frontier numbers: 560 W per MI250X module
(280 W per GCD), a 280 W EPYC socket, and a few hundred watts of residual
node overhead (NICs, memory, fans), putting a busy node a little above
3 kW -- consistent with Frontier's ~52 GFLOPS/W HPL efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .spec import NodeSpec


@dataclass(frozen=True)
class PowerSpec:
    """Power draw of one node's components (watts)."""

    gpu_busy_w: float = 280.0  # per GCD, compute-saturated
    gpu_idle_w: float = 90.0  # per GCD, HBM refresh + fabric
    cpu_busy_w: float = 280.0  # socket at full FACT throughput
    cpu_idle_w: float = 95.0
    overhead_w: float = 450.0  # NICs, DIMMs, fans, VR losses

    def __post_init__(self) -> None:
        if self.gpu_busy_w < self.gpu_idle_w:
            raise ConfigError("GPU busy power below idle power")
        if self.cpu_busy_w < self.cpu_idle_w:
            raise ConfigError("CPU busy power below idle power")

    def node_peak_w(self, node: NodeSpec) -> float:
        """Draw with every device saturated."""
        return (
            node.gpus * self.gpu_busy_w + self.cpu_busy_w + self.overhead_w
        )

    def node_idle_w(self, node: NodeSpec) -> float:
        return node.gpus * self.gpu_idle_w + self.cpu_idle_w + self.overhead_w


@dataclass
class EnergyReport:
    """Energy accounting of one simulated run on one node type."""

    seconds: float
    node_count: int
    joules: float
    mean_node_w: float
    peak_node_w: float
    gflops_per_w: float
    components: dict[str, float] = field(default_factory=dict)  # joules by part

    @property
    def mean_total_w(self) -> float:
        return self.mean_node_w * self.node_count


def energy_of_run(
    report,
    node: NodeSpec,
    power: PowerSpec | None = None,
    node_count: int = 1,
) -> EnergyReport:
    """Price a :class:`~repro.perf.hplsim.RunReport`'s energy.

    The per-iteration breakdown gives GPU-active and CPU(FACT) seconds at
    the focal rank; in HPL's bulk-synchronous steady state every rank does
    the same work per iteration, so focal busy fractions stand for all
    devices of the node.
    """
    if power is None:
        power = PowerSpec()
    total = report.makespan
    if total <= 0:
        raise ConfigError("run has no duration")
    gpu_busy = sum(it.gpu_active for it in report.iterations)
    cpu_busy = sum(it.fact for it in report.iterations)
    gpu_busy = min(gpu_busy, total)
    cpu_busy = min(cpu_busy, total)

    gpus = node.gpus
    joules_gpu = gpus * (
        gpu_busy * power.gpu_busy_w + (total - gpu_busy) * power.gpu_idle_w
    )
    joules_cpu = cpu_busy * power.cpu_busy_w + (total - cpu_busy) * power.cpu_idle_w
    joules_overhead = total * power.overhead_w
    joules_node = joules_gpu + joules_cpu + joules_overhead
    joules = joules_node * node_count

    flops = report.cfg.total_flops
    return EnergyReport(
        seconds=total,
        node_count=node_count,
        joules=joules,
        mean_node_w=joules_node / total,
        peak_node_w=power.node_peak_w(node),
        gflops_per_w=flops / 1e9 / joules,
        components={
            "gpu": joules_gpu * node_count,
            "cpu": joules_cpu * node_count,
            "overhead": joules_overhead * node_count,
        },
    )
