"""DGEMM performance model for one GPU device.

HPL's update-phase DGEMMs have shape ``(m x n) += (m x k) @ (k x n)`` with
``k = NB``; their efficiency saturates in every extent.  We model the
achieved rate as a separable product of saturation terms::

    rate(m, n, k) = peak * eff_max * s(k; k_half) * s(min(m, n); mn_half)

with ``s(x; h) = x / (x + h)``.  The knees are calibrated so that NB=512
trailing updates on an MI250X GCD reach the paper's 24.5 TFLOPS (49 per
module), while small-``k`` or skinny updates degrade -- which is exactly
the trade the paper describes when choosing NB ("large enough that DGEMM
reaches a high percentage of peak, as small as possible for overlap").
"""

from __future__ import annotations

import numpy as np

from .spec import GPUSpec


def _saturation(x: float, half: float) -> float:
    if x <= 0:
        return 0.0
    return x / (x + half)


def dgemm_efficiency(gpu: GPUSpec, m: int, n: int, k: int) -> float:
    """Fraction of matrix-core peak achieved for an ``m x n x k`` DGEMM."""
    if min(m, n, k) <= 0:
        return 0.0
    return (
        gpu.gemm_eff_max
        * _saturation(float(k), gpu.gemm_k_half)
        * _saturation(float(min(m, n)), gpu.gemm_mn_half)
    )


def dgemm_tflops(gpu: GPUSpec, m: int, n: int, k: int) -> float:
    """Achieved TFLOP/s for an ``m x n x k`` DGEMM on one device."""
    return gpu.peak_fp64_matrix_tflops * dgemm_efficiency(gpu, m, n, k)


def dgemm_seconds(gpu: GPUSpec, m: int, n: int, k: int) -> float:
    """Wall time of an ``m x n x k`` DGEMM, including launch latency."""
    if min(m, n, k) <= 0:
        return 0.0
    rate = dgemm_tflops(gpu, m, n, k) * 1e12
    return gpu.kernel_latency_s + 2.0 * m * n * k / rate


def dtrsm_seconds(gpu: GPUSpec, m: int, n: int) -> float:
    """Triangular solve ``(m x m) \\ (m x n)``: modeled as a DGEMM of the
    same flop volume at the spec's ``trsm_eff`` relative efficiency
    (triangular kernels trail square ones in rocBLAS)."""
    if m <= 0 or n <= 0:
        return 0.0
    rate = gpu.trsm_eff * dgemm_tflops(gpu, m, n, m) * 1e12
    if rate <= 0:
        return gpu.kernel_latency_s
    return gpu.kernel_latency_s + float(m) * m * n / rate


def dgemm_seconds_array(
    gpu: GPUSpec, m: np.ndarray, n: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """Batch :func:`dgemm_seconds` over aligned extent arrays.

    Element-for-element this performs the identical IEEE operation
    sequence as the scalar path, so the fast ledger prices every
    iteration's DGEMM bit-for-bit like the per-``k`` loop does; the
    efficiency curve is evaluated once over the whole iteration axis
    instead of per call.
    """
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    mask = np.minimum(np.minimum(m, n), k) > 0
    eff = (
        gpu.gemm_eff_max
        * (k / (k + gpu.gemm_k_half))
        * (np.minimum(m, n) / (np.minimum(m, n) + gpu.gemm_mn_half))
    )
    rate = gpu.peak_fp64_matrix_tflops * eff * 1e12
    rate = np.where(mask, rate, 1.0)  # dummy divisor on masked lanes
    return np.where(mask, gpu.kernel_latency_s + 2.0 * m * n * k / rate, 0.0)


def dtrsm_seconds_array(gpu: GPUSpec, m: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Batch :func:`dtrsm_seconds`; same op order as the scalar path."""
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    mask = (m > 0) & (n > 0)
    eff = (
        gpu.gemm_eff_max
        * (m / (m + gpu.gemm_k_half))
        * (np.minimum(m, n) / (np.minimum(m, n) + gpu.gemm_mn_half))
    )
    rate = gpu.trsm_eff * (gpu.peak_fp64_matrix_tflops * eff) * 1e12
    safe = np.where(mask & (rate > 0), rate, 1.0)
    out = np.where(
        rate > 0, gpu.kernel_latency_s + m * m * n / safe, gpu.kernel_latency_s
    )
    return np.where(mask, out, 0.0)


def rowcopy_seconds_array(gpu: GPUSpec, nbytes: np.ndarray) -> np.ndarray:
    """Batch :func:`rowcopy_seconds`; same op order as the scalar path."""
    nbytes = np.asarray(nbytes, dtype=np.float64)
    return np.where(
        nbytes > 0,
        gpu.kernel_latency_s + 2.0 * nbytes / (gpu.rowswap_bw_gbs * 1e9),
        0.0,
    )


def rowcopy_seconds(gpu: GPUSpec, nbytes: float) -> float:
    """A gather/scatter kernel moving ``nbytes`` of rows (read+write).

    Row accesses are strided in the column-major local matrix, so the
    effective bandwidth is the spec's ``rowswap_bw_gbs``, not streaming
    HBM bandwidth.
    """
    if nbytes <= 0:
        return 0.0
    return gpu.kernel_latency_s + 2.0 * nbytes / (gpu.rowswap_bw_gbs * 1e9)
