"""Topology-aware communication cost model.

Maps the global ``P x Q`` process grid onto nodes (each node hosting a
``pl x ql`` node-local sub-grid, rocHPL's launch-wrapper convention) and
prices the collectives HPL issues, using the on-node Infinity Fabric link
for same-node peers and the NIC for off-node peers -- the two factors the
paper names when explaining why multi-node MPI time grows.

Costs are returned as *critical-path seconds at the focal rank* for
pipelined operations (a steady-state ring broadcast costs each rank one
receive plus one forward, not the whole ring), and as full completion time
for synchronous assemblies (allgatherv, allreduce), which is how the
timeline simulator consumes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import BcastVariant
from ..errors import ConfigError
from .spec import ClusterSpec, LinkSpec


def _link_seconds_array(link: LinkSpec, nbytes: np.ndarray) -> np.ndarray:
    """Elementwise :meth:`LinkSpec.seconds`, identical IEEE op order."""
    return link.latency_s + nbytes / (link.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class GridTopology:
    """Placement of a global grid onto cluster nodes.

    Nodes tile the grid in ``pl x ql`` blocks: grid coordinate
    ``(r, c)`` lives on node ``(r // pl) * ceil(Q/ql) + (c // ql)``.
    """

    p: int
    q: int
    pl: int
    ql: int

    def __post_init__(self) -> None:
        if self.p % self.pl or self.q % self.ql:
            raise ConfigError(
                f"node-local grid {self.pl}x{self.ql} does not tile {self.p}x{self.q}"
            )

    @property
    def nnodes(self) -> int:
        return (self.p // self.pl) * (self.q // self.ql)

    def node_of(self, row: int, col: int) -> int:
        return (row // self.pl) * (self.q // self.ql) + (col // self.ql)

    def same_node(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        return self.node_of(*a) == self.node_of(*b)

    def col_members(self, col: int) -> list[tuple[int, int]]:
        return [(r, col) for r in range(self.p)]

    def row_members(self, row: int) -> list[tuple[int, int]]:
        return [(row, c) for c in range(self.q)]


class CommModel:
    """Prices HPL's collectives on a :class:`GridTopology`."""

    def __init__(self, cluster: ClusterSpec, topo: GridTopology):
        if topo.nnodes > cluster.nnodes:
            raise ConfigError(
                f"grid needs {topo.nnodes} nodes, cluster has {cluster.nnodes}"
            )
        self.cluster = cluster
        self.topo = topo
        # Link structure depends only on membership, never on payload, so
        # full-machine sweeps (tens of thousands of iterations) cache it.
        self._ring_cache: dict[tuple, LinkSpec] = {}
        self._worst_cache: dict[tuple, LinkSpec] = {}
        self._peer_cache: dict[tuple, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def link(self, a: tuple[int, int], b: tuple[int, int]) -> LinkSpec:
        """The link between two grid members."""
        node = self.cluster.node
        return node.gpu_gpu if self.topo.same_node(a, b) else node.nic

    def _ring_link(self, members: list[tuple[int, int]]) -> LinkSpec:
        """The slowest neighbour-to-neighbour link around the ring."""
        key = tuple(members)
        cached = self._ring_cache.get(key)
        if cached is not None:
            return cached
        node = self.cluster.node
        worst = node.gpu_gpu
        k = len(members)
        for i in range(k):
            if not self.topo.same_node(members[i], members[(i + 1) % k]):
                worst = node.nic
                break
        self._ring_cache[key] = worst
        return worst

    def _ring_hop(self, members: list[tuple[int, int]], nbytes: float) -> float:
        """Cost of the worst single ring hop among ``members``."""
        return self._ring_link(members).seconds(nbytes)

    def _worst_link(self, members: list[tuple[int, int]]) -> LinkSpec:
        key = tuple(members)
        cached = self._worst_cache.get(key)
        if cached is not None:
            return cached
        node = self.cluster.node
        worst = node.gpu_gpu
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if not self.topo.same_node(a, b):
                    worst = node.nic
                    break
            if worst is node.nic:
                break
        self._worst_cache[key] = worst
        return worst

    # Public cached accessors (the fast ledger prices whole runs through
    # these, pulling each membership's link structure exactly once).
    def ring_link(self, members: list[tuple[int, int]]) -> LinkSpec:
        """Cached worst neighbour-to-neighbour ring link for ``members``."""
        return self._ring_link(members)

    def worst_link(self, members: list[tuple[int, int]]) -> LinkSpec:
        """Cached worst pairwise link among ``members``."""
        return self._worst_link(members)

    def peer_split(
        self, root: tuple[int, int], members: list[tuple[int, int]]
    ) -> tuple[int, int]:
        """Cached (on-node, off-node) peer counts from ``root``."""
        return self._peer_split(root, members)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def bcast_seconds(
        self, members: list[tuple[int, int]], nbytes: float, algo: BcastVariant
    ) -> float:
        """Per-iteration LBCAST cost at a participating rank.

        Ring variants pipeline across iterations: a rank's steady-state
        cost is one receive plus one forward.  The two-ring variants halve
        the forwarded volume's path length (two rings run concurrently),
        modeled as a single hop pair on the worst ring link.  ``blong``
        pays scatter + ring-allgather on ``nbytes``.  The binomial tree is
        latency-optimal but keeps every rank busy for ``log2 Q`` hops.
        """
        k = len(members)
        if k <= 1 or nbytes <= 0:
            return 0.0
        hop = self._ring_hop(members, nbytes)
        if algo in (BcastVariant.ONE_RING, BcastVariant.ONE_RING_M):
            return 2.0 * hop
        if algo in (BcastVariant.TWO_RING, BcastVariant.TWO_RING_M):
            return 2.0 * hop  # same per-rank traffic; shorter worst path
        if algo is BcastVariant.BLONG:
            chunk = nbytes / k
            scatter = self._worst_link(members).seconds(chunk)
            gather = (k - 1) * self._ring_hop(members, chunk)
            return scatter + gather
        if algo is BcastVariant.BINOMIAL:
            return math.ceil(math.log2(k)) * self._worst_link(members).seconds(nbytes)
        raise ConfigError(f"unknown bcast variant {algo}")

    def allreduce_seconds(
        self, members: list[tuple[int, int]], nbytes: float,
        per_hop_overhead: float = 0.0,
    ) -> float:
        """Recursive-doubling allreduce: ``ceil(log2 k)`` exchange rounds.

        ``per_hop_overhead`` adds a fixed software cost per round -- the
        FACT pivot collectives stage through host memory and pay MPI
        progression latency on top of the wire.
        """
        k = len(members)
        if k <= 1:
            return 0.0
        link = self._worst_link(members)
        return math.ceil(math.log2(k)) * (link.seconds(nbytes) + per_hop_overhead)

    def allgatherv_seconds(
        self, members: list[tuple[int, int]], total_bytes: float
    ) -> float:
        """Ring allgatherv assembling ``total_bytes``: ``k-1`` chunk hops."""
        k = len(members)
        if k <= 1 or total_bytes <= 0:
            return 0.0
        chunk = total_bytes / k
        return (k - 1) * self._ring_hop(members, chunk)

    def binexch_allgather_seconds(
        self, members: list[tuple[int, int]], total_bytes: float
    ) -> float:
        """Binary-exchange U assembly: ``ceil(log2 k)`` pairwise rounds.

        Following HPL's own cost model for SWAP=binary-exchange, each
        round exchanges on the order of the full U payload, so the
        algorithm is latency-optimal (few rounds) but not
        bandwidth-reducing -- which is exactly why HPL's MIX policy uses
        it only below a width threshold.
        """
        k = len(members)
        if k <= 1 or total_bytes <= 0:
            return 0.0
        link = self._worst_link(members)
        rounds = math.ceil(math.log2(k))
        return rounds * link.seconds(total_bytes)

    def _peer_split(
        self, root: tuple[int, int], members: list[tuple[int, int]]
    ) -> tuple[int, int]:
        """(on-node, off-node) peer counts from ``root`` (cached)."""
        key = (root, tuple(members))
        cached = self._peer_cache.get(key)
        if cached is not None:
            return cached
        on = sum(
            1 for m in members if m != root and self.topo.same_node(root, m)
        )
        off = len(members) - 1 - on
        self._peer_cache[key] = (on, off)
        return on, off

    def scatterv_seconds(
        self,
        root: tuple[int, int],
        members: list[tuple[int, int]],
        total_bytes: float,
    ) -> float:
        """Root-serialized scatterv of ``total_bytes`` spread over peers."""
        k = len(members)
        if k <= 1 or total_bytes <= 0:
            return 0.0
        per_peer = total_bytes / (k - 1)
        on, off = self._peer_split(root, members)
        node = self.cluster.node
        return on * node.gpu_gpu.seconds(per_peer) + off * node.nic.seconds(
            per_peer
        )

    def p2p_seconds(
        self, a: tuple[int, int], b: tuple[int, int], nbytes: float
    ) -> float:
        """One point-to-point message."""
        return self.link(a, b).seconds(nbytes)

    # ------------------------------------------------------------------
    # Batch collectives: one membership, an array of payloads.
    #
    # Each mirrors its scalar twin's IEEE operation sequence element for
    # element (same guards, same association), so the vectorized ledger
    # prices a whole run bit-for-bit like the per-iteration loop while
    # resolving the membership's link structure only once.
    # ------------------------------------------------------------------
    def bcast_seconds_array(
        self,
        members: list[tuple[int, int]],
        nbytes: np.ndarray,
        algo: BcastVariant,
    ) -> np.ndarray:
        """Batch :meth:`bcast_seconds` for one membership."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        k = len(members)
        if k <= 1:
            return np.zeros_like(nbytes)
        active = nbytes > 0
        ring = self._ring_link(members)
        if algo in (
            BcastVariant.ONE_RING,
            BcastVariant.ONE_RING_M,
            BcastVariant.TWO_RING,
            BcastVariant.TWO_RING_M,
        ):
            out = 2.0 * _link_seconds_array(ring, nbytes)
        elif algo is BcastVariant.BLONG:
            chunk = nbytes / k
            scatter = _link_seconds_array(self._worst_link(members), chunk)
            gather = (k - 1) * _link_seconds_array(ring, chunk)
            out = scatter + gather
        elif algo is BcastVariant.BINOMIAL:
            out = math.ceil(math.log2(k)) * _link_seconds_array(
                self._worst_link(members), nbytes
            )
        else:
            raise ConfigError(f"unknown bcast variant {algo}")
        return np.where(active, out, 0.0)

    def allreduce_seconds_array(
        self,
        members: list[tuple[int, int]],
        nbytes: np.ndarray,
        per_hop_overhead: float = 0.0,
    ) -> np.ndarray:
        """Batch :meth:`allreduce_seconds` for one membership."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        k = len(members)
        if k <= 1:
            return np.zeros_like(nbytes)
        link = self._worst_link(members)
        return math.ceil(math.log2(k)) * (
            _link_seconds_array(link, nbytes) + per_hop_overhead
        )

    def allgatherv_seconds_array(
        self, members: list[tuple[int, int]], total_bytes: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`allgatherv_seconds` for one membership."""
        total_bytes = np.asarray(total_bytes, dtype=np.float64)
        k = len(members)
        if k <= 1:
            return np.zeros_like(total_bytes)
        chunk = total_bytes / k
        out = (k - 1) * _link_seconds_array(self._ring_link(members), chunk)
        return np.where(total_bytes > 0, out, 0.0)

    def binexch_allgather_seconds_array(
        self, members: list[tuple[int, int]], total_bytes: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`binexch_allgather_seconds` for one membership."""
        total_bytes = np.asarray(total_bytes, dtype=np.float64)
        k = len(members)
        if k <= 1:
            return np.zeros_like(total_bytes)
        link = self._worst_link(members)
        rounds = math.ceil(math.log2(k))
        out = rounds * _link_seconds_array(link, total_bytes)
        return np.where(total_bytes > 0, out, 0.0)

    def scatterv_seconds_array(
        self,
        root: tuple[int, int],
        members: list[tuple[int, int]],
        total_bytes: np.ndarray,
    ) -> np.ndarray:
        """Batch :meth:`scatterv_seconds` for one membership."""
        total_bytes = np.asarray(total_bytes, dtype=np.float64)
        k = len(members)
        if k <= 1:
            return np.zeros_like(total_bytes)
        per_peer = total_bytes / (k - 1)
        on, off = self._peer_split(root, members)
        node = self.cluster.node
        out = on * _link_seconds_array(node.gpu_gpu, per_peer) + off * (
            _link_seconds_array(node.nic, per_peer)
        )
        return np.where(total_bytes > 0, out, 0.0)
