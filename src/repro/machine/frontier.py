"""Crusher / Frontier presets, calibrated to the paper's reported numbers.

One Crusher node (HPE Cray EX, per the paper's Section IV and the Crusher
quick-start guide):

* 1x 64-core "optimized 3rd Gen EPYC" (Trento), 8 CCDs;
* 4x MI250X, each two GCDs => 8 GPU devices of 64 GB HBM2e each;
* GCDs linked by Infinity Fabric on node, CPU attached by Infinity Fabric
  (36 GB/s per direction per GCD);
* 4x HPE Slingshot 200 Gb/s NICs, one per MI250X => 25 GB/s line rate per
  GCD pair, ~23 GB/s effective per GCD used here.

Calibration anchors from the paper:

* DGEMM at NB=512 achieves **49 TFLOPS per MI250X** (24.5 per GCD) -- the
  ``gemm_eff_max``/``gemm_k_half`` defaults in :class:`GPUSpec` hit this;
* the achievable single-node ceiling is ``4 x 49 = 196`` TFLOPS;
* the full N=256,000 run scores **~153 TFLOPS** (78 % of the ceiling).
"""

from __future__ import annotations

from .spec import ClusterSpec, CPUSpec, GPUSpec, LinkSpec, NodeSpec

#: The paper's single-node problem size (fills HBM with workspace).
CRUSHER_SINGLE_NODE_N = 256_000
#: The paper's blocking factor for Frontier-class nodes.
CRUSHER_NB = 512
#: Frontier's June-2022 Top500 configuration: 9408 compute nodes.
FRONTIER_NODES = 9408
#: Frontier's June-2022 HPL score (the 1.102 ExaFLOPS debut), in TFLOPS.
FRONTIER_TOP500_TFLOPS = 1_102_000.0


def crusher_node() -> NodeSpec:
    """One Crusher node with the calibrated defaults."""
    return NodeSpec(
        cpu=CPUSpec(
            cores=64,
            ccds=8,
            core_dgemm_gflops=27.0,
            l3_mb=256.0,
            mem_bw_gbs=205.0,
        ),
        gpu=GPUSpec(
            name="MI250X GCD",
            peak_fp64_matrix_tflops=47.9,
            hbm_gb=64.0,
            hbm_bw_gbs=1600.0,
        ),
        gpus=8,
        h2d=LinkSpec(36.0, 8e-6),
        d2h=LinkSpec(36.0, 8e-6),
        gpu_gpu=LinkSpec(50.0, 2e-6),
        nic=LinkSpec(23.0, 4e-6),
    )


def crusher_cluster(nnodes: int = 1) -> ClusterSpec:
    """``nnodes`` Crusher nodes on Slingshot."""
    return ClusterSpec(node=crusher_node(), nnodes=nnodes)


def frontier_cluster(nnodes: int = FRONTIER_NODES) -> ClusterSpec:
    """The full Frontier system (same node architecture as Crusher).

    The model carries no dragonfly-topology congestion effects, which the
    paper itself flags as the open problem beyond 128 nodes, so
    full-machine estimates are optimistic bounds rather than predictions.
    """
    return ClusterSpec(node=crusher_node(), nnodes=nnodes)
