"""Host-device transfer model.

Each iteration the factoring column ships the look-ahead columns to the
host for FACT and the factored panel back (paper Fig. 3's "transfer"
bands).  Pure alpha-beta over the per-device host link.
"""

from __future__ import annotations

import numpy as np

from .spec import LinkSpec, NodeSpec


def transfer_seconds(link: LinkSpec, nbytes: float) -> float:
    """Seconds to move ``nbytes`` across one host-device link."""
    if nbytes <= 0:
        return 0.0
    return link.seconds(nbytes)


def transfer_seconds_array(link: LinkSpec, nbytes: np.ndarray) -> np.ndarray:
    """Batch :func:`transfer_seconds`; same IEEE op order as the scalar path."""
    nbytes = np.asarray(nbytes, dtype=np.float64)
    return np.where(
        nbytes > 0,
        link.latency_s + nbytes / (link.bandwidth_gbs * 1e9),
        0.0,
    )


def panel_roundtrip_seconds(node: NodeSpec, m_local: int, nb: int) -> float:
    """D2H of the updated look-ahead panel plus H2D of the factored panel."""
    nbytes = 8.0 * m_local * nb
    return transfer_seconds(node.d2h, nbytes) + transfer_seconds(node.h2d, nbytes)
