"""The HPL residual acceptance test.

HPL accepts a solve when::

    ||A x - b||_oo
    ------------------------------------------  <  threshold (16.0)
    eps * (||A||_oo ||x||_oo + ||b||_oo) * n

computed against the *original* matrix.  Because the generator is
jump-ahead reproducible, each rank regenerates its original local piece
instead of keeping a copy -- the same trick HPL itself uses -- so
verification costs no extra memory.

The matrix-vector product is distributed: each rank multiplies its local
block by the matching slice of ``x``, partial products are summed across
process rows, and the infinity norms are max-reduced grid-wide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matrix import DistMatrix
from . import rng

#: HPL's pass/fail threshold on the scaled residual.
THRESHOLD = 16.0


@dataclass(frozen=True)
class Verification:
    """Result of the residual test (identical on every rank)."""

    resid: float
    norm_a: float
    norm_b: float
    norm_x: float
    passed: bool


def _regenerate_local(mat: DistMatrix) -> np.ndarray:
    """This rank's original local piece (columns of A only, no RHS)."""
    ncols = int(np.searchsorted(mat.col_pos, mat.n))
    orig = np.zeros((mat.mloc, ncols), order="F")
    for lc in range(ncols):
        gc = int(mat.col_pos[lc])
        lr = 0
        while lr < mat.mloc:
            grow0 = int(mat.row_pos[lr])
            run = min(mat.nb - (grow0 % mat.nb), mat.mloc - lr)
            orig[lr : lr + run, lc] = rng.random_values(
                mat.seed, gc * mat.n + grow0, run
            )
            lr += run
    return orig


def verify(mat: DistMatrix, x: np.ndarray) -> Verification:
    """Run the acceptance test; collective over the grid communicator."""
    grid, n = mat.grid, mat.n
    comm = grid.comm
    orig = _regenerate_local(mat)
    ncols = orig.shape[1]
    x_local = x[mat.col_pos[:ncols]]

    # r = A x - b on the local rows: sum partials across the process row.
    partial = orig @ x_local if ncols else np.zeros(mat.mloc)
    row_sum = grid.row_comm.allreduce(partial, op="sum")
    # regenerate b rows for this rank (row-distributed, same for all columns)
    b_rows = np.zeros(mat.mloc)
    lr = 0
    while lr < mat.mloc:
        grow0 = int(mat.row_pos[lr])
        run = min(mat.nb - (grow0 % mat.nb), mat.mloc - lr)
        b_rows[lr : lr + run] = rng.random_values(mat.seed, n * n + grow0, run)
        lr += run
    resid_local = float(np.max(np.abs(row_sum - b_rows))) if mat.mloc else 0.0

    # ||A||_oo: local row sums -> sum across the row -> max grid-wide.
    local_rowsum = np.abs(orig).sum(axis=1) if ncols else np.zeros(mat.mloc)
    full_rowsum = grid.row_comm.allreduce(local_rowsum, op="sum")
    norm_a_local = float(np.max(full_rowsum)) if mat.mloc else 0.0

    norm_b_local = float(np.max(np.abs(b_rows))) if mat.mloc else 0.0
    resid_inf = comm.allreduce(resid_local, op="max")
    norm_a = comm.allreduce(norm_a_local, op="max")
    norm_b = comm.allreduce(norm_b_local, op="max")
    norm_x = float(np.max(np.abs(x)))

    eps = float(np.finfo(np.float64).eps)
    denom = eps * (norm_a * norm_x + norm_b) * n
    resid = resid_inf / denom if denom > 0 else np.inf
    return Verification(
        resid=resid,
        norm_a=norm_a,
        norm_b=norm_b,
        norm_x=norm_x,
        passed=bool(resid < THRESHOLD),
    )
