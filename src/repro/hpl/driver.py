"""The HPL factorization loop: classic, look-ahead, and split-update.

All three schedules compute *the same factorization* (same pivots, same
factors -- the tests assert this); they differ only in the order phases are
issued, which is what determines how much communication the paper's
hardware could hide:

* ``CLASSIC`` -- fact, bcast, swap, update, strictly in sequence.  On real
  hardware the GPU idles during FACT/LBCAST/RS.
* ``LOOKAHEAD`` (Fig. 3) -- the trailing update is split so the *next*
  panel's columns are updated first and handed to FACT, whose work (and
  the subsequent LBCAST) then overlaps the rest of the update.  RS remains
  exposed.
* ``SPLIT_UPDATE`` (Fig. 6) -- additionally splits the local columns into
  a shrinking *left* and fixed-width *right* section.  Each section's
  row-swap communication is hidden under the other section's update:
  RS1 under UPDATE2, and RS2 -- communicated one iteration early, scattered
  back at the start of the next -- under UPDATE1.

The numeric engine is single-threaded per rank, so "hiding" is a statement
about issue order, not wall time; the issue order here is mirrored by the
task DAGs in :mod:`repro.sched.timeline`, which is where the paper's
timelines are actually simulated.  What this module guarantees is that the
reordered schedules are *numerically valid* -- every value is produced
before it is consumed -- which is the property the paper's Section III.C
argues informally and our tests check mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..blas.threaded import TileWorkerPool
from ..config import HPLConfig, Schedule, SwapVariant
from ..errors import ConfigError
from ..grid.block_cyclic import owning_process
from .lbcast import broadcast_panel
from .matrix import DistMatrix
from .panel import Panel
from .pfact import factor_panel
from .rowswap import RowSwapper, compute_swap_plan
from .timers import Timers
from .update import apply_update, solve_u, trailing_dgemm


@dataclass
class FactorResult:
    """Outcome of the factorization loop on one rank."""

    timers: Timers
    ipiv: list[np.ndarray] = field(default_factory=list)  # per-panel pivots
    modes: list[str] = field(default_factory=list)  # per-iteration DAG shape


def _panel_width(n: int, nb: int, k: int) -> tuple[int, int]:
    j0 = k * nb
    return j0, min(nb, n - j0)


def _fact_and_bcast(
    mat: DistMatrix, cfg: HPLConfig, pool: TileWorkerPool, k: int, timers: Timers
) -> Panel:
    """FACT on the owning column (plus the synthetic host transfers),
    then LBCAST along the process row."""
    grid = mat.grid
    j0, jb = _panel_width(mat.n, cfg.nb, k)
    pcol = owning_process(j0, cfg.nb, grid.q)
    panel: Panel | None = None
    if grid.mycol == pcol:
        lr0 = mat.local_rows_from(j0)
        lc0 = mat.local_cols_from(j0)
        view = mat.a[lr0:, lc0 : lc0 + jb]
        pos = mat.row_pos[lr0:]
        # The D2H/H2D transfers that bracket FACT on the paper's hardware.
        timers.transfer(d2h_bytes=8.0 * view.shape[0] * jb)
        with timers.phase("FACT"):
            panel = factor_panel(
                grid.col_comm, view, pos, k, j0, jb, cfg, pool, grid.myrow, grid.p
            )
        timers.transfer(h2d_bytes=8.0 * view.shape[0] * jb)
    with timers.phase("LBCAST"):
        panel = broadcast_panel(grid.row_comm, panel, pcol, cfg.bcast)
    return panel


def swap_algo(cfg: HPLConfig, width: int) -> str:
    """Pick the SWAP algorithm for a section of ``width`` local columns.

    ``MIX`` follows HPL.dat semantics: binary exchange below the
    threshold, spread-roll above it.
    """
    if cfg.swap is SwapVariant.LONG:
        return "long"
    if cfg.swap is SwapVariant.BINEXCH:
        return "binexch"
    return "binexch" if width <= cfg.swap_threshold else "long"


def _full_swap(
    mat: DistMatrix,
    cfg: HPLConfig,
    plan,
    col_lo: int,
    col_hi: int,
    timers: Timers,
    phase: str = "RS",
) -> RowSwapper:
    """gather + communicate + scatter_back for one section."""
    sw = RowSwapper(
        mat, plan, col_lo, col_hi, phase=phase,
        algo=swap_algo(cfg, col_hi - col_lo),
    )
    with timers.phase(phase):
        sw.gather()
        sw.communicate()
        sw.scatter_back()
    return sw


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def _run_classic(
    mat: DistMatrix, cfg: HPLConfig, pool: TileWorkerPool, timers: Timers
) -> FactorResult:
    result = FactorResult(timers)
    for k in range(cfg.nblocks):
        j0, jb = _panel_width(mat.n, cfg.nb, k)
        result.modes.append("classic")
        with timers.iteration(k):
            panel = _fact_and_bcast(mat, cfg, pool, k, timers)
            result.ipiv.append(panel.ipiv)
            plan = compute_swap_plan(panel.ipiv, j0, jb)
            lo = mat.local_cols_from(j0 + jb)
            sw = _full_swap(mat, cfg, plan, lo, mat.nloc_aug, timers)
            with timers.phase("UPDATE"):
                apply_update(mat, panel, sw, lo, mat.nloc_aug)
    return result


def _run_lookahead(
    mat: DistMatrix, cfg: HPLConfig, pool: TileWorkerPool, timers: Timers
) -> FactorResult:
    """Fig. 3: update the next panel's columns first, FACT them, then
    finish the update while (on real hardware) LBCAST streams."""
    result = FactorResult(timers)
    with timers.iteration(-1):
        panel = _fact_and_bcast(mat, cfg, pool, 0, timers)
    for k in range(cfg.nblocks):
        j0, jb = _panel_width(mat.n, cfg.nb, k)
        result.ipiv.append(panel.ipiv)
        result.modes.append("lookahead")
        with timers.iteration(k):
            plan = compute_swap_plan(panel.ipiv, j0, jb)
            lo = mat.local_cols_from(j0 + jb)
            has_next = k + 1 < cfg.nblocks
            if has_next:
                j0n, jbn = _panel_width(mat.n, cfg.nb, k + 1)
                la_hi = mat.local_cols_from(j0n + jbn)
            else:
                la_hi = lo
            # look-ahead section: swap + update, then FACT the next panel
            sw_la = _full_swap(mat, cfg, plan, lo, la_hi, timers)
            with timers.phase("UPDATE"):
                apply_update(mat, panel, sw_la, lo, la_hi)
            next_panel = (
                _fact_and_bcast(mat, cfg, pool, k + 1, timers) if has_next else None
            )
            # remainder of the trailing matrix
            sw = _full_swap(mat, cfg, plan, la_hi, mat.nloc_aug, timers)
            with timers.phase("UPDATE"):
                apply_update(mat, panel, sw, la_hi, mat.nloc_aug)
            if has_next:
                panel = next_panel
    return result


def _run_split(
    mat: DistMatrix, cfg: HPLConfig, pool: TileWorkerPool, timers: Timers
) -> FactorResult:
    """Fig. 6: look-ahead plus the left/right split update.

    The right section's width ``n2`` is fixed (``split_fraction`` of the
    initial local columns, aligned down to a block boundary); the left
    section shrinks as the factorization advances.  The right section's
    row swap for panel ``k+1`` is *communicated* during iteration ``k``
    (after UPDATE2, hidden by UPDATE1 on hardware) and *scattered back* at
    the start of iteration ``k+1``.  Once the left section is exhausted,
    iterations fall back to the plain look-ahead form, exactly as the
    paper describes.
    """
    result = FactorResult(timers)
    nloc = mat.nloc_aug
    n2 = int(round(cfg.split_fraction * nloc))
    sp = ((nloc - n2) // cfg.nb) * cfg.nb  # left/right boundary, block-aligned
    sp = max(0, min(nloc, sp))

    with timers.iteration(-1):
        panel = _fact_and_bcast(mat, cfg, pool, 0, timers)
    pending: RowSwapper | None = None  # RS2 communicated, not yet scattered

    for k in range(cfg.nblocks):
        j0, jb = _panel_width(mat.n, cfg.nb, k)
        result.ipiv.append(panel.ipiv)
        lo = mat.local_cols_from(j0 + jb)
        has_next = k + 1 < cfg.nblocks
        result.modes.append("split" if lo < sp else "lookahead")
        with timers.iteration(k):
            plan = compute_swap_plan(panel.ipiv, j0, jb)
            if lo >= sp:
                # ---- fallback: plain look-ahead over what remains ----
                if pending is not None:
                    # RS for panel k was already communicated (full right
                    # section == full remaining trailing matrix).
                    with timers.phase("RS"):
                        pending.scatter_back()
                    with timers.phase("UPDATE"):
                        u = pending.u
                        solve_u(panel, u)
                        pending.store_u(u)
                    full_u = pending
                    pending = None
                else:
                    full_u = _full_swap(mat, cfg, plan, lo, nloc, timers)
                    with timers.phase("UPDATE"):
                        u = full_u.u
                        solve_u(panel, u)
                        full_u.store_u(u)
                if has_next:
                    j0n, jbn = _panel_width(mat.n, cfg.nb, k + 1)
                    la_hi = mat.local_cols_from(j0n + jbn)
                else:
                    la_hi = lo
                # look-ahead: update la columns, FACT next, update the rest
                u = full_u.u
                with timers.phase("UPDATE"):
                    trailing_dgemm(mat, panel, u[:, : la_hi - lo], lo, la_hi)
                next_panel = (
                    _fact_and_bcast(mat, cfg, pool, k + 1, timers) if has_next else None
                )
                with timers.phase("UPDATE"):
                    trailing_dgemm(mat, panel, u[:, la_hi - lo :], la_hi, nloc)
                if has_next:
                    panel = next_panel
                continue

            # ---- split-update iteration (left section nonempty) ----
            # 1. finish RS2 for panel k on the right section
            if pending is not None:
                with timers.phase("RS"):
                    pending.scatter_back()
                with timers.phase("UPDATE"):
                    u2 = pending.u
                    solve_u(panel, u2)
                    pending.store_u(u2)
                s2 = pending
                pending = None
            else:
                s2 = _full_swap(mat, cfg, plan, sp, nloc, timers, phase="RS")
                with timers.phase("UPDATE"):
                    u2 = s2.u
                    solve_u(panel, u2)
                    s2.store_u(u2)
            # 2. look-ahead section: swap, update, then FACT next panel
            if has_next:
                j0n, jbn = _panel_width(mat.n, cfg.nb, k + 1)
                la_hi = mat.local_cols_from(j0n + jbn)
            else:
                la_hi = lo
            sw_la = _full_swap(mat, cfg, plan, lo, la_hi, timers)
            with timers.phase("UPDATE"):
                apply_update(mat, panel, sw_la, lo, la_hi)
            next_panel = (
                _fact_and_bcast(mat, cfg, pool, k + 1, timers) if has_next else None
            )
            # 3. RS1: left section swap (hidden under UPDATE2 on hardware)
            sw1 = _full_swap(mat, cfg, plan, la_hi, sp, timers)
            with timers.phase("UPDATE"):
                u1 = sw1.u
                solve_u(panel, u1)
                sw1.store_u(u1)
            # 4. UPDATE2: the right section's trailing DGEMM
            with timers.phase("UPDATE"):
                trailing_dgemm(mat, panel, u2, sp, nloc)
            # 5. RS2 for panel k+1: gather + communicate only
            if has_next:
                plan_next = compute_swap_plan(next_panel.ipiv, j0n, jbn)
                pending = RowSwapper(
                    mat, plan_next, sp, nloc, phase="RS",
                    algo=swap_algo(cfg, nloc - sp),
                )
                with timers.phase("RS"):
                    pending.gather()
                    pending.communicate()
            # 6. UPDATE1: the left section's trailing DGEMM
            with timers.phase("UPDATE"):
                trailing_dgemm(mat, panel, u1, la_hi, sp)
            if has_next:
                panel = next_panel
    return result


_SCHEDULES = {
    Schedule.CLASSIC: _run_classic,
    Schedule.LOOKAHEAD: _run_lookahead,
    Schedule.SPLIT_UPDATE: _run_split,
}


def factorize(
    mat: DistMatrix, cfg: HPLConfig, pool: TileWorkerPool | None = None
) -> FactorResult:
    """Run the configured schedule; collective over the grid.

    On return ``mat.a`` holds the factorization (U on/above the global
    diagonal, L multipliers below) and the fully-updated RHS.
    """
    if mat.n != cfg.n or mat.nb != cfg.nb:
        raise ConfigError(
            f"matrix (n={mat.n}, nb={mat.nb}) does not match config "
            f"(n={cfg.n}, nb={cfg.nb})"
        )
    timers = Timers()
    own_pool = pool is None
    if own_pool:
        pool = TileWorkerPool(cfg.fact_threads)
    try:
        return _SCHEDULES[cfg.schedule](mat, cfg, pool, timers)
    finally:
        if own_pool:
            pool.shutdown()
