"""The distributed augmented matrix ``[A | b]``.

The global ``n x (n+1)`` augmented system is a pure function of
``(n, seed)``: element ``(i, j)`` is stream element ``j*n + i`` of the
jump-ahead LCG (column-major enumeration, the RHS being column ``n``).
Each rank materializes exactly its block-cyclic local piece, stored
Fortran-ordered so that column slices -- which is all HPL ever takes -- are
contiguous.
"""

from __future__ import annotations

import numpy as np

from ..grid.block_cyclic import local_indices, num_local_before, numroc
from ..grid.process_grid import ProcessGrid
from . import rng


def generate_global(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Serial reference: the full ``(A, b)`` for small-n ground truth."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    flat = rng.random_values(seed, 0, n * (n + 1))
    aug = flat.reshape((n, n + 1), order="F")
    return np.asfortranarray(aug[:, :n]), aug[:, n].copy()


class DistMatrix:
    """One rank's local piece of the augmented system.

    Attributes:
        grid: The process grid this piece lives on.
        n: Global matrix dimension.
        nb: Distribution blocking factor.
        seed: Generator seed.
        a: Local storage, ``(mloc, nloc_aug)`` Fortran-ordered; column
            ``nloc_aug - 1`` holds this rank's piece of ``b`` iff this
            rank's grid column owns global column ``n``.
        row_pos: Global row index of each local row (ascending).
        col_pos: Global column index of each local column (ascending,
            over the augmented ``n+1`` column domain).
    """

    def __init__(self, grid: ProcessGrid, n: int, nb: int, seed: int = 42):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if nb < 1:
            raise ValueError(f"nb must be >= 1, got {nb}")
        self.grid = grid
        self.n = n
        self.nb = nb
        self.seed = seed
        self.mloc = numroc(n, nb, grid.myrow, grid.p)
        self.nloc_aug = numroc(n + 1, nb, grid.mycol, grid.q)
        self.row_pos = local_indices(n, nb, grid.myrow, grid.p)
        self.col_pos = local_indices(n + 1, nb, grid.mycol, grid.q)
        self.a = np.zeros((self.mloc, self.nloc_aug), order="F")
        self._generate()

    def _generate(self) -> None:
        """Fill local storage from the global stream, block by block.

        Local rows come in globally-contiguous ``nb``-row runs, so each
        (local column, row block) pair is one contiguous stream segment.
        """
        n, nb = self.n, self.nb
        for lc in range(self.nloc_aug):
            gc = int(self.col_pos[lc])
            lr = 0
            while lr < self.mloc:
                run = min(nb - (int(self.row_pos[lr]) % nb), self.mloc - lr)
                # clip the run to stay globally contiguous
                grow0 = int(self.row_pos[lr])
                run = min(run, n - grow0)
                self.a[lr : lr + run, lc] = rng.random_values(
                    self.seed, gc * n + grow0, run
                )
                lr += run

    # ------------------------------------------------------------------
    # Index helpers bound to this matrix's distribution
    # ------------------------------------------------------------------
    def local_row_of(self, gpos: int) -> int:
        """Local row index of global row ``gpos`` (must be locally owned)."""
        return num_local_before(gpos, self.nb, self.grid.myrow, self.grid.p)

    def local_rows_from(self, gpos: int) -> int:
        """First local row whose global position is ``>= gpos``."""
        return num_local_before(gpos, self.nb, self.grid.myrow, self.grid.p)

    def local_cols_from(self, gcol: int) -> int:
        """First local column whose global position is ``>= gcol``."""
        return num_local_before(gcol, self.nb, self.grid.mycol, self.grid.q)

    # ------------------------------------------------------------------
    # Test/debug support
    # ------------------------------------------------------------------
    def gather_global(self) -> np.ndarray | None:
        """Assemble the full augmented matrix on grid rank 0 (tests only)."""
        payload = (self.row_pos, self.col_pos, self.a)
        pieces = self.grid.comm.gather(payload, root=0)
        if pieces is None:
            return None
        full = np.zeros((self.n, self.n + 1), order="F")
        for rows, cols, block in pieces:
            full[np.ix_(rows, cols)] = block
        return full
