"""Per-iteration phase instrumentation (the measured side of Fig. 7).

rocHPL records, on the process owning the current diagonal panel, the time
per iteration spent in FACT, in MPI, and in host-device transfer, plus the
GPU active time.  Our numeric engine is not the paper's hardware, so wall
times here are only diagnostics -- but the *flop and byte counts* recorded
per phase are exact, and the performance model consumes exactly those
counts.  The integration tests cross-check these measured ledgers against
the analytic ones in :mod:`repro.perf.ledger`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Iterator

from ..blas.kernels import FLOPS


@dataclass
class PhaseRecord:
    """One phase's accounting within one iteration."""

    seconds: float = 0.0
    flops: float = 0.0
    d2h_bytes: float = 0.0
    h2d_bytes: float = 0.0

    def __iadd__(self, other: "PhaseRecord") -> "PhaseRecord":
        self.seconds += other.seconds
        self.flops += other.flops
        self.d2h_bytes += other.d2h_bytes
        self.h2d_bytes += other.h2d_bytes
        return self


@dataclass
class IterLedger:
    """All phases of one iteration, keyed by phase label."""

    k: int
    phases: dict[str, PhaseRecord] = field(default_factory=dict)

    def get(self, label: str) -> PhaseRecord:
        rec = self.phases.get(label)
        if rec is None:
            rec = self.phases[label] = PhaseRecord()
        return rec


class Timers:
    """Accumulates :class:`IterLedger` records for one rank's run."""

    def __init__(self) -> None:
        self.iters: list[IterLedger] = []
        self._current: IterLedger | None = None

    @contextlib.contextmanager
    def iteration(self, k: int) -> Iterator[IterLedger]:
        """Open the ledger for iteration ``k``."""
        self._current = IterLedger(k)
        try:
            yield self._current
        finally:
            self.iters.append(self._current)
            self._current = None

    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Time a phase and attribute its flops to ``label``.

        Requires an open iteration; nests correctly as long as labels of
        nested phases differ (inner flops are attributed to the inner
        label and excluded from the outer one).
        """
        if self._current is None:
            yield
            return
        rec = self._current.get(label)
        t0 = time.perf_counter()
        f0 = FLOPS.count
        try:
            yield
        finally:
            rec.seconds += time.perf_counter() - t0
            rec.flops += FLOPS.count - f0

    def transfer(self, d2h_bytes: float = 0.0, h2d_bytes: float = 0.0) -> None:
        """Record a (synthetic) host-device transfer for this iteration.

        On the paper's hardware this is the PCIe/Infinity-Fabric traffic
        moving the look-ahead columns to the CPU for FACT and back; the
        numeric engine records the byte counts the transfers would have.
        """
        if self._current is None:
            return
        rec = self._current.get("TRANSFER")
        rec.d2h_bytes += d2h_bytes
        rec.h2d_bytes += h2d_bytes

    def total(self, label: str) -> PhaseRecord:
        """Aggregate one phase label across all iterations."""
        agg = PhaseRecord()
        for ledger in self.iters:
            if label in ledger.phases:
                agg += ledger.phases[label]
        return agg
