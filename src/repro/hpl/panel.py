"""The factored-panel object exchanged between HPL phases.

After FACT, the current block column is fully described by three pieces,
which is exactly what LBCAST ships along each process row:

* ``W`` -- the ``jb x jb`` *replicated triangle*: the factored block row,
  with the unit-lower multipliers ``L1`` below the diagonal and ``U11`` on
  and above it.  Every process in the factoring column ends the pivot
  exchange holding an identical copy.
* ``ipiv`` -- the ``jb`` global pivot row positions chosen, in order
  (sequential-swap semantics, as in LAPACK's ``ipiv``).
* ``L2`` -- the multipliers below the block row for this process row's
  local rows (the tall part of L the local DGEMM needs).  Because the
  broadcast travels along a process *row*, sender and receivers share the
  same row distribution and ``L2`` needs no re-indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Panel:
    """A factored and (possibly) broadcast panel.

    Attributes:
        k: Panel index (iteration number).
        j0: Global row/column where the panel starts.
        jb: Panel width (``nb``, except possibly the last panel).
        w: ``(jb, jb)`` replicated factored block row (``L1`` strictly
            below the diagonal, ``U11`` on/above).
        ipiv: ``(jb,)`` global pivot positions (``ipiv[j]`` was swapped
            with position ``j0 + j`` at step ``j``).
        l2: ``(m2, jb)`` local multipliers below the block row, where
            ``m2`` is this rank's count of local rows with global
            position ``>= j0 + jb``.
    """

    k: int
    j0: int
    jb: int
    w: np.ndarray
    ipiv: np.ndarray
    l2: np.ndarray

    def __post_init__(self) -> None:
        if self.w.shape != (self.jb, self.jb):
            raise ValueError(f"W shape {self.w.shape} != ({self.jb}, {self.jb})")
        if self.ipiv.shape != (self.jb,):
            raise ValueError(f"ipiv shape {self.ipiv.shape} != ({self.jb},)")
        if self.l2.ndim != 2 or self.l2.shape[1] != self.jb:
            raise ValueError(f"L2 shape {self.l2.shape} incompatible with jb={self.jb}")

    def pack(self) -> np.ndarray:
        """Serialize to one contiguous float64 buffer for LBCAST."""
        header = np.array(
            [self.k, self.j0, self.jb, self.l2.shape[0]], dtype=np.float64
        )
        return np.concatenate(
            [
                header,
                self.ipiv.astype(np.float64),
                np.asfortranarray(self.w).reshape(-1, order="F"),
                np.asfortranarray(self.l2).reshape(-1, order="F"),
            ]
        )

    @classmethod
    def unpack(cls, buf: np.ndarray) -> "Panel":
        """Inverse of :meth:`pack`."""
        k, j0, jb, m2 = (int(v) for v in buf[:4])
        off = 4
        ipiv = buf[off : off + jb].astype(np.int64)
        off += jb
        w = buf[off : off + jb * jb].reshape((jb, jb), order="F").copy()
        off += jb * jb
        l2 = buf[off : off + m2 * jb].reshape((m2, jb), order="F").copy()
        return cls(k=k, j0=j0, jb=jb, w=w, ipiv=ipiv, l2=l2)

    @property
    def nbytes(self) -> int:
        """Payload size of the packed panel (what LBCAST moves)."""
        return 8 * (4 + self.jb + self.jb * self.jb + self.l2.size)
