"""The numeric HPL benchmark: distributed blocked LU with partial pivoting.

Module map (one module per phase, mirroring the paper's Section II):

* :mod:`repro.hpl.rng` / :mod:`repro.hpl.matrix` -- reproducible
  jump-ahead LCG matrix generation on the 2D block-cyclic distribution.
* :mod:`repro.hpl.panel` / :mod:`repro.hpl.pfact` -- the FACT phase:
  recursive panel factorization (left-/Crout/right-looking leaves) with the
  replicated-triangle pivot exchange, optionally multi-threaded over
  round-robined row tiles (paper III.A).
* :mod:`repro.hpl.lbcast` -- the LBCAST phase: panel packing and the
  ring-family broadcasts along process rows.
* :mod:`repro.hpl.rowswap` -- the RS phase: net-permutation planning and
  the scatterv + allgatherv row exchange building the replicated U.
* :mod:`repro.hpl.update` -- the UPDATE phase: DTRSM + DGEMM trailing
  update.
* :mod:`repro.hpl.driver` -- the iteration schedules: classic, look-ahead
  (Fig. 3) and split-update (Fig. 6).
* :mod:`repro.hpl.backsolve` / :mod:`repro.hpl.verify` -- the distributed
  triangular solve and the HPL residual acceptance test.
* :mod:`repro.hpl.api` -- ``run_hpl``, the one-call entry point.
"""

__all__ = ["HPLResult", "run_hpl", "run_hpl_dat"]


def __getattr__(name: str):
    # Lazy: submodules are importable before the full stack exists.
    if name in __all__:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
