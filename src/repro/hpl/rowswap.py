"""RS: the row-swapping phase (paper Fig. 2c).

The ``jb`` sequential pivot swaps from FACT are first collapsed into a *net
permutation* over the touched rows (the analogue of HPL's ``HPL_pipid``).
The net effect always has this shape:

* the rows that end up *in* the current block row are the pivot rows --
  they become ``U`` and every process in the column needs them, so they are
  assembled with a ring **allgatherv**;
* every row that changes *outside* the block receives an original block
  row, so the block-row owner **scatterv**'s those rows to their
  destinations.

That is exactly the ``MPI_Scatterv`` + ``MPI_Allgatherv`` formulation the
paper describes.  :class:`RowSwapper` splits the phase into three stages --
``gather`` (pack, purely local), ``communicate`` (the two collectives) and
``scatter_back`` (write-back, purely local) -- because the split-update
schedule interleaves these stages across iterations: RS2's communicate
happens one iteration before its scatter_back.

Each instance covers one local *column section* ``[col_lo, col_hi)``; the
look-ahead / left / right sections of an iteration each get their own
swapper over the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.block_cyclic import owning_process
from .matrix import DistMatrix


@dataclass(frozen=True)
class SwapPlan:
    """Net permutation of one panel's pivot swaps.

    Attributes:
        j0: Global start of the block row.
        jb: Block height (== panel width).
        ipiv: The raw sequential pivot positions.
        u_src: ``u_src[i]`` is the original global row whose content ends
            up at block row ``j0 + i`` (these rows form U, in order).
        out_dest: Global rows outside the block whose content changes.
        out_src: For each ``out_dest``, the original (block) row whose
            content lands there.  Always inside the block.
    """

    j0: int
    jb: int
    ipiv: np.ndarray
    u_src: np.ndarray
    out_dest: np.ndarray
    out_src: np.ndarray


def compute_swap_plan(ipiv: np.ndarray, j0: int, jb: int) -> SwapPlan:
    """Collapse sequential swaps ``(j0+i <-> ipiv[i])`` into a net plan."""
    if ipiv.shape != (jb,):
        raise ValueError(f"ipiv shape {ipiv.shape} != ({jb},)")
    content: dict[int, int] = {}  # position -> original row currently there

    def at(posn: int) -> int:
        return content.get(posn, posn)

    for i in range(jb):
        a, b = j0 + i, int(ipiv[i])
        if b < a:
            raise ValueError(f"pivot {b} above current row {a}")
        content[a], content[b] = at(b), at(a)

    u_src = np.array([at(j0 + i) for i in range(jb)], dtype=np.int64)
    dests, srcs = [], []
    for dest in sorted(content):
        src = content[dest]
        if dest >= j0 + jb and src != dest:
            if not j0 <= src < j0 + jb:
                raise AssertionError(
                    f"out-of-block destination {dest} sourced from non-block row {src}"
                )
            dests.append(dest)
            srcs.append(src)
    return SwapPlan(
        j0=j0,
        jb=jb,
        ipiv=ipiv.copy(),
        u_src=u_src,
        out_dest=np.array(dests, dtype=np.int64),
        out_src=np.array(srcs, dtype=np.int64),
    )


#: Point-to-point tag for the binary-exchange rounds.
_BINEXCH_TAG = 4242


class RowSwapper:
    """Executes a :class:`SwapPlan` on one local column section.

    Stages must run in order: :meth:`gather` -> :meth:`communicate` ->
    :meth:`scatter_back`; :attr:`u` is available after ``communicate``.
    The caller applies the panel DTRSM to :attr:`u` and then calls
    :meth:`store_u` so the block rows hold the final U.

    ``algo`` selects HPL's SWAP algorithm for the U assembly:

    * ``"long"`` -- the spread-roll form the paper describes: a ring
      allgatherv (bandwidth-optimal, ``P-1`` hops of ``1/P`` of U each);
    * ``"binexch"`` -- binary exchange: ``ceil(log2 P)`` rounds of
      pairwise merges (latency-optimal; HPL prefers it for narrow
      sections).

    Both produce identical results; only the message pattern differs.
    """

    def __init__(
        self,
        mat: DistMatrix,
        plan: SwapPlan,
        col_lo: int,
        col_hi: int,
        phase: str = "RS",
        algo: str = "long",
    ):
        if algo not in ("long", "binexch"):
            raise ValueError(f"unknown swap algorithm {algo!r}")
        self.algo = algo
        if not 0 <= col_lo <= col_hi <= mat.nloc_aug:
            raise ValueError(
                f"column section [{col_lo}, {col_hi}) outside [0, {mat.nloc_aug})"
            )
        self.mat = mat
        self.plan = plan
        self.col_lo = col_lo
        self.col_hi = col_hi
        self.phase = phase
        grid = mat.grid
        self.comm = grid.col_comm
        self.p = grid.p
        self.myrow = grid.myrow
        self.block_owner = owning_process(plan.j0, mat.nb, self.p)
        # Deterministic ownership maps every rank computes identically.
        owners_u = (plan.u_src // mat.nb) % self.p
        self.u_by_rank = [np.nonzero(owners_u == r)[0] for r in range(self.p)]
        owners_out = (plan.out_dest // mat.nb) % self.p
        self.out_by_rank = [np.nonzero(owners_out == r)[0] for r in range(self.p)]
        self.u: np.ndarray | None = None
        self._u_contrib: np.ndarray | None = None
        self._packets: list[np.ndarray] | None = None
        self._incoming: np.ndarray | None = None

    @property
    def width(self) -> int:
        return self.col_hi - self.col_lo

    def _local_rows(self, gpos: np.ndarray) -> np.ndarray:
        return np.array(
            [self.mat.local_row_of(int(g)) for g in gpos], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def gather(self) -> None:
        """Pack this rank's outgoing rows (purely local reads)."""
        a, plan = self.mat.a, self.plan
        cols = slice(self.col_lo, self.col_hi)
        mine = self.u_by_rank[self.myrow]
        rows = self._local_rows(plan.u_src[mine])
        self._u_contrib = np.asfortranarray(a[rows, cols]) if rows.size else np.zeros(
            (0, self.width), order="F"
        )
        if self.myrow == self.block_owner:
            self._packets = []
            for r in range(self.p):
                idx = self.out_by_rank[r]
                src_rows = self._local_rows(plan.out_src[idx])
                packet = (
                    np.asfortranarray(a[src_rows, cols])
                    if src_rows.size
                    else np.zeros((0, self.width), order="F")
                )
                self._packets.append(packet)

    def communicate(self) -> None:
        """Assemble U (ring allgatherv or binary exchange) and export the
        outgoing block rows (scatterv from the block owner)."""
        if self._u_contrib is None:
            raise RuntimeError("communicate() before gather()")
        plan = self.plan
        with self.comm.phase(self.phase):
            if self.algo == "binexch":
                parts = self._binexch_allgather(self._u_contrib)
            else:
                parts = dict(enumerate(self.comm.allgatherv(self._u_contrib)))
            self._incoming = self.comm.scatterv(self._packets, root=self.block_owner)
        self.u = np.zeros((plan.jb, self.width), order="F")
        for r in range(self.p):
            idx = self.u_by_rank[r]
            if idx.size:
                self.u[idx, :] = parts[r]
        self._u_contrib = None
        self._packets = None

    def _binexch_allgather(self, contrib: np.ndarray) -> dict[int, np.ndarray]:
        """Binary-exchange allgather of per-rank U contributions.

        Non-power-of-two sizes fold the surplus ranks onto the low ranks
        before the ``log2`` doubling rounds and unfold afterwards, exactly
        like the recursive-doubling allreduce.
        """
        comm, p, rank = self.comm, self.p, self.myrow
        acc: dict[int, np.ndarray] = {rank: contrib}
        pof2 = 1
        while pof2 * 2 <= p:
            pof2 *= 2
        rem = p - pof2
        if rank >= pof2:
            comm.send(acc, rank - pof2, tag=_BINEXCH_TAG)
        else:
            if rank < rem:
                acc.update(comm.recv(rank + pof2, tag=_BINEXCH_TAG))
            mask = 1
            while mask < pof2:
                partner = rank ^ mask
                comm.send(acc, partner, tag=_BINEXCH_TAG)
                acc.update(comm.recv(partner, tag=_BINEXCH_TAG))
                mask <<= 1
        # unfold to the surplus ranks
        if rank < rem:
            comm.send(acc, rank + pof2, tag=_BINEXCH_TAG)
        elif rank >= pof2:
            acc = comm.recv(rank - pof2, tag=_BINEXCH_TAG)
        return acc

    def scatter_back(self) -> None:
        """Write received rows into their local destinations."""
        if self._incoming is None:
            raise RuntimeError("scatter_back() before communicate()")
        idx = self.out_by_rank[self.myrow]
        if idx.size:
            rows = self._local_rows(self.plan.out_dest[idx])
            self.mat.a[np.ix_(rows, np.arange(self.col_lo, self.col_hi))] = (
                self._incoming
            )
        self._incoming = None

    def store_u(self, u_final: np.ndarray) -> None:
        """Block-row owner stores the (post-DTRSM) U into the block rows."""
        if self.myrow != self.block_owner:
            return
        plan = self.plan
        rows = self._local_rows(plan.j0 + np.arange(plan.jb))
        self.mat.a[np.ix_(rows, np.arange(self.col_lo, self.col_hi))] = u_final
