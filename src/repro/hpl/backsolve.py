"""Distributed backward substitution (HPL's ``pdtrsv``).

After factorization the local matrix holds ``U`` on and above the global
diagonal and the updated right-hand side ``b_hat = L^{-1} P b`` in the
augmented column.  The solve walks the diagonal blocks backwards:

1. the owner of diagonal block ``k`` receives the current residual segment
   from the RHS-owning column (row-communicator point-to-point),
2. solves the ``jb x jb`` upper-triangular system locally,
3. broadcasts ``x_k`` grid-wide, and
4. the block's process column computes its local pieces of
   ``A[:, block k] @ x_k`` and ships them row-wise to the RHS column,
   which subtracts them from the residual.

Every rank returns the full replicated solution vector.
"""

from __future__ import annotations

import numpy as np

from ..blas.kernels import FLOPS, upper_solve
from ..grid.block_cyclic import owning_process
from .matrix import DistMatrix

_TAG_SEG = 101
_TAG_PARTIAL = 102


def backsolve(mat: DistMatrix) -> np.ndarray:
    """Solve ``U x = b_hat``; returns ``x`` (length ``n``) on every rank."""
    grid, n, nb = mat.grid, mat.n, mat.nb
    comm = grid.comm
    # The RHS lives in global column n.
    rhs_col = owning_process(n, nb, grid.q)
    i_own_rhs_col = grid.mycol == rhs_col
    lc_rhs = mat.local_cols_from(n) if i_own_rhs_col else -1
    # Local working copy of the RHS so the solve never mutates the matrix.
    b_local = mat.a[:, lc_rhs].copy() if i_own_rhs_col else None

    x = np.zeros(n)
    nblocks = (n + nb - 1) // nb
    for k in range(nblocks - 1, -1, -1):
        j0 = k * nb
        jb = min(nb, n - j0)
        prow = owning_process(j0, nb, grid.p)
        pcol = owning_process(j0, nb, grid.q)
        diag_rank = grid.rank_of(prow, pcol)
        # 1. residual segment to the diagonal owner
        if grid.myrow == prow:
            lr = mat.local_rows_from(j0)
            if i_own_rhs_col:
                seg = b_local[lr : lr + jb]
                if pcol != rhs_col:
                    grid.row_comm.send(seg, pcol, tag=_TAG_SEG)
            if grid.mycol == pcol and pcol != rhs_col:
                seg = grid.row_comm.recv(rhs_col, tag=_TAG_SEG)
        # 2. local triangular solve on the diagonal owner
        if comm.rank == diag_rank:
            lr = mat.local_rows_from(j0)
            lc = mat.local_cols_from(j0)
            ukk = mat.a[lr : lr + jb, lc : lc + jb]
            xk = upper_solve(ukk, seg)
        else:
            xk = None
        # 3. replicate x_k
        xk = comm.bcast(xk, root=diag_rank)
        x[j0 : j0 + jb] = xk
        # 4. fold A[:, block k] @ x_k into the residual rows above the block
        if grid.mycol == pcol:
            lr_top = mat.local_rows_from(j0)  # rows with position < j0
            lc = mat.local_cols_from(j0)
            partial = mat.a[:lr_top, lc : lc + jb] @ xk
            FLOPS.add(2.0 * lr_top * jb)
            if i_own_rhs_col:
                b_local[:lr_top] -= partial
            else:
                grid.row_comm.send(partial, rhs_col, tag=_TAG_PARTIAL)
        elif i_own_rhs_col:
            lr_top = mat.local_rows_from(j0)
            partial = grid.row_comm.recv(pcol, tag=_TAG_PARTIAL)
            b_local[:lr_top] -= partial
    return x
