"""FACT: recursive, multi-threaded panel factorization (paper Section III.A).

The panel is the current ``jb``-wide block column, tall and skinny: this
process owns ``m_act`` local rows of it (global positions ``>= j0``).  The
factorization is SPMD across the ``P`` processes of the grid column *and*
multi-threaded inside each process:

* **Across processes** the pivot for each column is found with one
  combined all-reduce over the column communicator, exchanging the
  candidate row and the current row in a single max-loc operation (the
  analogue of HPL's ``HPL_pdmxswp``).  Every process thereby accumulates
  an identical copy of the factored block row ``W`` -- the *replicated
  triangle* -- which lets the within-panel DTRSM-like updates run locally
  and redundantly, with no extra communication.

* **Within a process** the local rows are blocked into ``NB``-row tiles,
  round-robined over ``T`` threads (tile ``t`` -> thread ``t % T``), so the
  first tile is always the main thread's.  Each thread updates and searches
  only its own tiles; the pivot search is a tree reduction over threads,
  after which only the main thread talks to MPI (paper Fig. 4).

The recursion (HPL's RFACT/NDIV/NBMIN) subdivides the panel; leaves run one
of three classic variants:

* ``RIGHT`` -- immediate rank-1 trailing updates (rocHPL's default);
* ``CROUT`` -- per-column pre-update, per-pivot row finalization;
* ``LEFT``  -- per-column triangular solve against the *raw* stored pivot
  rows, with the chunk's upper triangle finalized once at leaf end.

All variants keep the same invariant -- local multiplier columns and the
replicated ``W`` rows are exact after every chunk -- so they are
numerically interchangeable, as the tests verify against LAPACK.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..blas.kernels import FLOPS, unit_lower_solve_inplace
from ..blas.threaded import ParallelContext, TileWorkerPool
from ..config import HPLConfig, PFactVariant
from ..errors import SingularMatrixError
from ..grid.block_cyclic import owning_process
from ..simmpi import Communicator
from .panel import Panel

_FAR = 1 << 62  # sentinel "no candidate" pivot position


def _pivot_combine(x: tuple, y: tuple) -> tuple:
    """Max-loc combiner for the pivot all-reduce.

    Payloads are ``(value, gpos, row, cur)``: the best local candidate's
    absolute value, its global position, its full panel-width row, and --
    contributed only by the owner of the current row -- the current row's
    contents.  Larger value wins; ties break to the lower global position,
    making the factorization deterministic and grid-independent.
    """
    xv, xg, _, xc = x
    yv, yg, _, yc = y
    best = x if (xv, -xg) >= (yv, -yg) else y
    cur = xc if xc is not None else yc
    return (best[0], best[1], best[2], cur)


@dataclass
class _FactState:
    """State shared by the threads of one process during one panel FACT."""

    a: np.ndarray  # (m_act, jb) local active panel view
    pos: np.ndarray  # (m_act,) global positions of the local rows
    w: np.ndarray  # (jb, jb) replicated triangle being built
    ipiv: np.ndarray  # (jb,) global pivot positions
    j0: int
    jb: int
    mat_nb: int  # distribution block (tile height)
    m_act: int
    p: int
    myrow: int
    col_comm: Communicator
    pfact: PFactVariant
    lazy: bool  # recursion update order (LEFT/CROUT = lazy, RIGHT = eager)
    ndiv: int
    nbmin: int
    worker_flops: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def boundary(self, gpos: int) -> int:
        """First local row index with global position ``>= gpos``."""
        return int(np.searchsorted(self.pos, gpos))

    def owns(self, gpos: int) -> bool:
        return owning_process(gpos, self.mat_nb, self.p) == self.myrow

    def local_row(self, gpos: int) -> int:
        """Index *within the active view* of locally-owned position ``gpos``."""
        idx = self.boundary(gpos)
        assert idx < self.m_act and self.pos[idx] == gpos
        return idx


def _clip(slices: list[slice], lb: int) -> list[slice]:
    """Intersect tile slices with rows at or after index ``lb``."""
    out = []
    for sl in slices:
        lo = max(sl.start, lb)
        if lo < sl.stop:
            out.append(slice(lo, sl.stop))
    return out


def _split_sizes(w: int, ndiv: int) -> list[int]:
    """Chunk widths for one recursion level: ``ndiv`` pieces covering ``w``."""
    base = max(1, w // ndiv)
    sizes: list[int] = []
    off = 0
    while off + base < w and len(sizes) < ndiv - 1:
        sizes.append(base)
        off += base
    sizes.append(w - off)
    return sizes


def _update_cols(
    ctx: ParallelContext,
    st: _FactState,
    tiles: list[slice],
    ra: int,
    rb: int,
    ca: int,
    cb: int,
) -> None:
    """Apply factored panel rows ``[ra, rb)`` to panel columns ``[ca, cb)``.

    Main thread solves the replicated-triangle part (the within-panel
    DTRSM); all threads then apply the rank-``rb-ra`` update to their own
    active rows (the within-panel DGEMM) -- the structure the paper
    describes for the blocked variants.
    """
    if ca >= cb or ra >= rb:
        return
    if ctx.tid == 0:
        unit_lower_solve_inplace(st.w[ra:rb, ra:rb], st.w[ra:rb, ca:cb])
    ctx.barrier()
    lb = st.boundary(st.j0 + ca)
    for sl in _clip(tiles, lb):
        st.a[sl, ca:cb] -= st.a[sl, ra:rb] @ st.w[ra:rb, ca:cb]
        FLOPS.add(2.0 * (sl.stop - sl.start) * (cb - ca) * (rb - ra))
    ctx.barrier()


def _leaf(
    ctx: ParallelContext,
    st: _FactState,
    tiles: list[slice],
    a: int,
    b: int,
) -> None:
    """Factor panel columns ``[a, b)`` with the configured leaf variant."""
    variant = st.pfact
    aa, w = st.a, st.w
    for j in range(a, b):
        cand_lb = st.boundary(st.j0 + j)
        # ---- column pre-update (CROUT / LEFT) --------------------------
        if variant is not PFactVariant.RIGHT and j > a:
            if variant is PFactVariant.CROUT:
                ucol = w[a:j, j]  # already final
            else:  # LEFT: solve the raw prefix against the multipliers
                ucol = None
                if ctx.tid == 0:
                    ucol = w[a:j, j].copy()
                    unit_lower_solve_inplace(w[a:j, a:j], ucol)
                ucol = ctx.bcast(ucol)
            for sl in _clip(tiles, cand_lb):
                aa[sl, j] -= aa[sl, a:j] @ ucol
                FLOPS.add(2.0 * (sl.stop - sl.start) * (j - a))
        # ---- local pivot search over this thread's tiles ---------------
        best_val, best_idx = -1.0, -1
        for sl in _clip(tiles, cand_lb):
            col = np.abs(aa[sl, j])
            i = int(np.argmax(col))
            v = float(col[i])
            idx = sl.start + i
            if (v, -int(st.pos[idx])) > (best_val, -(int(st.pos[best_idx]) if best_idx >= 0 else _FAR)):
                best_val, best_idx = v, idx
        thread_best = ctx.reduce(
            (best_val, int(st.pos[best_idx]) if best_idx >= 0 else _FAR, best_idx),
            lambda u, v: u if (u[0], -u[1]) >= (v[0], -v[1]) else v,
        )
        # ---- cross-process exchange (main thread only) ------------------
        if ctx.tid == 0:
            val, gpos, lidx = thread_best
            row = aa[lidx, :].copy() if lidx >= 0 and val >= 0.0 else None
            if row is None:
                val, gpos = -1.0, _FAR
            cur = None
            if st.owns(st.j0 + j):
                cur = aa[st.local_row(st.j0 + j), :].copy()
            with st.col_comm.phase("FACT"):
                val, gpos, wrow, cur = st.col_comm.allreduce(
                    (val, gpos, row, cur), op=_pivot_combine
                )
            if val <= 0.0:
                ctx.bcast(("singular", j))
                raise SingularMatrixError(
                    f"zero pivot at global column {st.j0 + j}"
                )
            st.ipiv[j] = gpos
            # Move the displaced current row into the pivot's old slot.
            if gpos != st.j0 + j and st.owns(gpos):
                aa[st.local_row(gpos), :] = cur
            # Store the winning row into the replicated triangle.
            wfin = wrow.copy()
            if variant is PFactVariant.CROUT and j > a:
                wfin[j + 1 : b] -= wfin[a:j] @ w[a:j, j + 1 : b]
                FLOPS.add(2.0 * (j - a) * (b - j - 1))
            w[j, :] = wfin
            ctx.bcast(("ok", j))
        else:
            flag, _ = ctx.bcast(None)
            if flag == "singular":
                raise SingularMatrixError(
                    f"zero pivot at global column {st.j0 + j}"
                )
        # ---- scale (+ rank-1 for RIGHT) on this thread's rows -----------
        upd_lb = st.boundary(st.j0 + j + 1)
        inv = 1.0 / w[j, j]
        for sl in _clip(tiles, upd_lb):
            aa[sl, j] *= inv
            FLOPS.add(float(sl.stop - sl.start))
            if variant is PFactVariant.RIGHT and j + 1 < b:
                aa[sl, j + 1 : b] -= aa[sl, j : j + 1] @ w[j : j + 1, j + 1 : b]
                FLOPS.add(2.0 * (sl.stop - sl.start) * (b - j - 1))
    # ---- LEFT leaf end: finalize the chunk's strictly-upper triangle ----
    if variant is PFactVariant.LEFT and ctx.tid == 0:
        for s in range(a + 1, b):
            col = w[a:s, s].copy()
            unit_lower_solve_inplace(w[a:s, a:s], col)
            w[a:s, s] = col
    ctx.barrier()


def _rfact(
    ctx: ParallelContext, st: _FactState, tiles: list[slice], c0: int, w: int
) -> None:
    """Recursive factorization of panel columns ``[c0, c0 + w)``."""
    if w <= st.nbmin:
        _leaf(ctx, st, tiles, c0, c0 + w)
        return
    off = c0
    for cw in _split_sizes(w, st.ndiv):
        if st.lazy and off > c0:
            _update_cols(ctx, st, tiles, c0, off, off, off + cw)
        _rfact(ctx, st, tiles, off, cw)
        if not st.lazy and off + cw < c0 + w:
            _update_cols(ctx, st, tiles, off, off + cw, off + cw, c0 + w)
        off += cw


def factor_panel(
    col_comm: Communicator,
    a_active: np.ndarray,
    pos: np.ndarray,
    k: int,
    j0: int,
    jb: int,
    cfg: HPLConfig,
    pool: TileWorkerPool,
    myrow: int,
    p: int,
) -> Panel:
    """LU-factor the local panel; collective over the grid column.

    Args:
        col_comm: Column communicator (``p`` ranks; rank == grid row).
        a_active: ``(m_act, jb)`` local view of the panel columns for rows
            with global position ``>= j0``.  Mutated in place: on return
            the active rows hold the L multipliers and the block rows (on
            their owner) the factored block row.
        pos: Global positions of the active rows, ascending.
        k: Panel index.
        j0: Global start row/column of the panel.
        jb: Panel width.
        cfg: Run configuration (variants, recursion, threading).
        pool: Thread pool sized to this process's FACT thread count.
        myrow: This process's grid row.
        p: Grid rows.

    Returns:
        The factored :class:`~repro.hpl.panel.Panel` (W replicated, L2
        local).

    Raises:
        SingularMatrixError: on an exactly-zero global pivot.
    """
    m_act = a_active.shape[0]
    if a_active.shape[1] != jb:
        raise ValueError(f"panel view width {a_active.shape[1]} != jb {jb}")
    st = _FactState(
        a=a_active,
        pos=pos,
        w=np.zeros((jb, jb), order="F"),
        ipiv=np.full(jb, -1, dtype=np.int64),
        j0=j0,
        jb=jb,
        mat_nb=cfg.nb,
        m_act=m_act,
        p=p,
        myrow=myrow,
        col_comm=col_comm,
        pfact=cfg.pfact,
        lazy=cfg.rfact is not PFactVariant.RIGHT,
        ndiv=cfg.ndiv,
        nbmin=cfg.nbmin,
    )

    def region(ctx: ParallelContext) -> None:
        tiles = ctx.tile_slices(m_act, cfg.nb)
        try:
            _rfact(ctx, st, tiles, 0, jb)
        finally:
            if ctx.tid != 0:
                extra = FLOPS.take()
                with st.lock:
                    st.worker_flops += extra

    pool.run(region)
    FLOPS.add(st.worker_flops)
    st.worker_flops = 0.0

    # Owner of the block rows stores the final factored block row.
    b2 = st.boundary(j0 + jb)
    if st.owns(j0):
        blk0 = st.boundary(j0)
        assert b2 - blk0 == jb, "block rows must be contiguous on their owner"
        a_active[blk0:b2, :] = st.w
    l2 = np.asfortranarray(a_active[b2:, :].copy())
    return Panel(k=k, j0=j0, jb=jb, w=st.w, ipiv=st.ipiv, l2=l2)
