"""HPL-style jump-ahead linear congruential generator.

Netlib HPL generates the distributed matrix with a 64-bit LCG whose
crucial property is O(log k) *jump-ahead*: any process can position the
stream at the global element index it owns without generating the elements
in between.  This makes the global matrix a pure function of ``(n, seed)``
-- independent of the process grid -- which we rely on throughout the test
suite to compare runs on different grids against a serial ground truth.

The generator is ``x_{k+1} = (a x_k + c) mod 2^64`` with the familiar
MMIX/PCG multiplier.  Jumping ``k`` steps composes the affine map with
itself ``k`` times by binary doubling: ``x_{n+k} = A_k x_n + C_k`` where
``A_k = a^k`` and ``C_k = c (a^k - 1)/(a - 1)``, all mod ``2^64``.

Values map to doubles in ``[-0.5, 0.5)`` using the top 53 bits of state,
matching HPL's centered uniform distribution (which keeps the expected
pivot growth mild and the matrix comfortably nonsingular).
"""

from __future__ import annotations

import numpy as np

#: LCG multiplier (MMIX / PCG64 multiplier; HPL uses the same construction
#: split into two 32-bit halves).
MULT = 6364136223846793005
#: LCG increment.
INCR = 1
_MASK = (1 << 64) - 1


def lcg_jump(k: int) -> tuple[int, int]:
    """Affine coefficients ``(A, C)`` with ``x_{n+k} = A x_n + C (mod 2^64)``.

    Computed by binary doubling of the map composition, O(log k).
    """
    if k < 0:
        raise ValueError(f"jump distance must be >= 0, got {k}")
    a_acc, c_acc = 1, 0  # identity map
    a_pow, c_pow = MULT, INCR  # the single-step map
    while k:
        if k & 1:
            # compose: apply (a_pow, c_pow) after (a_acc, c_acc)
            a_acc = (a_pow * a_acc) & _MASK
            c_acc = (a_pow * c_acc + c_pow) & _MASK
        # double: (a_pow, c_pow) o (a_pow, c_pow)
        c_pow = (a_pow * c_pow + c_pow) & _MASK
        a_pow = (a_pow * a_pow) & _MASK
        k >>= 1
    return a_acc, c_acc


def _initial_state(seed: int) -> int:
    """Mix the user seed into a full-width nonzero starting state."""
    x = (seed & _MASK) ^ 0x9E3779B97F4A7C15
    # one step so that nearby seeds decorrelate immediately
    return (MULT * x + INCR) & _MASK


def state_at(seed: int, k: int) -> int:
    """LCG state at stream position ``k`` (position 0 = initial state)."""
    a, c = lcg_jump(k)
    return (a * _initial_state(seed) + c) & _MASK


def random_values(seed: int, start: int, count: int) -> np.ndarray:
    """``count`` doubles in ``[-0.5, 0.5)`` at stream positions
    ``start, start+1, ...`` -- vectorized.

    Uses the closed form ``x_{start+t} = A_t x_start + C_t`` with
    ``A_t = a^t`` (a cumulative product) and ``C_t = sum_{s<t} a^s``
    (a cumulative sum), evaluated in wrapping uint64 arithmetic.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.float64)
    x0 = np.uint64(state_at(seed, start))
    mult = np.uint64(MULT)
    a_pow = np.empty(count, dtype=np.uint64)
    a_pow[0] = np.uint64(1)
    if count > 1:
        powers = np.full(count - 1, mult, dtype=np.uint64)
        np.cumprod(powers, out=a_pow[1:])
    c_sum = np.zeros(count, dtype=np.uint64)
    if count > 1:
        np.cumsum(a_pow[:-1], out=c_sum[1:])
    states = a_pow * x0 + c_sum  # wraps mod 2^64
    return (states >> np.uint64(11)).astype(np.float64) * 2.0**-53 - 0.5
