"""UPDATE: the trailing submatrix update (paper Fig. 2d).

Two kernels, applied per local column section:

* **DTRSM** -- the assembled pivot rows become the factorization's U:
  ``U <- L1^{-1} U`` with the replicated unit-lower triangle.  Every
  process row performs this redundantly on its local column slice (the
  standard HPL trade: ``O(NB^2 n_loc)`` duplicated flops buy zero extra
  communication, since every row needs U for its DGEMM anyway).
* **DGEMM** -- the rank-``NB`` update ``A_trail -= L2 @ U`` on the local
  trailing rows.  This is where ~95 % of HPL's time goes on real hardware.
"""

from __future__ import annotations

import numpy as np

from ..blas.kernels import dgemm_update, unit_lower_solve_inplace
from .matrix import DistMatrix
from .panel import Panel


def solve_u(panel: Panel, u: np.ndarray) -> None:
    """``U <- L1^{-1} U`` in place (the trailing DTRSM)."""
    if u.shape[0] != panel.jb:
        raise ValueError(f"U has {u.shape[0]} rows, panel width is {panel.jb}")
    unit_lower_solve_inplace(panel.w, u)


def trailing_dgemm(
    mat: DistMatrix, panel: Panel, u: np.ndarray, col_lo: int, col_hi: int
) -> None:
    """``A[trail, col_lo:col_hi] -= L2 @ U`` on the local trailing rows.

    Trailing rows are those with global position ``>= j0 + jb`` -- exactly
    the rows ``panel.l2`` covers, by construction of the row-aligned
    broadcast.
    """
    if col_hi <= col_lo:
        return
    lr = mat.local_rows_from(panel.j0 + panel.jb)
    trail = mat.a[lr:, col_lo:col_hi]
    if trail.shape[0] != panel.l2.shape[0]:
        raise ValueError(
            f"L2 rows {panel.l2.shape[0]} != local trailing rows {trail.shape[0]}"
        )
    dgemm_update(trail, panel.l2, u)


def apply_update(
    mat: DistMatrix, panel: Panel, swapper, col_lo: int, col_hi: int
) -> None:
    """DTRSM + store-U + DGEMM for one section (post ``communicate``)."""
    u = swapper.u
    solve_u(panel, u)
    swapper.store_u(u)
    trailing_dgemm(mat, panel, u, col_lo, col_hi)
