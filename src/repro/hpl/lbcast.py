"""LBCAST: broadcast the factored panel along the process row.

The factoring column packs ``(W, ipiv, L2)`` into one contiguous buffer and
broadcasts it with the configured ring-family algorithm (paper Fig. 2b).
Because the broadcast travels along a process *row*, every receiver shares
the sender's row distribution, so the received ``L2`` rows line up with the
receiver's local rows with no re-indexing.

No computation happens here; the phase is pure bandwidth, which is why the
paper hides it behind the trailing update via look-ahead.
"""

from __future__ import annotations

from ..config import BcastVariant
from ..simmpi import Communicator
from .panel import Panel


def broadcast_panel(
    row_comm: Communicator,
    panel: Panel | None,
    root_col: int,
    algo: BcastVariant,
) -> Panel:
    """Broadcast ``panel`` from grid column ``root_col`` along the row.

    Args:
        row_comm: Row communicator (rank == grid column).
        panel: The factored panel on ranks in ``root_col``; ``None``
            elsewhere.
        root_col: Grid column that performed FACT.
        algo: Broadcast algorithm (HPL.dat ``BCAST``).

    Returns:
        The panel, now present on every rank of the row.
    """
    if row_comm.size == 1:
        assert panel is not None
        return panel
    buf = panel.pack() if row_comm.rank == root_col else None
    with row_comm.phase("LBCAST"):
        buf = row_comm.bcast(buf, root=root_col, algo=algo.value)
    if row_comm.rank == root_col:
        assert panel is not None
        return panel
    return Panel.unpack(buf)
