"""HPL.dat compatibility: parse Netlib HPL input files into run configs.

rocHPL keeps Netlib HPL's input format, so a user's existing ``HPL.dat``
drives this reproduction too.  The file is a fixed sequence of lines --
value(s) first, free-text description after -- selecting cross products of
problem sizes, blocking factors, grids and algorithm variants.

Lines we map directly: N / NB / PMAP / grids / threshold / PFACT / NBMIN /
NDIV / RFACT / BCAST / DEPTH / SWAP (+ threshold).  The trailing storage
knobs (L1/U transposition, equilibration, alignment) are parsed and
recorded but have no numeric effect here (our storage layout is fixed
column-major, like rocHPL's device layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..config import BcastVariant, HPLConfig, PFactVariant, Schedule, SwapVariant
from ..errors import ConfigError

_PFACT_CODES = {0: PFactVariant.LEFT, 1: PFactVariant.CROUT, 2: PFactVariant.RIGHT}
_BCAST_CODES = {
    0: BcastVariant.ONE_RING,
    1: BcastVariant.ONE_RING_M,
    2: BcastVariant.TWO_RING,
    3: BcastVariant.TWO_RING_M,
    4: BcastVariant.BLONG,
    5: BcastVariant.BLONG,  # LnM: modified long; modeled as BLONG
}
_SWAP_CODES = {0: SwapVariant.BINEXCH, 1: SwapVariant.LONG, 2: SwapVariant.MIX}


@dataclass
class HPLDat:
    """The parsed contents of an HPL.dat file."""

    output_file: str = "HPL.out"
    device_out: int = 6
    ns: list[int] = field(default_factory=lambda: [1000])
    nbs: list[int] = field(default_factory=lambda: [64])
    row_major: bool = True
    grids: list[tuple[int, int]] = field(default_factory=lambda: [(1, 1)])
    threshold: float = 16.0
    pfacts: list[PFactVariant] = field(default_factory=lambda: [PFactVariant.RIGHT])
    nbmins: list[int] = field(default_factory=lambda: [16])
    ndivs: list[int] = field(default_factory=lambda: [2])
    rfacts: list[PFactVariant] = field(default_factory=lambda: [PFactVariant.RIGHT])
    bcasts: list[BcastVariant] = field(default_factory=lambda: [BcastVariant.ONE_RING_M])
    depths: list[int] = field(default_factory=lambda: [1])
    swap: SwapVariant = SwapVariant.MIX
    swap_threshold: int = 64
    l1_transposed: bool = True
    u_transposed: bool = True
    equilibration: bool = True
    alignment: int = 8

    def configs(self, **overrides) -> Iterator[HPLConfig]:
        """Expand the cross product into :class:`HPLConfig` objects.

        Depth 0 maps to the classic schedule, depth >= 1 to rocHPL's
        split-update schedule (the overlap family the paper describes).
        """
        for n in self.ns:
            for nb in self.nbs:
                for p, q in self.grids:
                    for pfact in self.pfacts:
                        for rfact in self.rfacts:
                            for nbmin in self.nbmins:
                                for ndiv in self.ndivs:
                                    for bcast in self.bcasts:
                                        for depth in self.depths:
                                            kwargs = dict(
                                                n=n,
                                                nb=nb,
                                                p=p,
                                                q=q,
                                                pfact=pfact,
                                                rfact=rfact,
                                                nbmin=nbmin,
                                                ndiv=ndiv,
                                                bcast=bcast,
                                                depth=min(depth, 1),
                                                schedule=(
                                                    Schedule.CLASSIC
                                                    if depth == 0
                                                    else Schedule.SPLIT_UPDATE
                                                ),
                                                swap=self.swap,
                                                swap_threshold=self.swap_threshold,
                                                row_major_grid=self.row_major,
                                            )
                                            kwargs.update(overrides)
                                            yield HPLConfig(**kwargs)


class _LineReader:
    """Sequential reader over the data lines of an HPL.dat file."""

    def __init__(self, text: str):
        # the first two lines are free-text banner
        self.lines = text.splitlines()
        if len(self.lines) < 3:
            raise ConfigError("HPL.dat too short: missing header lines")
        self.pos = 2

    def _next(self) -> str:
        if self.pos >= len(self.lines):
            raise ConfigError(
                f"HPL.dat truncated at line {self.pos + 1}: expected more fields"
            )
        line = self.lines[self.pos]
        self.pos += 1
        return line

    def str_field(self) -> str:
        return self._next().split()[0]

    def int_field(self) -> int:
        return int(self.str_field())

    def float_field(self) -> float:
        return float(self.str_field())

    def int_list(self, count: int) -> list[int]:
        values = self._next().split()
        out = []
        for v in values[:count]:
            try:
                out.append(int(v))
            except ValueError:
                break
        if len(out) < count:
            raise ConfigError(
                f"HPL.dat line {self.pos}: expected {count} integers, got {len(out)}"
            )
        return out


def _decode(codes: dict, raw: list[int], what: str) -> list:
    out = []
    for code in raw:
        if code not in codes:
            raise ConfigError(f"HPL.dat: unknown {what} code {code}")
        out.append(codes[code])
    return out


def parse_hpl_dat(text: str) -> HPLDat:
    """Parse the contents of an HPL.dat file.

    Raises:
        ConfigError: on truncated files, bad counts, or unknown codes.
    """
    r = _LineReader(text)
    dat = HPLDat()
    dat.output_file = r.str_field()
    dat.device_out = r.int_field()
    dat.ns = r.int_list(r.int_field())
    dat.nbs = r.int_list(r.int_field())
    dat.row_major = r.int_field() == 0
    ngrids = r.int_field()
    ps = r.int_list(ngrids)
    qs = r.int_list(ngrids)
    dat.grids = list(zip(ps, qs))
    dat.threshold = r.float_field()
    dat.pfacts = _decode(_PFACT_CODES, r.int_list(r.int_field()), "PFACT")
    dat.nbmins = r.int_list(r.int_field())
    dat.ndivs = r.int_list(r.int_field())
    dat.rfacts = _decode(_PFACT_CODES, r.int_list(r.int_field()), "RFACT")
    dat.bcasts = _decode(_BCAST_CODES, r.int_list(r.int_field()), "BCAST")
    dat.depths = r.int_list(r.int_field())
    dat.swap = _SWAP_CODES.get(r.int_field(), SwapVariant.MIX)
    dat.swap_threshold = r.int_field()
    # trailing storage knobs: parsed for fidelity, numerically inert here
    try:
        dat.l1_transposed = r.int_field() == 0
        dat.u_transposed = r.int_field() == 0
        dat.equilibration = r.int_field() == 1
        dat.alignment = r.int_field()
    except ConfigError:
        pass  # older files omit them
    return dat


_PFACT_LETTER = {PFactVariant.LEFT: "L", PFactVariant.CROUT: "C", PFactVariant.RIGHT: "R"}
_BCAST_DIGIT = {
    BcastVariant.ONE_RING: "0",
    BcastVariant.ONE_RING_M: "1",
    BcastVariant.TWO_RING: "2",
    BcastVariant.TWO_RING_M: "3",
    BcastVariant.BLONG: "4",
    BcastVariant.BINOMIAL: "5",
}


def encode_tv(cfg: HPLConfig) -> str:
    """The T/V column string for a run, HPL-style.

    ``W`` (wall time) + depth + bcast code + recursion spec, e.g.
    ``W11R2R16`` for depth 1, 1ringM, right-recursing NDIV=2,
    right-looking leaves of NBMIN=16.
    """
    return (
        f"W{cfg.depth}{_BCAST_DIGIT[cfg.bcast]}"
        f"{_PFACT_LETTER[cfg.rfact]}{cfg.ndiv}"
        f"{_PFACT_LETTER[cfg.pfact]}{cfg.nbmin}"
    )
