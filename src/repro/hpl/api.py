"""One-call entry point: generate, factor, solve, verify.

``run_hpl`` is the library's quickstart surface: it launches the SPMD job
on the simulated-MPI runtime, runs the configured schedule, back-solves,
and applies HPL's residual acceptance test.  For the *performance* side of
the benchmark (the paper's figures), see :mod:`repro.perf`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import HPLConfig
from ..errors import VerificationError
from ..grid.process_grid import ProcessGrid
from ..simmpi import CommStats, Communicator, Fabric, run_spmd
from .backsolve import backsolve
from .driver import factorize
from .matrix import DistMatrix
from .timers import Timers
from .verify import Verification, verify


@dataclass
class HPLResult:
    """Outcome of one HPL run.

    Attributes:
        config: The configuration that produced this result.
        x: The solution vector (length ``n``).
        resid: HPL's scaled residual.
        passed: Whether the residual beat the 16.0 threshold.
        wall_seconds: End-to-end factor+solve wall time (diagnostic only;
            the numeric engine is not the paper's hardware).
        timers: Per-rank phase ledgers (flop/byte counts are exact).
        comm_stats: Per-rank communication statistics by phase.
    """

    config: HPLConfig
    x: np.ndarray
    resid: float
    passed: bool
    wall_seconds: float
    timers: list[Timers]
    comm_stats: list[CommStats]

    @property
    def verification(self) -> Verification:
        return self._verification

    def __post_init__(self) -> None:
        self._verification: Verification | None = None


def _rank_main(comm: Communicator, cfg: HPLConfig):
    grid = ProcessGrid(comm, cfg.p, cfg.q, row_major=cfg.row_major_grid)
    mat = DistMatrix(grid, cfg.n, cfg.nb, seed=cfg.seed)
    t0 = time.perf_counter()
    fact = factorize(mat, cfg)
    x = backsolve(mat)
    wall = time.perf_counter() - t0
    check = verify(mat, x) if cfg.check else None
    return x, check, wall, fact.timers, comm.stats


def run_hpl_dat(path: str, **overrides) -> list[HPLResult]:
    """Run every configuration an HPL.dat file describes.

    The library-API twin of ``python -m repro dat``: parses the Netlib
    input file, expands the cross product, runs each configuration, and
    returns the results in file order.  ``overrides`` are forwarded to
    every expanded :class:`~repro.config.HPLConfig` (e.g. ``seed=7``).
    """
    import pathlib

    from .dat import parse_hpl_dat

    dat = parse_hpl_dat(pathlib.Path(path).read_text())
    return [run_hpl(cfg) for cfg in dat.configs(**overrides)]


def run_hpl(cfg: HPLConfig, *, raise_on_failure: bool = False) -> HPLResult:
    """Run the full HPL benchmark for ``cfg`` on ``p*q`` simulated ranks.

    Args:
        cfg: The run configuration.
        raise_on_failure: Raise :class:`~repro.errors.VerificationError`
            instead of returning a failed result.

    Returns:
        The :class:`HPLResult`; identical numerics on every rank, with
        rank 0's view reported.
    """
    fabric = Fabric(cfg.nranks)
    outs = run_spmd(cfg.nranks, _rank_main, cfg, fabric=fabric)
    x, check, wall, _, _ = outs[0]
    resid = check.resid if check is not None else float("nan")
    passed = check.passed if check is not None else True
    if raise_on_failure and not passed:
        raise VerificationError(
            f"HPL residual {resid:.3e} exceeds threshold 16.0 "
            f"(n={cfg.n}, nb={cfg.nb}, grid={cfg.p}x{cfg.q})"
        )
    result = HPLResult(
        config=cfg,
        x=x,
        resid=resid,
        passed=passed,
        wall_seconds=max(out[2] for out in outs),
        timers=[out[3] for out in outs],
        comm_stats=[out[4] for out in outs],
    )
    result._verification = check
    return result
