#!/usr/bin/env python
"""Reproduce the paper's single-node evaluation (Section IV.A, Fig. 7).

Simulates the N=256,000 / NB=512 / 4x2 run on the Crusher machine model
and prints:

* the per-iteration timing breakdown (total, GPU-active, FACT, MPI,
  transfer) -- the series plotted in Fig. 7;
* the run-level numbers the paper reports: the ~153 TFLOPS score (78 % of
  the 4 x 49 TFLOPS DGEMM ceiling), the ~175 TFLOPS early-regime rate,
  and the ~75 % of wall time with all communication hidden.

Then it runs the *numeric* engine at a laptop-sized N on the same
schedule to show both halves of the library agree on the algorithm.

Usage::

    python examples/single_node_breakdown.py
"""

from repro import HPLConfig, run_hpl
from repro.machine.frontier import CRUSHER_NB, CRUSHER_SINGLE_NODE_N, crusher_cluster
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig
from repro.perf.report import format_breakdown_table, format_run_report


def main() -> None:
    cfg = PerfConfig(
        n=CRUSHER_SINGLE_NODE_N, nb=CRUSHER_NB, p=4, q=2, pl=4, ql=2
    )
    print("=== Simulated single Crusher node (paper Sec. IV.A) ===")
    report = simulate_run(cfg, crusher_cluster(1))
    print(format_run_report(report))
    print("Paper's anchors: 153 TFLOPS score, 78% of the 196 TFLOPS "
          "ceiling,\n~175 TFLOPS early regime, comm fully hidden for "
          "~75% of the run.\n")

    print("Per-iteration breakdown (Fig. 7 series, every 50th iteration):")
    print(format_breakdown_table(report, stride=50))

    transition = next(
        (it.k for it in report.iterations if not it.hidden), None
    )
    print(f"Two regimes: iteration time == GPU-active time up to iteration "
          f"{transition} of {len(report.iterations)},\nthen FACT + MPI + "
          "transfers take over the critical path (the paper sees ~250/500).\n")

    print("=== Numeric engine on the same schedule (small N) ===")
    num_cfg = HPLConfig(n=512, nb=64, p=2, q=2, fact_threads=4)
    result = run_hpl(num_cfg)
    print(f"n={num_cfg.n}: residual {result.resid:.3e} -> "
          f"{'PASSED' if result.passed else 'FAILED'}")


if __name__ == "__main__":
    main()
