#!/usr/bin/env python
"""Tuning ablations: the NB trade-off, the split fraction, and schedules.

The paper discusses three tuning decisions for Frontier-class nodes:

* **NB = 512** balances DGEMM efficiency (large NB) against overlap
  granularity and FACT/RS cost (small NB);
* the **split fraction** should make the right section just large enough
  to hide FACT + LBCAST + RS1 (50 % works best on one node);
* the **schedule** itself: classic < look-ahead < split update.

This example sweeps all three on the calibrated single-node model.

Usage::

    python examples/tuning_sweep.py
"""

from repro.config import Schedule
from repro.machine.frontier import crusher_cluster
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig

N = 256_000
CLUSTER = crusher_cluster(1)


def sweep_nb() -> None:
    print("=== NB sweep (paper: 512 balances DGEMM rate vs overlap) ===")
    print(f"{'NB':>6s} {'TFLOPS':>8s} {'hidden%':>8s}")
    for nb in (128, 256, 512, 1024, 2048):
        cfg = PerfConfig(n=(N // nb) * nb, nb=nb, p=4, q=2, pl=4, ql=2)
        report = simulate_run(cfg, CLUSTER)
        print(f"{nb:>6d} {report.score_tflops:>8.1f} "
              f"{report.hidden_time_fraction * 100:>8.1f}")
    print()


def sweep_split_fraction() -> None:
    print("=== Split-fraction sweep (paper: 50-50 optimal on one node) ===")
    print(f"{'frac':>6s} {'TFLOPS':>8s} {'hidden%':>8s}")
    for frac in (0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9):
        cfg = PerfConfig(
            n=N, nb=512, p=4, q=2, pl=4, ql=2, split_fraction=frac
        )
        report = simulate_run(cfg, CLUSTER)
        print(f"{frac:>6.2f} {report.score_tflops:>8.1f} "
              f"{report.hidden_time_fraction * 100:>8.1f}")
    print()


def sweep_schedule() -> None:
    print("=== Schedule ablation ===")
    print(f"{'schedule':>12s} {'TFLOPS':>8s} {'hidden%':>8s}")
    for sched in Schedule:
        cfg = PerfConfig(n=N, nb=512, p=4, q=2, pl=4, ql=2, schedule=sched)
        report = simulate_run(cfg, CLUSTER)
        print(f"{sched.value:>12s} {report.score_tflops:>8.1f} "
              f"{report.hidden_time_fraction * 100:>8.1f}")
    print()


def sweep_local_grid() -> None:
    print("=== Node-local grid (Sec. III.B: more columns => more sharing) ===")
    print(f"{'grid':>6s} {'T':>4s} {'TFLOPS':>8s}")
    from repro.perf.ledger import time_sharing_threads

    for pl, ql in ((8, 1), (4, 2), (2, 4), (1, 8)):
        cfg = PerfConfig(n=N, nb=512, p=pl, q=ql, pl=pl, ql=ql)
        report = simulate_run(cfg, CLUSTER)
        threads = time_sharing_threads(64, pl, ql)
        print(f"{pl}x{ql:<4d} {threads:>4d} {report.score_tflops:>8.1f}")
    print()


if __name__ == "__main__":
    sweep_nb()
    sweep_split_fraction()
    sweep_schedule()
    sweep_local_grid()
