"""Tune-then-scale as one request: a staged campaign over HTTP.

The paper's methodology in miniature — tune the blocking factor NB on a
single node (Fig. 7's sweep), pick the highest-scoring point, then run
the weak-scaling study (Fig. 8) *at* the winning NB — expressed as one
``POST /v1/campaigns``.  The coordinator expands the spec into a job
DAG: the scaling stage is born BLOCKED, the ``reduce`` stage picks the
winner from its parents' results, and the ``{"$winner": "nb"}``
placeholder resolves at launch, after the winner exists.  A 3-shard
coordinator hosts the queue, so the dependency edges routinely cross
shards.

Run with:  PYTHONPATH=src python examples/service_campaign.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.service.http import AsyncServiceClient, ServiceHTTPServer

CAMPAIGN = {
    "name": "tune-then-scale",
    "stages": [
        # Stage 1: tune NB at a fixed single-node problem.
        {"name": "tune",
         "sweep": {"kind": "sim",
                   "axes": {"nb": [128, 256, 512]},
                   "base": {"n": 64_000, "p": 4, "q": 2}}},
        # Stage 2: pick the NB with the best simulated throughput.
        {"name": "pick", "after": ["tune"],
         "kind": "reduce",
         "payload": {"metric": "score_tflops", "mode": "max"}},
        # Stage 3: weak-scale at the winning NB (resolved at launch).
        {"name": "scale", "after": ["pick"],
         "sweep": {"kind": "scale",
                   "axes": {"nnodes": [1, 4, 16]},
                   "base": {"n_single": 64_000,
                            "nb": {"$winner": "nb"}}}},
    ],
}


async def run_example(url: str) -> None:
    client = AsyncServiceClient(url, poll_initial=0.05, poll_max=1.0)

    view = await client.submit_campaign(CAMPAIGN)
    print(f"campaign {view.id} ({view.name}): {view.njobs} jobs")
    for stage in view.stages:
        print(f"  stage {stage.name:<6} {stage.kind:<7}"
              f" {len(stage.job_ids)} job(s)  after={list(stage.after)}")

    # One wait over every job id; the server releases each stage as its
    # parents finish.
    all_ids = [jid for s in view.stages for jid in s.job_ids]
    await client.wait(all_ids, timeout=600)

    final = await client.campaign(view.id)
    print(f"\ncampaign state: {final.state}")
    pick = next(s for s in final.stages if s.name == "pick")
    winner = (await client.result(pick.job_ids[0])).result
    print(f"winning NB: {winner['winner_payload']['nb']}"
          f" ({winner['value']:.1f} TFLOPS single-node)")

    scale = next(s for s in final.stages if s.name == "scale")
    print(f"\n{'nodes':>6} {'N':>9} {'TFLOPS':>9} {'hidden%':>8}")
    rows = []
    for jid in scale.job_ids:
        r = (await client.result(jid)).result
        rows.append((r["nnodes"], r["n"], r["tflops"],
                     r["hidden_time_fraction"]))
    for nnodes, n, tflops, hidden in sorted(rows):
        print(f"{nnodes:>6} {n:>9} {tflops:>9.1f} {100 * hidden:>7.1f}%")

    dag = await client.campaign_dag(view.id)
    edges = sum(len(n["depends_on"]) for n in dag.nodes)
    print(f"\nDAG: {len(dag.nodes)} nodes, {edges} dependency edges")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # In production this is a long-lived `repro serve --shards 3`;
        # here the coordinator, its shards, and the client share one
        # process.
        with ServiceHTTPServer(workdir, port=0, workers=2,
                               shards=3) as server:
            asyncio.run(run_example(server.url))


if __name__ == "__main__":
    main()
