"""Batch runs over HTTP: submit a sweep, gather it async, reuse results.

A small-scale version of how ``benchmarks/bench_fig8_scaling.py``
regenerates Figure 8, now through the full networked stack: a
``ServiceHTTPServer`` (what ``repro serve`` runs) hosts the queue, the
cache, and a two-slot multiprocess worker pool; an ``AsyncServiceClient``
submits the grid over the socket and gathers the points with
exponential-backoff polling; resubmitting the same sweep is served
entirely from the content-addressed cache without running anything.

Run with:  PYTHONPATH=src python examples/service_sweep.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.service import Sweep
from repro.service.http import AsyncServiceClient, ServiceHTTPServer

# A 2 x 2 x 2 = 8-point grid over problem size, blocking factor, and
# split fraction, simulated on the Crusher single-node model.
SWEEP = Sweep(
    kind="sim",
    axes={
        "n": [64_000, 128_000],
        "nb": [256, 512],
        "split_fraction": [0.3, 0.5],
    },
    base={"p": 4, "q": 2},
)


async def run_example(url: str) -> None:
    client = AsyncServiceClient(url, poll_initial=0.05, poll_max=1.0)

    receipt = await client.submit_sweep(SWEEP)
    print(f"queued {len(receipt.new)} jobs on {url}")

    views = await client.wait(receipt.job_ids, timeout=600)
    states = [v.state for v in views.values()]
    print(f"gathered {states.count('DONE')} completed point(s)\n")

    print(f"{'N':>8} {'NB':>5} {'frac':>5} {'TFLOPS':>8} {'hidden%':>8}")
    for jid in receipt.job_ids:
        job = await client.job(jid)
        r = views[jid].result
        print(f"{r['n']:>8} {r['nb']:>5}"
              f" {job.payload['split_fraction']:>5.2f}"
              f" {r['score_tflops']:>8.1f}"
              f" {100 * r['hidden_time_fraction']:>8.1f}")

    # Identical resubmission: served from cache, nothing runs.
    again = await client.submit_sweep(SWEEP)
    print(f"\nresubmitted: {len(again.cached)} of "
          f"{len(again.job_ids)} points served from cache")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # In production this is a long-lived `repro serve` process and
        # the clients live on other hosts; here both share one process.
        with ServiceHTTPServer(workdir, port=0, workers=2) as server:
            asyncio.run(run_example(server.url))


if __name__ == "__main__":
    main()
