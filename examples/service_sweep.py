"""Batch runs via the service: submit a sweep, drain it, reuse results.

A small-scale version of how ``benchmarks/bench_fig8_scaling.py``
regenerates Figure 8: each grid point becomes a job in the persistent
queue, a two-slot multiprocess pool drains it, and resubmitting the
same sweep is served entirely from the content-addressed cache.

Run with:  PYTHONPATH=src python examples/service_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.service import Service, Sweep


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        service = Service(workdir)

        # A 2 x 2 x 2 = 8-point grid over problem size, blocking factor,
        # and split fraction, simulated on the Crusher single-node model.
        sweep = Sweep(
            kind="sim",
            axes={
                "n": [64_000, 128_000],
                "nb": [256, 512],
                "split_fraction": [0.3, 0.5],
            },
            base={"p": 4, "q": 2},
        )

        receipt = service.submit_sweep(sweep)
        print(f"queued {len(receipt.new)} jobs")

        summary = service.run_workers(n=2)
        print(f"pool: {summary.completed} completed, "
              f"{summary.failed} failed, {summary.retried} retried\n")

        print(f"{'N':>8} {'NB':>5} {'frac':>5} {'TFLOPS':>8} {'hidden%':>8}")
        results = service.results(receipt.job_ids)
        for jid in receipt.job_ids:
            job, r = service.job(jid), results[jid]
            print(f"{r['n']:>8} {r['nb']:>5}"
                  f" {job.payload['split_fraction']:>5.2f}"
                  f" {r['score_tflops']:>8.1f}"
                  f" {100 * r['hidden_time_fraction']:>8.1f}")

        # Identical resubmission: served from cache, nothing runs.
        again = service.submit_sweep(sweep)
        print(f"\nresubmitted: {len(again.cached)} of "
              f"{len(again.job_ids)} points served from cache")


if __name__ == "__main__":
    main()
