#!/usr/bin/env python
"""Project the model to the full Frontier machine (the Top500 headline).

The paper's introduction: Frontier debuted at #1 in June 2022 with a
1.102 ExaFLOPS HPL score produced by (a variant of) this very code.  This
example pushes the calibrated single-node model through the weak-scaling
machinery to all 9,408 nodes and compares.

Honesty note: the communication model distinguishes only on-node Infinity
Fabric from off-node NIC links; it carries **no dragonfly topology,
congestion, or variability effects** -- exactly the "specialized
communication algorithms ... network topology" concerns the paper defers
to future work.  So the projection lands *above* the measured score
(~1.26 vs 1.102 EF): the gap is, in effect, the model's estimate of what
full-machine network reality cost.

Usage::

    python examples/frontier_full_system.py        (~15 s)
"""

from repro.machine.frontier import (
    FRONTIER_NODES,
    FRONTIER_TOP500_TFLOPS,
    frontier_cluster,
)
from repro.machine.power_model import energy_of_run
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig
from repro.perf.scaling import choose_grid, node_local_grid, scaled_n


def main() -> None:
    nranks = FRONTIER_NODES * 8
    p, q = choose_grid(nranks)
    pl, ql = node_local_grid(p, q)
    n = scaled_n(FRONTIER_NODES, 256_000, 512)
    print(f"Frontier, June 2022: {FRONTIER_NODES} nodes, {nranks} GCDs")
    print(f"grid {p} x {q} (node-local {pl} x {ql}), N = {n:,}, "
          f"{n // 512:,} iterations\n")
    cfg = PerfConfig(n=n, nb=512, p=p, q=q, pl=pl, ql=ql)
    cluster = frontier_cluster()
    report = simulate_run(cfg, cluster)

    ef = report.score_tflops / 1e6
    measured = FRONTIER_TOP500_TFLOPS / 1e6
    print(f"modeled score   : {ef:.3f} EFLOPS")
    print(f"Top500 measured : {measured:.3f} EFLOPS "
          f"(model/reality = {ef / measured:.2f}; the excess is the "
          "un-modeled\n                  full-machine network reality the "
          "paper defers to future work)")
    print(f"modeled runtime : {report.makespan / 3600:.1f} hours")

    energy = energy_of_run(report, cluster.node, node_count=FRONTIER_NODES)
    print(f"modeled power   : {energy.mean_total_w / 1e6:.1f} MW "
          f"(Frontier's HPL submission drew ~21 MW)")
    print(f"efficiency      : {energy.gflops_per_w:.1f} GFLOPS/W "
          "(Green500 June 2022 credited Frontier with ~52)")


if __name__ == "__main__":
    main()
