#!/usr/bin/env python
"""Quickstart: solve a distributed HPL system and verify it.

Runs the full benchmark pipeline -- matrix generation on a 2x2
block-cyclic process grid (four simulated MPI ranks in-process), the
split-update factorization schedule from the paper, the distributed
backsolve, and HPL's residual acceptance test.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import HPLConfig, run_hpl
from repro.hpl.matrix import generate_global


def main() -> None:
    cfg = HPLConfig(
        n=256,  # global problem size
        nb=32,  # blocking factor
        p=2,  # process-grid rows
        q=2,  # process-grid columns
        fact_threads=2,  # threads in the tiled panel factorization
    )
    print(f"Solving an {cfg.n} x {cfg.n} system on a {cfg.p} x {cfg.q} grid "
          f"({cfg.nranks} simulated ranks, schedule={cfg.schedule.value})...")
    result = run_hpl(cfg)

    print(f"residual  : {result.resid:.3e}  "
          f"({'PASSED' if result.passed else 'FAILED'}; HPL threshold 16)")
    print(f"wall time : {result.wall_seconds:.2f} s (numeric engine, "
          "not the modeled hardware)")

    # Cross-check against a serial ground truth -- the generator is
    # grid-independent, so we can rebuild the same system with numpy.
    a, b = generate_global(cfg.n, cfg.seed)
    x_ref = np.linalg.solve(a, b)
    err = float(np.max(np.abs(result.x - x_ref)))
    print(f"max |x - x_numpy| = {err:.2e}")

    # Phase accounting from rank 0's ledger.
    timers = result.timers[0]
    for label in ("FACT", "LBCAST", "RS", "UPDATE"):
        total = timers.total(label)
        print(f"{label:7s}: {total.flops / 1e6:9.2f} Mflops executed, "
              f"{total.seconds * 1e3:7.1f} ms wall")

    # The measured per-iteration work profile: UPDATE decays quadratically
    # while FACT decays linearly -- the arithmetic behind the paper's
    # "two regimes" (see examples/single_node_breakdown.py for the modeled
    # hardware version).
    from repro.perf.measured import measured_breakdown, measured_chart

    print()
    print(measured_chart(measured_breakdown(result.timers)))


if __name__ == "__main__":
    main()
