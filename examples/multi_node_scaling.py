#!/usr/bin/env python
"""Reproduce the paper's weak-scaling study (Section IV.B, Fig. 8).

Scales the benchmark from 1 to 128 Crusher nodes exactly the way the
paper does: square-or-2:1 grids, node-local grids maximizing process
columns (1x8 once Q >= 8), N grown as sqrt(nodes) to keep HBM full, and
NB = 512 with the 50-50 split throughout.  The paper measures 17.75
PFLOPS at 128 nodes -- over 90 % weak-scaling efficiency.

Usage::

    python examples/multi_node_scaling.py [max_doublings]
"""

import sys

from repro.perf.report import format_scaling_table
from repro.perf.scaling import weak_scaling, weak_scaling_efficiency


def main() -> None:
    max_doublings = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    counts = [2**i for i in range(max_doublings + 1)]
    print(f"Weak scaling over {counts} Crusher nodes "
          "(Fig. 8; paper: 17.75 PFLOPS at 128 nodes, >90% efficiency)\n")
    points = weak_scaling(counts)
    print(format_scaling_table(points))

    effs = weak_scaling_efficiency(points)
    final = points[-1]
    print(f"{final.nnodes} nodes -> {final.tflops / 1000:.2f} PFLOPS at "
          f"{effs[-1] * 100:.1f}% efficiency.")
    if final.nnodes == 128:
        print("Paper: 17.75 PFLOPS (a score that would have ranked 38th "
              "on the Nov-2022 Top500).")


if __name__ == "__main__":
    main()
