#!/usr/bin/env python
"""The paper's Section V argument, made quantitative.

"As the improvement of computational throughput outpaces inter-process
communication performance, the performance bottlenecks shift away from
being bound by computation rate and lowers overall performance, as
measured by efficiency of peak computational throughput."

This example scales the GPU's DGEMM rate (a stand-in for the next
accelerator generations) while freezing the CPU, host links, and network,
re-runs the single-node simulation, and shows the efficiency collapse and
the disappearance of the fully-hidden window.  It also prices each
configuration's energy with the node power model.

Usage::

    python examples/future_architectures.py
"""

from repro.machine.frontier import crusher_node
from repro.machine.power_model import energy_of_run
from repro.perf.generations import generational_sweep


def main() -> None:
    print("GPU compute scaled vs today's MI250X; network/CPU held fixed.")
    print(f"{'scale':>6s} {'score TF':>9s} {'ceiling':>8s} {'eff %':>7s} "
          f"{'hidden %':>9s} {'GF/W':>6s}")
    node = crusher_node()
    for pt in generational_sweep([0.5, 1.0, 2.0, 4.0, 8.0]):
        energy = energy_of_run(pt.report, node)
        print(f"{pt.compute_scale:>6.1f} {pt.score_tflops:>9.1f} "
              f"{pt.ceiling_tflops:>8.1f} {pt.efficiency * 100:>7.1f} "
              f"{pt.hidden_time_fraction * 100:>9.1f} "
              f"{energy.gflops_per_w:>6.1f}")
    print(
        "\nAt 2x compute the hidden-communication window is already gone;\n"
        "by 8x the benchmark runs at ~15% of the accelerator's capability --\n"
        "the latency- and communication-dominated tail regime the paper's\n"
        "final paragraph warns future systems about."
    )


if __name__ == "__main__":
    main()
