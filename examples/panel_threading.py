#!/usr/bin/env python
"""Reproduce the FACT multi-threading study (Section III.A, Fig. 5).

Two parts:

1. The Fig. 5 sweep on the calibrated CPU model: GFLOPS of factoring an
   ``M x 512`` panel for M in multiples of NB and 1..64 threads.  The
   paper's takeaways -- threading helps dramatically, and many cores pay
   off even at modest M -- are visible in the table.

2. A *real* tiled multi-threaded factorization with the library's worker
   pool, verifying the algorithm is exactly thread-count-invariant (this
   box may not have 64 cores, so we check correctness, not speed).

Usage::

    python examples/panel_threading.py
"""

import numpy as np

from repro.blas.threaded import TileWorkerPool
from repro.config import HPLConfig, Schedule
from repro.grid.block_cyclic import local_indices
from repro.hpl.pfact import factor_panel
from repro.perf.factsim import fact_sweep
from repro.perf.report import format_fact_table
from repro.simmpi import run_spmd


def model_sweep() -> None:
    print("=== Fig. 5 (model): FACT GFLOPS, M x 512 panel ===")
    print(format_fact_table(fact_sweep()))
    curves = {c.threads: c for c in fact_sweep()}
    speedup = curves[64].gflops[-1] / curves[1].gflops[-1]
    print(f"64-thread speedup over 1 thread at the largest M: {speedup:.1f}x\n")


def real_threaded_fact() -> None:
    print("=== Real tiled multi-threaded panel factorization ===")
    m, nb, p = 256, 32, 2
    rng = np.random.default_rng(7)
    a_global = np.asfortranarray(rng.standard_normal((m, nb)))

    def factor(threads: int):
        cfg = HPLConfig(
            n=m, nb=nb, p=p, q=1, depth=0, schedule=Schedule.CLASSIC,
            fact_threads=threads,
        )

        def main(comm):
            pos = local_indices(m, nb, comm.rank, p)
            local = np.asfortranarray(a_global[pos, :])
            with TileWorkerPool(threads) as pool:
                panel = factor_panel(
                    comm, local, pos, 0, 0, nb, cfg, pool, comm.rank, p
                )
            return panel.w, panel.ipiv

        return run_spmd(p, main)[0]

    w1, ipiv1 = factor(1)
    for threads in (2, 4, 8):
        w, ipiv = factor(threads)
        identical = np.array_equal(w, w1) and np.array_equal(ipiv, ipiv1)
        print(f"T={threads}: factorization bitwise identical to T=1: {identical}")
    print("\n(The tiling assigns NB-row tiles round-robin -- Fig. 4 -- so "
          "each row's\narithmetic history is independent of the thread "
          "count.)")


if __name__ == "__main__":
    model_sweep()
    real_threaded_fact()
