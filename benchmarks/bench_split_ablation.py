"""Section III.C ablation: the split fraction and the schedule ladder.

The paper leaves the split fraction as a tuning input and reports that a
50-50 left-right split is optimal on a single Frontier/Crusher node; this
bench sweeps the fraction and the schedule on the calibrated model and
writes the resulting curves.
"""

from __future__ import annotations

import io

import pytest

from repro.config import Schedule
from repro.machine.frontier import crusher_cluster
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig

from .conftest import write_artifact

CLUSTER = crusher_cluster(1)
FRACTIONS = [0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9]


def _score(frac: float) -> tuple[float, float]:
    cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2, split_fraction=frac)
    rep = simulate_run(cfg, CLUSTER)
    return rep.score_tflops, rep.hidden_time_fraction


def test_split_fraction_sweep(benchmark, artifact_dir):
    """'splitting the local A matrix in half ... works optimally.'"""
    results = {frac: _score(frac) for frac in FRACTIONS[:-1]}
    results[FRACTIONS[-1]] = benchmark.pedantic(
        _score, args=(FRACTIONS[-1],), rounds=1, iterations=1
    )
    out = io.StringIO()
    out.write(f"{'fraction':>10s}{'TFLOPS':>10s}{'hidden%':>10s}\n")
    for frac in FRACTIONS:
        score, hidden = results[frac]
        out.write(f"{frac:>10.2f}{score:>10.1f}{hidden * 100:>10.1f}\n")
    write_artifact("split_fraction_sweep.txt", out.getvalue())

    best = max(results, key=lambda f: results[f][0])
    assert abs(best - 0.5) <= 0.1


def test_schedule_ladder(benchmark, artifact_dir):
    """Each optimization layer helps at the full problem size."""

    def ladder():
        scores = {}
        for sched in Schedule:
            cfg = PerfConfig(
                n=256_000, nb=512, p=4, q=2, pl=4, ql=2, schedule=sched
            )
            scores[sched] = simulate_run(cfg, CLUSTER).score_tflops
        return scores

    scores = benchmark.pedantic(ladder, rounds=1, iterations=1)
    out = "\n".join(f"{s.value:>12s}: {v:8.1f} TFLOPS" for s, v in scores.items())
    write_artifact("schedule_ladder.txt", out + "\n")
    assert (
        scores[Schedule.SPLIT_UPDATE]
        > scores[Schedule.LOOKAHEAD]
        > scores[Schedule.CLASSIC]
    )


def test_hidden_fraction_peaks_at_half(benchmark):
    """The ~75% hidden-time figure specifically needs the 50-50 split."""
    _, hidden50 = benchmark.pedantic(_score, args=(0.5,), rounds=1, iterations=1)
    _, hidden10 = _score(0.1)
    assert hidden50 > 0.65
    assert hidden50 > hidden10
