"""Section IV.A's reported numbers, regenerated.

The single-node narrative quotes a chain of figures; this bench computes
each one on the models and writes a paper-vs-measured table:

* DGEMM at NB=512 achieves 49 TFLOPS per MI250X (24.5 per GCD);
* the achievable node ceiling is 4 x 49 = 196 TFLOPS;
* the early fully-hidden regime runs at ~90 % of that limit (~175);
* the full run scores ~153 TFLOPS = 78 % of the ceiling;
* all MPI hidden for ~75 % of execution *time* (Sec. III.C) and ~50 % of
  *iterations* (Sec. V).
"""

from __future__ import annotations

import io

import pytest

from repro.machine.frontier import crusher_cluster, crusher_node
from repro.machine.gemm_model import dgemm_tflops
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig

from .conftest import write_artifact

CFG = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)


@pytest.fixture(scope="module")
def report():
    return simulate_run(CFG, crusher_cluster(1))


def test_headline_numbers(benchmark, report, artifact_dir):
    gpu = crusher_node().gpu
    per_gcd = benchmark(dgemm_tflops, gpu, 60_000, 120_000, 512)
    per_mi250x = 2 * per_gcd
    ceiling = 8 * per_gcd
    rows = [
        ("DGEMM per MI250X @ NB=512 (TFLOPS)", 49.0, per_mi250x),
        ("achievable node ceiling (TFLOPS)", 196.0, ceiling),
        ("early-regime rate (TFLOPS)", 175.0, report.early_regime_tflops()),
        ("final score (TFLOPS)", 153.0, report.score_tflops),
        ("score / ceiling", 0.78, report.score_tflops / ceiling),
        ("hidden fraction of wall time", 0.75, report.hidden_time_fraction),
        ("hidden fraction of iterations", 0.50, report.hidden_iteration_fraction),
    ]
    out = io.StringIO()
    out.write(f"{'quantity':<40s}{'paper':>10s}{'ours':>10s}\n")
    for name, paper, ours in rows:
        out.write(f"{name:<40s}{paper:>10.2f}{ours:>10.2f}\n")
    write_artifact("headline_numbers.txt", out.getvalue())

    assert per_mi250x == pytest.approx(49.0, rel=0.03)
    assert report.score_tflops == pytest.approx(153.0, rel=0.08)
    assert report.score_tflops / ceiling == pytest.approx(0.78, abs=0.05)
    assert report.early_regime_tflops() == pytest.approx(175.0, rel=0.06)
    assert report.hidden_time_fraction == pytest.approx(0.75, abs=0.07)
    assert report.hidden_iteration_fraction == pytest.approx(0.50, abs=0.08)


def test_nb512_is_the_sweet_spot(benchmark):
    """'we typically choose NB = 512 to strike this balance.'"""

    def score(nb: int) -> float:
        cfg = PerfConfig(n=(256_000 // nb) * nb, nb=nb, p=4, q=2, pl=4, ql=2)
        return simulate_run(cfg, crusher_cluster(1)).score_tflops

    s512 = benchmark.pedantic(score, args=(512,), rounds=1, iterations=1)
    assert s512 > score(128)
    assert s512 > score(2048)
