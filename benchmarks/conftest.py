"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or a set of
reported numbers), asserts the *shape* claims hold, and writes the
regenerated series to ``benchmarks/out/`` so the artifacts can be
compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, content: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(content)
