"""Simulator-speed benchmark: fast engine vs the per-task object engine.

The vectorized closed-form timeline (``fidelity="fast"``) exists to make
the Fig. 8 sweep and service-tier sim jobs cheap; this benchmark keeps
that claim honest.  For each Fig. 8 sweep point it times the full
object engine against the fast engine twice -- *cold* (the memoized
:func:`~repro.perf.fastledger.run_cost_arrays` cache cleared first, so
the time includes building every cost array) and *warm* (arrays cached,
the realistic service-tier steady state) -- and asserts the two engines
still land on bit-identical makespans while doing it.

The committed trajectory (``BENCH_sim_speed.json`` at the repo root)
records every entry so a regression is a diff, not an anecdote.  The
gate: every sweep point must show a >= 10x cold speedup.

Run directly for more repeats::

    PYTHONPATH=src python benchmarks/bench_sim_speed.py --repeats 5

or through pytest (the CI smoke step)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sim_speed.py -q
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

from repro.machine.frontier import crusher_cluster
from repro.perf.fastledger import run_cost_arrays
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig
from repro.perf.scaling import choose_grid, node_local_grid, scaled_n

try:
    from .conftest import write_artifact
except ImportError:  # direct `python benchmarks/bench_sim_speed.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import write_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_sim_speed.json"

#: The acceptance gate: cold fast-engine runs (cost arrays rebuilt from
#: scratch) must beat the object engine by at least this factor on every
#: Fig. 8 sweep point.  Measured headroom is 12-19x, so tripping this
#: means the fast path lost its reason to exist, not merely a bad timer
#: sample.
SPEEDUP_FLOOR = 10.0

#: Fig. 8 sweep points (node counts); 128 nodes is the paper's headline
#: scale and this simulator's largest iteration count (5657 blocks).
NODE_COUNTS = [1, 8, 128]


def sweep_config(nnodes: int, n_single: int = 256_000,
                 nb: int = 512) -> PerfConfig:
    """The exact config ``weak_scaling`` builds for this node count."""
    gpus = crusher_cluster(nnodes).node.gpus
    p, q = choose_grid(nnodes * gpus)
    pl, ql = (p, q) if nnodes == 1 else node_local_grid(p, q, gpus)
    return PerfConfig(n=scaled_n(nnodes, n_single, nb), nb=nb,
                      p=p, q=q, pl=pl, ql=ql)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_point(nnodes: int, repeats: int = 3) -> dict:
    """Time both engines on one Fig. 8 sweep point."""
    cfg = sweep_config(nnodes)
    cluster = crusher_cluster(nnodes)

    full_s, full = _best_of(
        lambda: simulate_run(cfg, cluster, fidelity="full"), max(2, repeats - 1)
    )

    def fast_cold():
        run_cost_arrays.cache_clear()
        return simulate_run(cfg, cluster, fidelity="fast")

    cold_s, fast = _best_of(fast_cold, repeats)
    warm_s, _ = _best_of(
        lambda: simulate_run(cfg, cluster, fidelity="fast"), repeats
    )
    return {
        "nnodes": nnodes,
        "n": cfg.n,
        "grid": f"{cfg.p}x{cfg.q}",
        "iterations": cfg.nblocks,
        "full_s": round(full_s, 6),
        "fast_cold_s": round(cold_s, 6),
        "fast_warm_s": round(warm_s, 6),
        "speedup_cold": round(full_s / cold_s, 2),
        "speedup_warm": round(full_s / warm_s, 2),
        "makespan_equal": fast.makespan == full.makespan,
        "score_equal": fast.score_tflops == full.score_tflops,
    }


def run_all(repeats: int = 3) -> dict:
    return {
        "t": time.time(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "repeats": repeats,
        "python": sys.version.split()[0],
        "points": [run_point(nnodes, repeats) for nnodes in NODE_COUNTS],
    }


def append_trajectory(entry: dict, path: pathlib.Path = TRAJECTORY) -> list:
    """Append one benchmark entry to the committed trajectory file."""
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = []
    history.append(entry)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    return history


def check_entry(entry: dict) -> None:
    """The claims every trajectory entry must satisfy."""
    points = entry["points"]
    assert [pt["nnodes"] for pt in points] == NODE_COUNTS
    for pt in points:
        name = f"{pt['nnodes']}-node"
        assert pt["makespan_equal"], \
            f"{name}: fast and full engines disagree on makespan"
        assert pt["score_equal"], \
            f"{name}: fast and full engines disagree on the score"
        assert pt["speedup_cold"] >= SPEEDUP_FLOOR, \
            f"{name}: cold speedup {pt['speedup_cold']}x below the" \
            f" {SPEEDUP_FLOOR}x floor ({pt['full_s']}s full vs" \
            f" {pt['fast_cold_s']}s fast)"
        assert pt["speedup_warm"] >= pt["speedup_cold"] * 0.9, \
            f"{name}: warm runs slower than cold -- memoization broken?" \
            f" ({pt['speedup_warm']}x warm vs {pt['speedup_cold']}x cold)"


def test_sim_speed_trajectory():
    """CI smoke: time the sweep points, gate >= 10x, append trajectory."""
    entry = run_all(repeats=3)
    check_entry(entry)
    append_trajectory(entry)
    write_artifact("sim_speed.json", json.dumps(entry, indent=1,
                                                sort_keys=True))


def main() -> int:
    parser = argparse.ArgumentParser(description="simulator-speed benchmark")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per engine (best-of)")
    parser.add_argument("--no-append", action="store_true",
                        help="print the entry without touching the"
                             " trajectory file")
    args = parser.parse_args()
    entry = run_all(repeats=args.repeats)
    check_entry(entry)
    if not args.no_append:
        append_trajectory(entry)
        write_artifact("sim_speed.json", json.dumps(entry, indent=1,
                                                    sort_keys=True))
    for pt in entry["points"]:
        print(f"{pt['nnodes']:>4} node(s) N={pt['n']:>8}"
              f" ({pt['iterations']} iters): full {pt['full_s']*1e3:8.1f} ms,"
              f" fast cold {pt['fast_cold_s']*1e3:7.2f} ms"
              f" ({pt['speedup_cold']}x), warm {pt['fast_warm_s']*1e3:7.2f} ms"
              f" ({pt['speedup_warm']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
