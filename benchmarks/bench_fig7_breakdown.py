"""Figure 7: per-iteration timing breakdown, single Crusher node.

Regenerates the N=256,000 / NB=512 / 4x2 / 50-50-split run on the machine
model, writes the full per-iteration series (total, GPU-active, FACT,
MPI, transfer -- the five series plotted in Fig. 7), and asserts the
figure's qualitative content: the two regimes, the transition point, and
the stacked components taking over the tail.
"""

from __future__ import annotations

import pytest

from repro.machine.frontier import crusher_cluster
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig
from repro.perf.report import format_breakdown_table, format_run_report

from .conftest import write_artifact

CFG = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)


@pytest.fixture(scope="module")
def report():
    return simulate_run(CFG, crusher_cluster(1))


def test_fig7_series(benchmark, report, artifact_dir):
    fresh = benchmark.pedantic(
        simulate_run, args=(CFG, crusher_cluster(1)), rounds=1, iterations=1
    )
    write_artifact(
        "fig7_breakdown.txt",
        format_run_report(fresh) + "\n" + format_breakdown_table(fresh, stride=10),
    )
    assert len(fresh.iterations) == 500


def test_fig7_early_regime_gpu_bound(report):
    """'At the beginning ... per-iteration time precisely corresponds to
    the total GPU time' -- all phases hidden."""
    head = report.iterations[:200]
    assert all(it.hidden for it in head)
    for it in head[:50]:
        assert it.time == pytest.approx(it.gpu_active, rel=0.02)


def test_fig7_transition_around_iteration_250(report):
    """'Around iteration 250, the left section ... is too small to
    adequately hide the RS2 communication.'"""
    first_exposed = next(it.k for it in report.iterations if not it.hidden)
    assert 200 <= first_exposed <= 300


def test_fig7_tail_critical_path_is_fact_mpi_transfer(report):
    """'These combined phases become the critical path ... for the
    remainder of the benchmark execution.'"""
    tail = report.iterations[-120:-2]
    assert all(not it.hidden for it in tail)
    for it in tail:
        stacked = it.fact + it.mpi + it.transfer
        assert stacked > 0.75 * it.time

    head_rate = sum(it.gpu_active for it in report.iterations[:50]) / 50
    tail_rate = sum(it.gpu_active for it in tail) / len(tail)
    assert tail_rate < 0.2 * head_rate  # GPU activity off the critical path


def test_fig7_iteration_time_shrinks(report):
    times = [it.time for it in report.iterations]
    assert sum(times[:100]) > 5 * sum(times[-100:])
