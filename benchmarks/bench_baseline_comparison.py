"""Related-work baseline: HBM-resident (the paper) vs host-resident (prior).

The paper's Sections I-III argue that the classic pipelined host-resident
design (Fatica 2009 and successors) became impractical on MI250X-class
accelerators, forcing the all-in-HBM layout.  This bench quantifies the
claim on the calibrated models and writes the comparison artifact.
"""

from __future__ import annotations

import io

import pytest

from repro.machine.frontier import crusher_cluster
from repro.machine.spec import LinkSpec
from repro.perf.hostresident import (
    crossover_sweep,
    required_nb_for_device,
    simulate_host_resident,
)
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig

from .conftest import write_artifact

CLUSTER = crusher_cluster(1)
FULL = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)


def test_design_comparison(benchmark, artifact_dir):
    resident = benchmark.pedantic(
        simulate_run, args=(FULL, CLUSTER), rounds=1, iterations=1
    )
    baseline = simulate_host_resident(FULL, CLUSTER)
    out = io.StringIO()
    out.write("Single Crusher node, N=256000, NB=512:\n")
    out.write(f"  HBM-resident (paper)  : {resident.score_tflops:8.1f} TFLOPS\n")
    out.write(f"  host-resident pipeline: {baseline.score_tflops:8.1f} TFLOPS "
              f"({baseline.device_utilization * 100:.1f}% device utilization)\n")
    nb_needed = required_nb_for_device(CLUSTER.node.h2d, baseline.device_tflops)
    out.write(f"  NB needed to feed the device over the host link: {nb_needed}\n")
    write_artifact("baseline_comparison.txt", out.getvalue())

    assert resident.score_tflops > 10 * baseline.score_tflops
    assert nb_needed > 4_000  # "unreasonably large blocking parameters"


def test_crossover_history(benchmark, artifact_dir):
    """Pipelining was fine for ~1-TFLOPS GPUs over PCIe gen3; it starves
    an MI250X even over Infinity Fabric."""
    pcie3 = LinkSpec(12.0, 5e-6)
    scales = [1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0]
    sweep = benchmark.pedantic(
        crossover_sweep, args=(CLUSTER,),
        kwargs={"pcie": pcie3, "scales": scales},
        rounds=1, iterations=1,
    )
    out = io.StringIO()
    out.write(f"{'device TFLOPS':>14s}{'streamed':>10s}{'util %':>8s}{'bound':>9s}\n")
    for _, pt in sweep:
        out.write(
            f"{pt.device_tflops:>14.2f}{pt.streamed_tflops:>10.2f}"
            f"{pt.device_utilization * 100:>8.1f}"
            f"{'compute' if pt.compute_bound else 'link':>9s}\n"
        )
    write_artifact("baseline_crossover.txt", out.getvalue())

    assert sweep[0][1].compute_bound  # sub-TFLOPS era: link kept up
    assert not sweep[-1][1].compute_bound  # MI250X era: starved
    utils = [pt.device_utilization for _, pt in sweep]
    assert utils[-1] < 0.1
