"""Figure 5: FACT GFLOPS vs panel height, per thread count.

Regenerates the sweep (NB = 512, M in multiples of NB, threads 1..64 in
powers of two) on the calibrated CPU model, asserts the paper's stated
takeaways, and benchmarks both the model sweep and the *real* tiled
multi-threaded factorization kernel.
"""

from __future__ import annotations

import numpy as np

from repro.blas.threaded import TileWorkerPool
from repro.config import HPLConfig, Schedule
from repro.grid.block_cyclic import local_indices
from repro.hpl.pfact import factor_panel
from repro.perf.factsim import fact_sweep
from repro.perf.report import format_fact_table
from repro.simmpi import run_spmd

from .conftest import write_artifact


def test_fig5_series(benchmark, artifact_dir):
    """The Fig. 5 table: rates rise with threads and with M."""
    curves = benchmark(fact_sweep)
    table = format_fact_table(curves)
    write_artifact("fig5_fact_gflops.txt", table)

    by_threads = {c.threads: c for c in curves}
    big = -1
    # "performance ... considerably improved through multi-threading"
    assert by_threads[64].gflops[big] > 5 * by_threads[1].gflops[big]
    # "large numbers of CPU cores benefit ... even relatively small sizes"
    mid = by_threads[1].m_values.index(16 * 512)
    assert by_threads[16].gflops[mid] > 2 * by_threads[2].gflops[mid]
    # every doubling of threads helps at the largest M (up to tile limit)
    rates = [by_threads[t].gflops[big] for t in (1, 2, 4, 8, 16, 32, 64)]
    assert all(b > a for a, b in zip(rates, rates[1:]))


def test_fig5_real_threaded_kernel(benchmark):
    """Benchmark the actual tiled multi-threaded factorization (the
    measured counterpart of the modeled sweep; this host may have a
    single core, so only correctness-per-thread is asserted)."""
    m, nb = 256, 32
    rng = np.random.default_rng(3)
    a_global = np.asfortranarray(rng.standard_normal((m, nb)))
    cfg = HPLConfig(
        n=m, nb=nb, p=1, q=1, depth=0, schedule=Schedule.CLASSIC, fact_threads=4
    )

    def run_fact():
        def main(comm):
            pos = local_indices(m, nb, 0, 1)
            local = np.asfortranarray(a_global[pos, :])
            with TileWorkerPool(cfg.fact_threads) as pool:
                return factor_panel(comm, local, pos, 0, 0, nb, cfg, pool, 0, 1)

        return run_spmd(1, main)[0]

    panel = benchmark(run_fact)
    assert panel.ipiv.shape == (nb,)
