"""Section III.B: CPU core time-sharing arithmetic and its payoff.

Regenerates the paper's worked example (a 2x4 node-local grid leaves 42
cores idle without sharing; with sharing every FACT uses P + Cbar cores)
and sweeps the node-local grid shape on the performance model to show the
time-sharing factor's effect on the score.
"""

from __future__ import annotations

import io

from repro.binding import compute_bindings, crusher_topology, validate_bindings
from repro.machine.frontier import crusher_cluster
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig, time_sharing_threads

from .conftest import write_artifact

LOCAL_GRIDS = [(8, 1), (4, 2), (2, 4), (1, 8)]


def test_binding_table(benchmark, artifact_dir):
    """T = 1 + Cbar/pl for every node-local grid; all invariants hold."""
    topo = crusher_topology()

    def build_all():
        return {
            (pl, ql): compute_bindings(pl, ql, topo) for pl, ql in LOCAL_GRIDS
        }

    bindings = benchmark(build_all)
    out = io.StringIO()
    out.write(f"{'grid':>6s}{'T':>5s}{'FACT cores':>12s}{'idle in FACT':>14s}\n")
    for (pl, ql), bs in bindings.items():
        validate_bindings(bs, topo)
        t = bs[0].nthreads
        fact_cores = pl * t
        waiting_roots = pl * ql - pl
        idle = topo.cores - fact_cores - waiting_roots
        out.write(f"{pl}x{ql:<5d}{t:>5d}{fact_cores:>12d}{idle:>14d}\n")
    write_artifact("binding_table.txt", out.getvalue())

    # the paper's 2x4 example: naive partition would idle 42 cores...
    naive_used = 2 * 8 + 6  # two factoring ranks x one CCD + six roots
    assert topo.cores - naive_used == 42
    # ...while time-sharing idles none.
    t = bindings[(2, 4)][0].nthreads
    assert 2 * t + 6 == 64


def test_time_sharing_improves_score(benchmark, artifact_dir):
    """More node-local columns => more FACT threads => shorter tail, until
    the grid shape itself (row count) hurts other phases -- matching the
    paper's choice of 4x2 on a single node."""

    def sweep():
        rows = {}
        for pl, ql in LOCAL_GRIDS:
            cfg = PerfConfig(n=256_000, nb=512, p=pl, q=ql, pl=pl, ql=ql)
            rows[(pl, ql)] = (
                time_sharing_threads(64, pl, ql),
                simulate_run(cfg, crusher_cluster(1)).score_tflops,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = io.StringIO()
    out.write(f"{'grid':>6s}{'T':>5s}{'TFLOPS':>10s}\n")
    for (pl, ql), (t, score) in rows.items():
        out.write(f"{pl}x{ql:<5d}{t:>5d}{score:>10.1f}\n")
    write_artifact("local_grid_sweep.txt", out.getvalue())

    # 4x2 (the paper's single-node grid) beats the no-sharing extreme 8x1
    assert rows[(4, 2)][1] > rows[(8, 1)][1]


def test_fact_threads_ablation(benchmark):
    """Disabling time-sharing (T=8, plain partition) costs score at the
    paper's single-node configuration."""

    def score(threads: int) -> float:
        cfg = PerfConfig(
            n=256_000, nb=512, p=4, q=2, pl=4, ql=2, fact_threads=threads
        )
        return simulate_run(cfg, crusher_cluster(1)).score_tflops

    shared = benchmark.pedantic(score, args=(15,), rounds=1, iterations=1)
    partitioned = score(8)
    single = score(1)
    assert shared > partitioned > single
