"""Section V (discussion) and the power story, as benchmark artifacts.

* the compute-vs-network sweep: efficiency of peak collapses as GPU
  throughput scales against a fixed network -- the paper's closing
  argument;
* the energy accounting: HPL holds the node near peak draw, at a
  GFLOPS/W figure consistent with Frontier's Green500 entry.
"""

from __future__ import annotations

import io

import pytest

from repro.machine.frontier import crusher_cluster, crusher_node
from repro.machine.power_model import PowerSpec, energy_of_run
from repro.perf.generations import generational_sweep
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig

from .conftest import write_artifact


def test_generational_sweep(benchmark, artifact_dir):
    points = benchmark.pedantic(generational_sweep, rounds=1, iterations=1)
    out = io.StringIO()
    out.write(
        f"{'scale':>7s}{'score TF':>10s}{'ceiling':>9s}{'eff %':>7s}"
        f"{'hidden %':>10s}\n"
    )
    for pt in points:
        out.write(
            f"{pt.compute_scale:>7.1f}{pt.score_tflops:>10.1f}"
            f"{pt.ceiling_tflops:>9.1f}{pt.efficiency * 100:>7.1f}"
            f"{pt.hidden_time_fraction * 100:>10.1f}\n"
        )
    write_artifact("generational_sweep.txt", out.getvalue())

    effs = [pt.efficiency for pt in points]
    assert all(b < a for a, b in zip(effs, effs[1:]))  # strictly decaying
    # the 2x generation already loses the hidden window entirely
    by_scale = {pt.compute_scale: pt for pt in points}
    assert by_scale[2.0].hidden_time_fraction == 0.0
    assert by_scale[1.0].hidden_time_fraction > 0.7


def test_energy_accounting(benchmark, artifact_dir):
    cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)
    report = simulate_run(cfg, crusher_cluster(1))
    node = crusher_node()
    spec = PowerSpec()
    energy = benchmark(energy_of_run, report, node, spec)
    out = io.StringIO()
    out.write("Single-node N=256000 run:\n")
    out.write(f"  runtime        : {energy.seconds:10.1f} s\n")
    out.write(f"  energy         : {energy.joules / 1e6:10.2f} MJ\n")
    out.write(f"  mean node power: {energy.mean_node_w:10.0f} W of "
              f"{energy.peak_node_w:.0f} W peak\n")
    out.write(f"  efficiency     : {energy.gflops_per_w:10.1f} GFLOPS/W "
              "(Frontier Green500: ~52)\n")
    for part, joules in energy.components.items():
        out.write(f"    {part:<9s}: {joules / energy.joules * 100:5.1f} %\n")
    write_artifact("energy_accounting.txt", out.getvalue())

    assert energy.mean_node_w > 0.85 * energy.peak_node_w
    assert 40 <= energy.gflops_per_w <= 70
    assert energy.components["gpu"] > energy.components["cpu"]
