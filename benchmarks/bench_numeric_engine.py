"""Wall-clock benchmarks of the *numeric* engine.

These do not reproduce paper numbers (the numeric engine runs on the host
CPU through numpy/scipy, not on MI250Xs); they track the reproduction's
own performance: full solves per schedule, the panel factorization
kernel, the row-swap machinery, and the simulated-MPI collectives.
"""

from __future__ import annotations

import numpy as np

from repro.config import HPLConfig, Schedule
from repro.hpl.api import run_hpl
from repro.simmpi import run_spmd


def _solve(sched: Schedule) -> float:
    cfg = HPLConfig(
        n=96, nb=16, p=2, q=2, schedule=sched,
        depth=0 if sched is Schedule.CLASSIC else 1, check=False,
    )
    return run_hpl(cfg).wall_seconds


def test_solve_classic(benchmark):
    benchmark(_solve, Schedule.CLASSIC)


def test_solve_lookahead(benchmark):
    benchmark(_solve, Schedule.LOOKAHEAD)


def test_solve_split_update(benchmark):
    benchmark(_solve, Schedule.SPLIT_UPDATE)


def test_solve_multithreaded_fact(benchmark):
    cfg = HPLConfig(n=96, nb=16, p=2, q=2, fact_threads=4, check=False)
    benchmark(run_hpl, cfg)


def test_collectives_allgatherv(benchmark):
    """Ring allgatherv of 1 MB across 4 ranks (the RS building block)."""

    def job():
        def main(comm):
            chunk = np.zeros(32_768)  # 256 KB per rank
            return comm.allgatherv(chunk)[0].size

        return run_spmd(4, main)

    benchmark(job)


def test_collectives_panel_bcast(benchmark):
    """1ringM broadcast of a 1 MB panel buffer across 4 ranks."""

    def job():
        def main(comm):
            buf = np.zeros(131_072) if comm.rank == 0 else None
            return comm.bcast(buf, root=0, algo="1ringM").size

        return run_spmd(4, main)

    benchmark(job)


def test_pivot_allreduce(benchmark):
    """The FACT inner loop's collective: max-loc allreduce of a row."""

    def combine(a, b):
        return a if (a[0], -a[1]) >= (b[0], -b[1]) else b

    def job():
        def main(comm):
            payload = (float(comm.rank), comm.rank, np.zeros(512))
            return comm.allreduce(payload, op=combine)[0]

        return run_spmd(4, main)

    benchmark(job)
