"""Figure 8: weak scaling of the HPL score from 1 to 128 Crusher nodes.

Regenerates the paper's sweep (square-or-2:1 grids, 1x8 node-local grids
once Q >= 8, N scaled to fill HBM, NB = 512, 50-50 split) and asserts its
claims: >90 % weak-scaling efficiency at 128 nodes and a final score in
the neighborhood of the measured 17.75 PFLOPS.

This benchmark is submitted *through the batch service over HTTP*
(:mod:`repro.service.http`): a ``ServiceHTTPServer`` hosts the queue
with a resident two-slot worker pool, each node count becomes one
``scale`` job submitted by an :class:`AsyncServiceClient`, and the
points are gathered back over the socket from the content-addressed
result cache -- so resubmitting the sweep (the final test) costs
nothing and proves networked result reuse end-to-end.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

import pytest

from repro.perf.report import format_scaling_table
from repro.perf.scaling import weak_scaling_efficiency
from repro.service import Sweep
from repro.service.http import AsyncServiceClient, ServiceHTTPServer

from .conftest import write_artifact

NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128]

SWEEP = Sweep(
    kind="scale",
    axes={"nnodes": NODE_COUNTS},
    base={"n_single": 256_000, "nb": 512, "schedule": "split"},
)


@dataclass(frozen=True)
class _Point:
    """The slice of a ScalePoint the Fig. 8 table and claims consume."""

    nnodes: int
    n: int
    p: int
    q: int
    tflops: float


def _run_sweep(url: str) -> list[_Point]:
    async def gather() -> list[dict]:
        client = AsyncServiceClient(url, poll_initial=0.05, poll_max=1.0,
                                    rng=random.Random(8))
        receipt = await client.submit_sweep(SWEEP)
        views = await client.wait(receipt.job_ids, timeout=1800)
        results = []
        for jid in receipt.job_ids:
            assert views[jid].state == "DONE", \
                f"scale job {jid} ended {views[jid].state}"
            results.append(views[jid].result)
        return results

    points = [
        _Point(
            nnodes=result["nnodes"], n=result["n"], p=result["p"],
            q=result["q"], tflops=result["tflops"],
        )
        for result in asyncio.run(gather())
    ]
    return sorted(points, key=lambda pt: pt.nnodes)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    with ServiceHTTPServer(tmp_path_factory.mktemp("fig8-service"),
                           port=0, workers=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def points(server):
    return _run_sweep(server.url)


def test_fig8_series(benchmark, server, points, artifact_dir):
    fresh = benchmark.pedantic(
        _run_sweep, args=(server.url,), rounds=1, iterations=1
    )
    write_artifact("fig8_weak_scaling.txt", format_scaling_table(fresh))
    assert [p.nnodes for p in fresh] == NODE_COUNTS


def test_fig8_efficiency_above_ninety_percent(points):
    """'over 90% weak-scaling efficiency from the single node score ...
    to the score on 128 nodes.'"""
    effs = weak_scaling_efficiency(points)
    assert all(e > 0.90 for e in effs)


def test_fig8_final_score_near_paper(points):
    """Paper: 17.75 PFLOPS at 128 nodes (from a 153 TFLOPS single node)."""
    final = points[-1]
    assert final.nnodes == 128
    assert 14_000 <= final.tflops <= 22_000

    single = points[0]
    assert 140 <= single.tflops <= 170  # paper: 153


def test_fig8_score_monotone_in_nodes(points):
    scores = [p.tflops for p in points]
    assert scores == sorted(scores)


def test_fig8_grid_policy_matches_paper(points):
    """Square or 2:1 grids; 1x8 node-local once Q >= 8."""
    for pt in points:
        assert pt.p == pt.q or pt.p == 2 * pt.q
    assert (points[-1].p, points[-1].q) == (32, 32)


def test_fig8_resubmission_served_from_cache(server, points):
    """The whole sweep resubmitted is a pure cache hit: no job runs."""
    store = server.service.store
    launched_before = sum(
        1 for e in store.events() if e["event"] == "launched"
    )
    async def resubmit():
        return await AsyncServiceClient(server.url).submit_sweep(SWEEP)
    receipt = asyncio.run(resubmit())
    assert len(receipt.cached) == len(NODE_COUNTS)
    assert not receipt.new
    launched_after = sum(
        1 for e in store.events() if e["event"] == "launched"
    )
    assert launched_after == launched_before
