"""Figure 8: weak scaling of the HPL score from 1 to 128 Crusher nodes.

Regenerates the paper's sweep (square-or-2:1 grids, 1x8 node-local grids
once Q >= 8, N scaled to fill HBM, NB = 512, 50-50 split) and asserts its
claims: >90 % weak-scaling efficiency at 128 nodes and a final score in
the neighborhood of the measured 17.75 PFLOPS.
"""

from __future__ import annotations

import pytest

from repro.perf.report import format_scaling_table
from repro.perf.scaling import weak_scaling, weak_scaling_efficiency

from .conftest import write_artifact

NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def points():
    return weak_scaling(NODE_COUNTS)


def test_fig8_series(benchmark, points, artifact_dir):
    fresh = benchmark.pedantic(
        weak_scaling, args=(NODE_COUNTS,), rounds=1, iterations=1
    )
    write_artifact("fig8_weak_scaling.txt", format_scaling_table(fresh))
    assert [p.nnodes for p in fresh] == NODE_COUNTS


def test_fig8_efficiency_above_ninety_percent(points):
    """'over 90% weak-scaling efficiency from the single node score ...
    to the score on 128 nodes.'"""
    effs = weak_scaling_efficiency(points)
    assert all(e > 0.90 for e in effs)


def test_fig8_final_score_near_paper(points):
    """Paper: 17.75 PFLOPS at 128 nodes (from a 153 TFLOPS single node)."""
    final = points[-1]
    assert final.nnodes == 128
    assert 14_000 <= final.tflops <= 22_000

    single = points[0]
    assert 140 <= single.tflops <= 170  # paper: 153


def test_fig8_score_monotone_in_nodes(points):
    scores = [p.tflops for p in points]
    assert scores == sorted(scores)


def test_fig8_grid_policy_matches_paper(points):
    """Square or 2:1 grids; 1x8 node-local once Q >= 8."""
    for pt in points:
        assert pt.p == pt.q or pt.p == 2 * pt.q
    assert (points[-1].p, points[-1].q) == (32, 32)
