"""Figure 8: weak scaling of the HPL score from 1 to 128 Crusher nodes.

Regenerates the paper's sweep (square-or-2:1 grids, 1x8 node-local grids
once Q >= 8, N scaled to fill HBM, NB = 512, 50-50 split) and asserts its
claims: >90 % weak-scaling efficiency at 128 nodes and a final score in
the neighborhood of the measured 17.75 PFLOPS.

This benchmark is submitted *through the batch service*
(:mod:`repro.service`): each node count becomes one ``scale`` job, a
two-slot worker pool drains the queue, and the points are read back from
the content-addressed result cache -- so resubmitting the sweep (the
final test) costs nothing and proves result reuse end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.perf.report import format_scaling_table
from repro.perf.scaling import weak_scaling_efficiency
from repro.service import Service, Sweep

from .conftest import write_artifact

NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128]

SWEEP = Sweep(
    kind="scale",
    axes={"nnodes": NODE_COUNTS},
    base={"n_single": 256_000, "nb": 512, "schedule": "split"},
)


@dataclass(frozen=True)
class _Point:
    """The slice of a ScalePoint the Fig. 8 table and claims consume."""

    nnodes: int
    n: int
    p: int
    q: int
    tflops: float


def _run_sweep(service: Service) -> list[_Point]:
    receipt = service.submit_sweep(SWEEP)
    service.run_workers(n=2)
    points = []
    for result in service.results(receipt.job_ids).values():
        assert result is not None, "scale job did not complete"
        points.append(_Point(
            nnodes=result["nnodes"], n=result["n"], p=result["p"],
            q=result["q"], tflops=result["tflops"],
        ))
    return sorted(points, key=lambda pt: pt.nnodes)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    return Service(tmp_path_factory.mktemp("fig8-service"))


@pytest.fixture(scope="module")
def points(service):
    return _run_sweep(service)


def test_fig8_series(benchmark, service, points, artifact_dir):
    fresh = benchmark.pedantic(
        _run_sweep, args=(service,), rounds=1, iterations=1
    )
    write_artifact("fig8_weak_scaling.txt", format_scaling_table(fresh))
    assert [p.nnodes for p in fresh] == NODE_COUNTS


def test_fig8_efficiency_above_ninety_percent(points):
    """'over 90% weak-scaling efficiency from the single node score ...
    to the score on 128 nodes.'"""
    effs = weak_scaling_efficiency(points)
    assert all(e > 0.90 for e in effs)


def test_fig8_final_score_near_paper(points):
    """Paper: 17.75 PFLOPS at 128 nodes (from a 153 TFLOPS single node)."""
    final = points[-1]
    assert final.nnodes == 128
    assert 14_000 <= final.tflops <= 22_000

    single = points[0]
    assert 140 <= single.tflops <= 170  # paper: 153


def test_fig8_score_monotone_in_nodes(points):
    scores = [p.tflops for p in points]
    assert scores == sorted(scores)


def test_fig8_grid_policy_matches_paper(points):
    """Square or 2:1 grids; 1x8 node-local once Q >= 8."""
    for pt in points:
        assert pt.p == pt.q or pt.p == 2 * pt.q
    assert (points[-1].p, points[-1].q) == (32, 32)


def test_fig8_resubmission_served_from_cache(service, points):
    """The whole sweep resubmitted is a pure cache hit: no job runs."""
    claimed_before = sum(
        1 for e in service.store.events() if e["event"] == "claimed"
    )
    receipt = service.submit_sweep(SWEEP)
    assert len(receipt.cached) == len(NODE_COUNTS)
    assert not receipt.new
    claimed_after = sum(
        1 for e in service.store.events() if e["event"] == "claimed"
    )
    assert claimed_after == claimed_before
