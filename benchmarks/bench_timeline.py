"""Figures 3 and 6: the iteration execution timelines.

The paper's timeline diagrams make structural claims about what overlaps
what; these benches build the corresponding DAGs with realistic costs from
the ledger, execute them on the event engine, and assert the claims:

* Fig. 3 (look-ahead): transfers, FACT and LBCAST hide behind the trailing
  update; the RS communication does not.
* Fig. 6 (split update): every phase hides -- iteration time equals GPU
  busy time.

Also benchmarks the raw event-engine throughput.
"""

from __future__ import annotations

import pytest

from repro.config import Schedule
from repro.machine.frontier import crusher_cluster
from repro.perf.ledger import PerfConfig, run_costs
from repro.sched.engine import Task, simulate
from repro.sched.timeline import build_run

from .conftest import write_artifact

CLUSTER = crusher_cluster(1)


def _gantt(result, tag: int) -> str:
    lines = [f"{'task':<20s}{'res':>5s}{'start_ms':>10s}{'end_ms':>10s}"]
    for t in sorted(result.tasks_tagged(tag), key=lambda t: t.start):
        lines.append(
            f"{t.name:<20s}{t.resource or '-':>5s}"
            f"{t.start * 1e3:>10.2f}{t.end * 1e3:>10.2f}"
        )
    return "\n".join(lines) + "\n"


def test_fig3_lookahead_timeline(benchmark, artifact_dir):
    """An early look-ahead iteration: only RS comm extends past GPU work."""
    cfg = PerfConfig(
        n=256_000, nb=512, p=4, q=2, pl=4, ql=2, schedule=Schedule.LOOKAHEAD
    )
    costs = run_costs(cfg, CLUSTER)
    result = benchmark.pedantic(
        lambda: simulate(build_run(costs)), rounds=1, iterations=1
    )
    k = 5  # steady-state early iteration
    write_artifact("fig3_lookahead_gantt.txt", _gantt(result, k))
    start, end = result.span_of_tag(k)
    gpu_busy = result.busy_in_tag(k, "gpu")
    fact = result.phase_in_tag(k, "FACT")
    by_name = {t.name: t for t in result.tasks_tagged(k)}
    rs_comm = by_name[f"rs.comm.{k}"].duration
    # FACT is fully overlapped by the trailing update...
    assert end - start < gpu_busy + fact
    # ...but the RS communication is exposed (the Fig. 3 idle gap).
    assert end - start >= gpu_busy + rs_comm * 0.9


def test_fig6_split_timeline(benchmark, artifact_dir):
    """An early split-update iteration: everything hides behind the GPU."""
    cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)
    costs = run_costs(cfg, CLUSTER)
    result = benchmark.pedantic(
        lambda: simulate(build_run(costs)), rounds=1, iterations=1
    )
    k = 5
    write_artifact("fig6_split_gantt.txt", _gantt(result, k))
    start, end = result.span_of_tag(k)
    gpu_busy = result.busy_in_tag(k, "gpu")
    assert end - start == pytest.approx(gpu_busy, rel=0.02)
    # RS1 ran inside the UPDATE2 window; RS2 inside UPDATE1's.
    by_name = {t.name: t for t in result.tasks_tagged(k)}
    u2 = by_name[f"dgemm.right.{k}"]
    rs1 = by_name[f"rs1.comm.{k}"]
    assert rs1.end <= u2.end + 1e-9
    u1 = by_name[f"dgemm.left.{k}"]
    rs2 = by_name[f"rs2.comm.{k}"]
    assert rs2.end <= u1.end + 1e-9


def test_engine_throughput(benchmark):
    """Raw list-scheduling speed: a 50k-task chain across 4 resources."""

    def build_and_run():
        tasks = []
        prev = None
        for i in range(50_000):
            t = Task(
                f"t{i}", 1e-6, ("gpu", "cpu", "mpi", "hd")[i % 4],
                deps=[prev] if prev is not None and i % 3 == 0 else [],
            )
            tasks.append(t)
            prev = t
        return simulate(tasks).makespan

    makespan = benchmark(build_and_run)
    assert makespan > 0
