"""Service-throughput benchmark: storms against live coordinators.

The service-tier analogue of the paper's Fig. 8 sweep: instead of
asking how many nodes one factorization scales over, ask how many
submits per second one coordinator absorbs -- and keep the answer in a
committed trajectory (``BENCH_service_throughput.json`` at the repo
root) so every future PR's regression is a diff, not an anecdote.

Four scenarios, each against a **real** ``repro serve`` subprocess
(so the RSS figures are the coordinator's own, not the harness's):

* ``1shard``  -- storm over a single-workdir coordinator, 2 workers.
* ``3shard``  -- the same storm over ``--shards 3``; sharding should
  hold or raise throughput, never crater it.
* ``admission`` -- a submit-only storm into a low watermark
  (``--max-queue-depth``): the point is the 429 ``overloaded`` path
  *under* load -- rejections are cheap, nothing 500s, and the queue
  still drains afterwards.
* ``watch`` -- the same 200-job drain observed by 50 polling clients
  and then by 50 watching clients (``GET /v1/events``): watching must
  cut status-class requests by >= 10x and miss zero terminal
  transitions.

Every scenario records submits/s, per-endpoint p50/p95/p99 latency,
the status-code histogram, queue drain rate, and coordinator RSS
before/after.  Run directly for a longer look::

    PYTHONPATH=src python benchmarks/bench_service_load.py --duration 30

or through pytest (short storms, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_load.py -q
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import threading

from repro.service.http import ServiceClient
from repro.service.loadgen import bad_5xx, measure_drain, run_storm

try:
    from .conftest import write_artifact
except ImportError:  # direct `python benchmarks/bench_service_load.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import write_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_service_throughput.json"

#: Conservative floor for the pytest gate -- a healthy coordinator on
#: any hardware this runs on manages hundreds of submits/s; tripping
#: this means something is catastrophically wrong, not merely slow.
SUBMITS_PER_S_FLOOR = 25.0


def _start_serve(workdir, shards: int = 1, workers: int = 2,
                 max_queue_depth: int = 0) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro", "serve", "--workdir",
           str(workdir), "--shards", str(shards), "--port", "0",
           "--workers", str(workers), "--backoff", "0.01"]
    if max_queue_depth:
        cmd += ["--max-queue-depth", str(max_queue_depth)]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(REPO_ROOT),
    )
    line = proc.stdout.readline()
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return proc, url


def _stop(proc: subprocess.Popen | None) -> None:
    if proc is not None and proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)


def run_scenario(workdir, *, shards: int, duration: float,
                 processes: int = 2, concurrency: int = 6,
                 mix: dict | None = None, max_queue_depth: int = 0,
                 drain_timeout: float = 600.0, seed: int = 0) -> dict:
    """One storm + drain against a fresh serve subprocess."""
    proc, url = _start_serve(workdir, shards=shards,
                             max_queue_depth=max_queue_depth)
    try:
        report = run_storm(url, duration=duration, processes=processes,
                           concurrency=concurrency, mix=mix, seed=seed,
                           server_pid=proc.pid)
        report["drain"] = measure_drain(url, timeout=drain_timeout)
        report["shards"] = shards
        report["max_queue_depth"] = max_queue_depth
        return report
    finally:
        _stop(proc)


class _CountingClient(ServiceClient):
    """A :class:`ServiceClient` that tallies requests by class.

    ``status`` counts the polling-style reads (GET queue/job/result),
    ``events`` the event-feed requests; everything else is ``other``.
    The watch-vs-poll scenario's claim is exactly this split.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.counts = {"status": 0, "events": 0, "other": 0}
        self._lock = threading.Lock()

    def _send(self, request, path, timeout=None):
        if path.startswith("/v1/events"):
            kind = "events"
        elif (request.get_method() == "GET"
              and path.startswith(("/v1/queue", "/v1/jobs"))):
            kind = "status"
        else:
            kind = "other"
        with self._lock:
            self.counts[kind] += 1
        return super()._send(request, path, timeout=timeout)


def _watch_drain(url: str, *, jobs: int, watchers: int,
                 job_seconds: float, mode: str) -> dict:
    """Submit ``jobs`` probes and observe them finish ``mode``-style.

    ``mode="poll"`` runs the historical poll-with-backoff wait loop;
    ``mode="watch"`` consumes the event feed.  Each of ``watchers``
    threads observes a disjoint slice of the jobs and must see every
    job in its slice reach a terminal state; the report carries the
    request tallies and how many terminal transitions were missed.
    """
    submitter = ServiceClient(url)
    receipts = submitter.submit_many([
        {"kind": "probe",
         "payload": {"behavior": "sleep", "seconds": job_seconds,
                     "tag": f"{mode}-{i}"}}
        for i in range(jobs)
    ])
    ids = [r.new[0] for r in receipts]
    slices = [ids[i::watchers] for i in range(watchers)]
    clients = [_CountingClient(url, retry_429=0) for _ in range(watchers)]
    missed = [0] * watchers
    t0 = time.monotonic()

    def observe(i: int) -> None:
        client, mine = clients[i], slices[i]
        try:
            if mode == "poll":
                client._wait_poll(mine, timeout=300.0)
            else:
                seen = {v.job_id for v in client.watch(
                    job_ids=mine, timeout=300.0) if v.terminal}
                missed[i] = len(set(mine) - seen)
        except Exception:  # noqa: BLE001 -- a missed job IS the metric
            missed[i] = len(mine)

    threads = [threading.Thread(target=observe, args=(i,), daemon=True)
               for i in range(watchers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600.0)
    seconds = time.monotonic() - t0
    totals = {"status": 0, "events": 0, "other": 0}
    for client in clients:
        for key, n in client.counts.items():
            totals[key] += n
    return {
        "jobs": jobs,
        "watchers": watchers,
        "seconds": round(seconds, 3),
        "status_requests": totals["status"],
        "events_requests": totals["events"],
        "other_requests": totals["other"],
        "missed_terminal": sum(missed),
    }


def run_watch_scenario(workdir, *, jobs: int = 200, watchers: int = 50,
                       job_seconds: float = 0.05,
                       shards: int = 1) -> dict:
    """Watch-vs-poll: the same drain observed both ways, tallied.

    The claim under test: 50 clients watching a 200-job drain issue at
    least 10x fewer status-class HTTP requests than the same clients
    polling, while missing zero terminal transitions.
    """
    proc, url = _start_serve(workdir, shards=shards, workers=4)
    try:
        poll = _watch_drain(url, jobs=jobs, watchers=watchers,
                            job_seconds=job_seconds, mode="poll")
        watch = _watch_drain(url, jobs=jobs, watchers=watchers,
                             job_seconds=job_seconds, mode="watch")
    finally:
        _stop(proc)
    ratio = poll["status_requests"] / max(1, watch["status_requests"])
    return {
        "shards": shards,
        "poll": poll,
        "watch": watch,
        "status_request_ratio": round(ratio, 1),
    }


def run_all(tmp_root, duration: float = 6.0) -> dict:
    """The full scenario set; ``tmp_root`` holds the scratch workdirs."""
    tmp_root = pathlib.Path(tmp_root)
    scenarios = {
        "1shard": run_scenario(tmp_root / "s1", shards=1,
                               duration=duration, seed=1),
        "3shard": run_scenario(tmp_root / "s3", shards=3,
                               duration=duration, seed=3),
        # Submit-only flood into a low watermark: measure the refusal
        # path itself.  Workers keep draining, so admitted jobs clear.
        "admission": run_scenario(
            tmp_root / "adm", shards=1, duration=duration,
            mix={"submit": 1}, max_queue_depth=200, seed=5),
        # The events tentpole's claim: watching a drain costs an order
        # of magnitude fewer status requests than polling it, and no
        # terminal transition goes unobserved.
        "watch": run_watch_scenario(tmp_root / "watch"),
    }
    return {
        "t": time.time(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "duration_s": duration,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }


def append_trajectory(entry: dict, path: pathlib.Path = TRAJECTORY) -> list:
    """Append one benchmark entry to the committed trajectory file."""
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = []
    history.append(entry)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    return history


def check_entry(entry: dict) -> None:
    """The shape claims every trajectory entry must satisfy."""
    for name in ("1shard", "3shard"):
        rep = entry["scenarios"][name]
        assert rep["submitted_jobs"] > 0, f"{name}: nothing submitted"
        assert rep["submits_per_s"] >= SUBMITS_PER_S_FLOOR, \
            f"{name}: {rep['submits_per_s']} submits/s below the" \
            f" {SUBMITS_PER_S_FLOOR} floor"
        assert bad_5xx(rep) == 0, \
            f"{name}: non-503 5xx under load: {rep['status_codes']}"
        assert rep["drain"]["initial_depth"] >= 0
        for op in ("submit", "status"):
            stats = rep["ops"].get(op)
            assert stats and stats["p99_ms"] > 0.0, f"{name}: no {op} data"
    adm = entry["scenarios"]["admission"]
    assert bad_5xx(adm) == 0, \
        f"admission: non-503 5xx: {adm['status_codes']}"
    assert adm["status_codes"].get("429", 0) > 0, \
        "admission: the watermark never rejected anything -- storm too" \
        f" weak or gate broken: {adm['status_codes']}"
    # The backlog behind the watermark fully drained.
    assert adm["drain"]["seconds"] >= 0.0
    wat = entry["scenarios"]["watch"]
    assert wat["watch"]["missed_terminal"] == 0, \
        f"watch: missed terminal transitions: {wat['watch']}"
    assert wat["poll"]["missed_terminal"] == 0, \
        f"watch: poll baseline lost jobs: {wat['poll']}"
    assert wat["status_request_ratio"] >= 10.0, \
        f"watch: only {wat['status_request_ratio']}x fewer status" \
        f" requests than polling (need >= 10x)"


def test_service_throughput_trajectory(tmp_path):
    """Short storms over 1/3 shards + the watermark; append trajectory."""
    entry = run_all(tmp_path, duration=float(
        os.environ.get("BENCH_LOAD_DURATION", "6.0")))
    check_entry(entry)
    append_trajectory(entry)
    write_artifact("service_throughput.json",
                   json.dumps(entry, indent=1, sort_keys=True))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="service-throughput load benchmark")
    parser.add_argument("--duration", type=float, default=15.0,
                        help="storm length per scenario (seconds)")
    parser.add_argument("--workdir", default=None,
                        help="scratch root (default: a temp dir)")
    parser.add_argument("--no-append", action="store_true",
                        help="print the entry without touching the"
                             " trajectory file")
    args = parser.parse_args()
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        root = args.workdir or tmp
        entry = run_all(root, duration=args.duration)
    check_entry(entry)
    if not args.no_append:
        append_trajectory(entry)
        write_artifact("service_throughput.json",
                       json.dumps(entry, indent=1, sort_keys=True))
    for name, rep in entry["scenarios"].items():
        if "status_request_ratio" in rep:
            print(f"{name:>10}: {rep['status_request_ratio']}x fewer"
                  f" status requests watching vs polling"
                  f" ({rep['poll']['status_requests']} ->"
                  f" {rep['watch']['status_requests']},"
                  f" {rep['watch']['missed_terminal']} missed)")
            continue
        print(f"{name:>10}: {rep['submits_per_s']:>8.1f} submits/s,"
              f" submit p99 {rep['ops'].get('submit', {}).get('p99_ms', 0)}"
              f" ms, drain {rep['drain']['drain_per_s']}/s,"
              f" codes {rep['status_codes']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
