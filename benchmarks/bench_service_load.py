"""Service-throughput benchmark: storms against live coordinators.

The service-tier analogue of the paper's Fig. 8 sweep: instead of
asking how many nodes one factorization scales over, ask how many
submits per second one coordinator absorbs -- and keep the answer in a
committed trajectory (``BENCH_service_throughput.json`` at the repo
root) so every future PR's regression is a diff, not an anecdote.

Three scenarios, each against a **real** ``repro serve`` subprocess
(so the RSS figures are the coordinator's own, not the harness's):

* ``1shard``  -- storm over a single-workdir coordinator, 2 workers.
* ``3shard``  -- the same storm over ``--shards 3``; sharding should
  hold or raise throughput, never crater it.
* ``admission`` -- a submit-only storm into a low watermark
  (``--max-queue-depth``): the point is the 429 ``overloaded`` path
  *under* load -- rejections are cheap, nothing 500s, and the queue
  still drains afterwards.

Every scenario records submits/s, per-endpoint p50/p95/p99 latency,
the status-code histogram, queue drain rate, and coordinator RSS
before/after.  Run directly for a longer look::

    PYTHONPATH=src python benchmarks/bench_service_load.py --duration 30

or through pytest (short storms, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_load.py -q
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.service.loadgen import bad_5xx, measure_drain, run_storm

try:
    from .conftest import write_artifact
except ImportError:  # direct `python benchmarks/bench_service_load.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import write_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_service_throughput.json"

#: Conservative floor for the pytest gate -- a healthy coordinator on
#: any hardware this runs on manages hundreds of submits/s; tripping
#: this means something is catastrophically wrong, not merely slow.
SUBMITS_PER_S_FLOOR = 25.0


def _start_serve(workdir, shards: int = 1, workers: int = 2,
                 max_queue_depth: int = 0) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro", "serve", "--workdir",
           str(workdir), "--shards", str(shards), "--port", "0",
           "--workers", str(workers), "--backoff", "0.01"]
    if max_queue_depth:
        cmd += ["--max-queue-depth", str(max_queue_depth)]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(REPO_ROOT),
    )
    line = proc.stdout.readline()
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return proc, url


def _stop(proc: subprocess.Popen | None) -> None:
    if proc is not None and proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)


def run_scenario(workdir, *, shards: int, duration: float,
                 processes: int = 2, concurrency: int = 6,
                 mix: dict | None = None, max_queue_depth: int = 0,
                 drain_timeout: float = 600.0, seed: int = 0) -> dict:
    """One storm + drain against a fresh serve subprocess."""
    proc, url = _start_serve(workdir, shards=shards,
                             max_queue_depth=max_queue_depth)
    try:
        report = run_storm(url, duration=duration, processes=processes,
                           concurrency=concurrency, mix=mix, seed=seed,
                           server_pid=proc.pid)
        report["drain"] = measure_drain(url, timeout=drain_timeout)
        report["shards"] = shards
        report["max_queue_depth"] = max_queue_depth
        return report
    finally:
        _stop(proc)


def run_all(tmp_root, duration: float = 6.0) -> dict:
    """The full scenario set; ``tmp_root`` holds the scratch workdirs."""
    tmp_root = pathlib.Path(tmp_root)
    scenarios = {
        "1shard": run_scenario(tmp_root / "s1", shards=1,
                               duration=duration, seed=1),
        "3shard": run_scenario(tmp_root / "s3", shards=3,
                               duration=duration, seed=3),
        # Submit-only flood into a low watermark: measure the refusal
        # path itself.  Workers keep draining, so admitted jobs clear.
        "admission": run_scenario(
            tmp_root / "adm", shards=1, duration=duration,
            mix={"submit": 1}, max_queue_depth=200, seed=5),
    }
    return {
        "t": time.time(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "duration_s": duration,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }


def append_trajectory(entry: dict, path: pathlib.Path = TRAJECTORY) -> list:
    """Append one benchmark entry to the committed trajectory file."""
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = []
    history.append(entry)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    return history


def check_entry(entry: dict) -> None:
    """The shape claims every trajectory entry must satisfy."""
    for name in ("1shard", "3shard"):
        rep = entry["scenarios"][name]
        assert rep["submitted_jobs"] > 0, f"{name}: nothing submitted"
        assert rep["submits_per_s"] >= SUBMITS_PER_S_FLOOR, \
            f"{name}: {rep['submits_per_s']} submits/s below the" \
            f" {SUBMITS_PER_S_FLOOR} floor"
        assert bad_5xx(rep) == 0, \
            f"{name}: non-503 5xx under load: {rep['status_codes']}"
        assert rep["drain"]["initial_depth"] >= 0
        for op in ("submit", "status"):
            stats = rep["ops"].get(op)
            assert stats and stats["p99_ms"] > 0.0, f"{name}: no {op} data"
    adm = entry["scenarios"]["admission"]
    assert bad_5xx(adm) == 0, \
        f"admission: non-503 5xx: {adm['status_codes']}"
    assert adm["status_codes"].get("429", 0) > 0, \
        "admission: the watermark never rejected anything -- storm too" \
        f" weak or gate broken: {adm['status_codes']}"
    # The backlog behind the watermark fully drained.
    assert adm["drain"]["seconds"] >= 0.0


def test_service_throughput_trajectory(tmp_path):
    """Short storms over 1/3 shards + the watermark; append trajectory."""
    entry = run_all(tmp_path, duration=float(
        os.environ.get("BENCH_LOAD_DURATION", "6.0")))
    check_entry(entry)
    append_trajectory(entry)
    write_artifact("service_throughput.json",
                   json.dumps(entry, indent=1, sort_keys=True))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="service-throughput load benchmark")
    parser.add_argument("--duration", type=float, default=15.0,
                        help="storm length per scenario (seconds)")
    parser.add_argument("--workdir", default=None,
                        help="scratch root (default: a temp dir)")
    parser.add_argument("--no-append", action="store_true",
                        help="print the entry without touching the"
                             " trajectory file")
    args = parser.parse_args()
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        root = args.workdir or tmp
        entry = run_all(root, duration=args.duration)
    check_entry(entry)
    if not args.no_append:
        append_trajectory(entry)
        write_artifact("service_throughput.json",
                       json.dumps(entry, indent=1, sort_keys=True))
    for name, rep in entry["scenarios"].items():
        print(f"{name:>10}: {rep['submits_per_s']:>8.1f} submits/s,"
              f" submit p99 {rep['ops'].get('submit', {}).get('p99_ms', 0)}"
              f" ms, drain {rep['drain']['drain_per_s']}/s,"
              f" codes {rep['status_codes']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
