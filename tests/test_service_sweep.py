"""Sweep expansion, deduplication, and queue-level dedup on submit."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import Service, Sweep, expand_grid
from repro.service.sweep import dedupe


class TestExpandGrid:
    def test_cartesian_product_in_insertion_order(self):
        grid = expand_grid({"n": [1, 2], "nb": [8, 16]})
        assert grid == [
            {"n": 1, "nb": 8}, {"n": 1, "nb": 16},
            {"n": 2, "nb": 8}, {"n": 2, "nb": 16},
        ]

    def test_scalars_act_as_length_one_axes(self):
        grid = expand_grid({"n": [1, 2], "p": 4})
        assert grid == [{"n": 1, "p": 4}, {"n": 2, "p": 4}]

    def test_empty_axis_is_an_error(self):
        with pytest.raises(ServiceError, match="empty"):
            expand_grid({"n": []})


class TestDedupe:
    def test_repeated_values_collapse(self):
        payloads = expand_grid({"n": [64, 64, 128]})
        unique, dropped = dedupe("sim", payloads)
        assert [p["n"] for p in unique] == [64, 128]
        assert dropped == 1

    def test_sweep_expand_is_already_unique(self):
        sweep = Sweep(kind="sim", axes={"n": [64, 64], "nb": [8, 8]})
        assert sweep.npoints == 4
        assert len(sweep.expand()) == 1

    def test_base_params_merge_and_axes_override(self):
        sweep = Sweep(
            kind="scale", axes={"nnodes": [1, 2]},
            base={"nb": 512, "nnodes": 99},
        )
        points = sweep.expand()
        assert [p["nnodes"] for p in points] == [1, 2]
        assert all(p["nb"] == 512 for p in points)


class TestQueueDedup:
    def test_resubmitting_a_queued_sweep_adds_no_jobs(self, tmp_path):
        """Points already PENDING are deduped, not queued twice."""
        service = Service(tmp_path / "svc")
        sweep = Sweep(kind="sim", axes={
            "n": [512, 1024], "nb": [64, 128], "p": 2, "q": 2,
        })
        first = service.submit_sweep(sweep)
        assert len(first.new) == 4

        again = service.submit_sweep(sweep)
        assert not again.new and not again.cached
        assert sorted(again.deduped) == sorted(first.new)
        assert service.store.counts()["PENDING"] == 4

    def test_overlapping_sweeps_share_points(self, tmp_path):
        service = Service(tmp_path / "svc")
        a = service.submit_sweep(
            Sweep(kind="sim", axes={"n": [512, 1024], "nb": 64,
                                    "p": 2, "q": 2})
        )
        b = service.submit_sweep(
            Sweep(kind="sim", axes={"n": [1024, 2048], "nb": 64,
                                    "p": 2, "q": 2})
        )
        assert len(a.new) == 2
        assert len(b.new) == 1  # 1024 already queued
        assert len(b.deduped) == 1

    def test_probe_jobs_are_never_deduped(self, tmp_path):
        service = Service(tmp_path / "svc")
        first = service.submit("probe", {"behavior": "ok"})
        second = service.submit("probe", {"behavior": "ok"})
        assert first.new and second.new
        assert first.new != second.new
