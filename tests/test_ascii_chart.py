"""The terminal chart renderer."""

from __future__ import annotations

import pytest

from repro.machine.frontier import crusher_cluster
from repro.perf.ascii_chart import fig5_chart, fig7_chart, fig8_chart, line_chart
from repro.perf.factsim import fact_sweep
from repro.perf.hplsim import simulate_run
from repro.perf.ledger import PerfConfig
from repro.perf.scaling import weak_scaling


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            {"a": ([0, 1, 2], [0.0, 1.0, 2.0])},
            width=20, height=5, title="T", xlabel="x", ylabel="y",
        )
        lines = out.splitlines()
        assert "T" in lines[0]
        assert any("*" in line for line in lines)
        assert "a" in lines[-1]

    def test_multiple_series_distinct_marks(self):
        out = line_chart(
            {"one": ([0, 1], [0, 1]), "two": ([0, 1], [1, 0])},
            width=10, height=5,
        )
        assert "*" in out and "o" in out

    def test_axis_scales_shown(self):
        out = line_chart({"s": ([2, 10], [5.0, 50.0])}, width=12, height=4)
        assert "50" in out
        assert "10" in out

    def test_log_x(self):
        out = line_chart(
            {"s": ([1, 2, 4, 8, 16], [1, 2, 3, 4, 5])},
            width=16, height=4, logx=True,
        )
        assert "16" in out

    def test_flat_series(self):
        out = line_chart({"s": ([0, 1, 2], [3.0, 3.0, 3.0])}, width=10, height=3)
        assert "*" in out

    def test_single_point(self):
        out = line_chart({"s": ([1], [1.0])}, width=8, height=3)
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": ([], [])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": ([1, 2], [1.0])})


class TestFigureCharts:
    def test_fig7(self):
        cfg = PerfConfig(n=16_384, nb=512, p=4, q=2, pl=4, ql=2)
        report = simulate_run(cfg, crusher_cluster(1))
        out = fig7_chart(report)
        assert "Fig.7" in out and "gpu active" in out and "total" in out

    def test_fig8(self):
        points = weak_scaling([1, 2, 4], n_single=16_384)
        out = fig8_chart(points)
        assert "Fig.8" in out and "ideal" in out

    def test_fig5(self):
        out = fig5_chart(fact_sweep())
        assert "Fig.5" in out and "T=64" in out
