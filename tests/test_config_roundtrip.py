"""Property-style round-trips for HPLConfig.to_dict/from_dict/config_key.

The service's result cache and dedupe both ride on ``config_key`` being
a *content* hash: stable under dict reordering and enum-vs-value
representation, different under any semantic field change, and loud on
unknown keys.  These tests pin that contract.
"""

from __future__ import annotations

import dataclasses
import enum

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    BcastVariant,
    HPLConfig,
    PFactVariant,
    Schedule,
    SwapVariant,
    config_key,
)
from repro.errors import ConfigError

configs = st.builds(
    HPLConfig,
    n=st.integers(min_value=1, max_value=4096),
    nb=st.integers(min_value=1, max_value=512),
    p=st.integers(min_value=1, max_value=8),
    q=st.integers(min_value=1, max_value=8),
    pfact=st.sampled_from(PFactVariant),
    rfact=st.sampled_from(PFactVariant),
    ndiv=st.integers(min_value=2, max_value=4),
    nbmin=st.integers(min_value=1, max_value=64),
    bcast=st.sampled_from(BcastVariant),
    swap=st.sampled_from(SwapVariant),
    swap_threshold=st.integers(min_value=0, max_value=512),
    schedule=st.sampled_from([Schedule.LOOKAHEAD, Schedule.SPLIT_UPDATE]),
    split_fraction=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False),
    fact_threads=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
    row_major_grid=st.booleans(),
    check=st.booleans(),
)


class TestRoundTrip:
    @given(configs)
    def test_from_dict_inverts_to_dict(self, cfg):
        assert HPLConfig.from_dict(cfg.to_dict()) == cfg

    @given(configs)
    def test_key_survives_the_round_trip(self, cfg):
        assert HPLConfig.from_dict(cfg.to_dict()).config_key() \
            == cfg.config_key()

    @given(configs)
    def test_from_dict_accepts_enum_members_and_values_alike(self, cfg):
        as_values = cfg.to_dict()
        as_members = {
            k: getattr(cfg, k) for k in as_values
        }  # enum members, not strings
        assert HPLConfig.from_dict(as_members) == cfg
        assert HPLConfig.from_dict(as_members).config_key() \
            == config_key(as_values)


class TestKeyStability:
    @given(configs)
    def test_key_is_independent_of_dict_ordering(self, cfg):
        forward = cfg.to_dict()
        backward = dict(reversed(list(forward.items())))
        assert list(forward) != list(backward)  # genuinely reordered
        assert config_key(forward) == config_key(backward)

    @given(configs, st.randoms(use_true_random=False))
    def test_key_is_independent_of_shuffled_ordering(self, cfg, rand):
        items = list(cfg.to_dict().items())
        rand.shuffle(items)
        assert config_key(dict(items)) == cfg.config_key()

    @given(configs)
    def test_key_matches_raw_mapping_hash(self, cfg):
        assert cfg.config_key() == config_key(cfg.to_dict())


def _mutated(cfg: HPLConfig, name: str):
    """A config differing from ``cfg`` in exactly the field ``name``."""
    value = getattr(cfg, name)
    if isinstance(value, bool):
        return cfg.replace(**{name: not value})
    if isinstance(value, enum.Enum):
        alternatives = [m for m in type(value) if m is not value]
        if name == "schedule":
            # CLASSIC requires depth=0; stay within depth-1 schedules.
            alternatives = [m for m in alternatives
                            if m is not Schedule.CLASSIC]
        return cfg.replace(**{name: alternatives[0]})
    if isinstance(value, float):
        return cfg.replace(**{name: value / 2 if value else 0.25})
    if name == "depth":
        # depth pairs with schedule; flip both coherently.
        return cfg.replace(depth=0, schedule=Schedule.CLASSIC)
    return cfg.replace(**{name: value + 1})


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(HPLConfig)]
)
def test_any_field_change_changes_the_key(field):
    cfg = HPLConfig(n=1024, nb=64, p=2, q=4, split_fraction=0.5)
    other = _mutated(cfg, field)
    assert getattr(other, field) != getattr(cfg, field)
    assert other.config_key() != cfg.config_key()


class TestUnknownKeys:
    def test_unknown_key_is_rejected(self):
        data = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ConfigError, match="frobnicate"):
            HPLConfig.from_dict(data)

    def test_all_unknown_keys_are_named_in_the_error(self):
        data = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        data.update({"zeta": 1, "alpha": 2})
        with pytest.raises(ConfigError, match="alpha, zeta"):
            HPLConfig.from_dict(data)

    @given(st.text(min_size=1, max_size=20).filter(
        lambda s: s not in {f.name for f in dataclasses.fields(HPLConfig)}
    ))
    def test_no_stray_key_slips_through(self, stray):
        data = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        data[stray] = 0
        with pytest.raises(ConfigError, match="unknown HPLConfig field"):
            HPLConfig.from_dict(data)

    def test_invalid_enum_value_is_a_config_error(self):
        data = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        data["bcast"] = "9ring"
        with pytest.raises(ConfigError, match="invalid bcast"):
            HPLConfig.from_dict(data)
