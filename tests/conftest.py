"""Shared fixtures and helpers for the pyroHPL test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.simmpi import run_spmd

# SPMD jobs spawn threads; keep hypothesis example counts modest and drop
# its per-example deadline (thread scheduling jitter would cause flakes).
settings.register_profile("repro", max_examples=25, deadline=None)
settings.load_profile("repro")

#: Watchdog for test SPMD jobs: long enough for slow CI, short enough that
#: a genuine deadlock fails the suite rather than hanging it.
TEST_WATCHDOG = 60.0


def spmd(nranks, fn, *args, **kwargs):
    """run_spmd with the test watchdog applied."""
    kwargs.setdefault("watchdog", TEST_WATCHDOG)
    return run_spmd(nranks, fn, *args, **kwargs)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def reference_solution(n: int, seed: int) -> np.ndarray:
    """numpy ground truth for the HPL-generated system."""
    from repro.hpl.matrix import generate_global

    a, b = generate_global(n, seed)
    return np.linalg.solve(a, b)
