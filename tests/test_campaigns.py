"""Campaigns over HTTP: staged specs, cross-shard DAGs, CLI, clients.

The acceptance scenario lives here: one ``POST /v1/campaigns`` request
expands a 3-stage tune-then-scale spec into a job DAG spread across a
3-shard coordinator (parents and children verifiably on different
shards), drains to ``done`` with the winner resolved into the study
stage, a cyclic spec dies with 422 ``cycle_detected`` before any job is
enqueued, and a mid-campaign stage failure cancels exactly its
descendants while the unrelated branch completes.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.cli import main
from repro.errors import CycleError, UnknownCampaignError
from repro.service import (
    CampaignView,
    DagView,
    JobView,
    WorkerOptions,
    shard_index,
)
from repro.service.fleet import RemoteWorkerPool
from repro.service.http import (
    AsyncServiceClient,
    ServiceClient,
    ServiceHTTPServer,
)

NSHARDS = 3

TUNE_THEN_SCALE = {
    "name": "tune-then-scale",
    "stages": [
        {"name": "grid",
         "sweep": {"kind": "probe", "axes": {"tag": [1, 5, 3]},
                   "base": {"behavior": "echo"}}},
        {"name": "pick", "after": ["grid"],
         "kind": "reduce", "payload": {"metric": "tag", "mode": "max"}},
        {"name": "study", "after": ["pick"],
         "sweep": {"kind": "probe", "axes": {"x": [10, 20]},
                   "base": {"behavior": "echo",
                            "tag": {"$winner": "tag"}}}},
    ],
}


def _wait_campaign(client, campaign_id, want, timeout=120.0):
    deadline = time.monotonic() + timeout
    while True:
        view = client.campaign(campaign_id)
        # The campaign state collapses to "failed" the moment any stage
        # fails, while unrelated branches are still draining -- wait for
        # quiescence (every stage terminal) before judging the outcome.
        if all(s.state in ("done", "failed", "cancelled")
               for s in view.stages):
            assert view.state == want, \
                f"campaign settled at {view.state!r}, wanted {want!r}"
            return view
        assert time.monotonic() < deadline, \
            f"campaign stuck in {view.state!r}, wanted {want!r}"
        time.sleep(0.05)


class TestCampaignAcceptance:
    def test_three_stage_campaign_drains_across_three_shards(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=2,
                               shards=NSHARDS) as srv:
            client = ServiceClient(srv.url)
            view = client.submit_campaign(TUNE_THEN_SCALE)
            assert isinstance(view, CampaignView)
            assert view.njobs == 6 and len(view.stages) == 3
            assert [s.name for s in view.stages] == ["grid", "pick",
                                                     "study"]

            # Dependency edges came back child-side and complete.
            dag = client.campaign_dag(view.id)
            assert isinstance(dag, DagView)
            by_stage = {}
            for node in dag.nodes:
                by_stage.setdefault(node["stage"], []).append(node)
            grid_ids = {n["id"] for n in by_stage["grid"]}
            pick = by_stage["pick"][0]
            assert set(pick["depends_on"]) == grid_ids
            for study in by_stage["study"]:
                assert study["depends_on"] == [pick["id"]]

            # The acceptance cross-shard claim: some dependency edge
            # spans two shards (fixed payloads make this deterministic).
            home = {n["id"]: shard_index(client.job(n["id"]).key, NSHARDS)
                    for n in dag.nodes}
            edges = [(p, n["id"]) for n in dag.nodes
                     for p in n["depends_on"]]
            assert any(home[p] != home[c] for p, c in edges), home

            final = _wait_campaign(client, view.id, "done")
            assert all(s.state == "done" for s in final.stages)
            pick_result = client.result(pick["id"]).result
            assert pick_result["value"] == 5
            assert pick_result["winner_payload"]["tag"] == 5
            study_results = sorted(
                (client.result(n["id"]).result for n in by_stage["study"]),
                key=lambda r: r["x"])
            assert study_results == [{"tag": 5, "x": 10},
                                     {"tag": 5, "x": 20}]

    def test_cycle_rejected_before_any_enqueue(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=0,
                               shards=NSHARDS) as srv:
            client = ServiceClient(srv.url)
            spec = {"name": "loop", "stages": [
                {"name": "a", "kind": "probe",
                 "payload": {"behavior": "ok"}, "after": ["b"]},
                {"name": "b", "kind": "probe",
                 "payload": {"behavior": "ok"}, "after": ["a"]},
            ]}
            with pytest.raises(CycleError):
                client.submit_campaign(spec)
            # Rejected whole: no job, no campaign record.
            health = client.healthz()
            assert all(v == 0 for v in health["queue"].values())
            assert client.campaigns() == []

    def test_stage_failure_cancels_exactly_descendants(self, tmp_path):
        spec = {"name": "half-doomed", "stages": [
            {"name": "root", "kind": "probe",
             "payload": {"behavior": "echo", "tag": 0}},
            {"name": "bad", "after": ["root"], "kind": "probe",
             "payload": {"behavior": "crash", "message": "boom"},
             "max_retries": 0},
            {"name": "good", "after": ["root"], "kind": "probe",
             "payload": {"behavior": "echo", "tag": 1}},
            {"name": "bad-leaf", "after": ["bad"], "kind": "probe",
             "payload": {"behavior": "echo", "tag": 2}},
            {"name": "good-leaf", "after": ["good"], "kind": "probe",
             "payload": {"behavior": "echo", "tag": 3}},
        ]}
        with ServiceHTTPServer(tmp_path / "svc", workers=2,
                               shards=NSHARDS) as srv:
            client = ServiceClient(srv.url)
            view = client.submit_campaign(spec)
            final = _wait_campaign(client, view.id, "failed")
            states = {s.name: s.state for s in final.stages}
            assert states == {"root": "done", "bad": "failed",
                              "good": "done", "bad-leaf": "cancelled",
                              "good-leaf": "done"}

    def test_unknown_campaign_is_404(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=0) as srv:
            client = ServiceClient(srv.url)
            with pytest.raises(UnknownCampaignError):
                client.campaign("nope")
            with pytest.raises(UnknownCampaignError):
                client.campaign_dag("nope")


class TestRemoteFleetReduce:
    def test_fleet_workers_fetch_parent_results_over_http(self, tmp_path):
        """The reduce stage runs on a *remote* worker, which must pull
        its parents' results through the coordinator's HTTP API.
        """
        with ServiceHTTPServer(tmp_path / "svc", workers=0,
                               shards=NSHARDS) as srv:
            client = ServiceClient(srv.url)
            view = client.submit_campaign(TUNE_THEN_SCALE)
            pool = RemoteWorkerPool(
                srv.url,
                options=WorkerOptions(n=2, poll_interval=0.01,
                                      lease_ttl=10.0),
                worker="campaign-fleet",
            )
            summary = pool.run(max_seconds=120.0)
            assert summary.failed == 0 and summary.lost == 0
            assert summary.counts["DONE"] == 6
            final = client.campaign(view.id)
            assert final.state == "done"
            pick = next(s for s in final.stages if s.name == "pick")
            assert client.result(pick.job_ids[0]).result["value"] == 5


class TestIdempotentCancelHTTP:
    def test_sync_client_cancel_job_on_terminal(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=2) as srv:
            client = ServiceClient(srv.url)
            jid = client.submit("probe", {"behavior": "ok"}).new[0]
            client.wait([jid], timeout=60)
            flipped, view = client.cancel_job(jid)
            assert flipped is False
            assert isinstance(view, JobView) and view.state == "DONE"
            assert client.cancel(jid) is False  # legacy bool shim

    def test_async_client_cancel_job_on_terminal(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=2) as srv:
            async def go():
                ac = AsyncServiceClient(srv.url, poll_initial=0.02)
                jid = (await ac.submit("probe", {"behavior": "ok"})).new[0]
                await ac.wait([jid], timeout=60)
                flipped, view = await ac.cancel_job(jid)
                assert flipped is False and view.state == "DONE"
                # A live job still flips: a child of a long-running
                # parent is reliably BLOCKED when the cancel arrives.
                slow = (await ac.submit(
                    "probe", {"behavior": "sleep", "seconds": 120.0}
                )).new[0]
                blocked = (await ac.submit(
                    "probe", {"behavior": "ok", "tag": 9},
                    depends_on=[slow])).new[0]
                flipped2, view2 = await ac.cancel_job(blocked)
                assert flipped2 is True and view2.state == "CANCELLED"
                return True
            assert asyncio.run(go()) is True


class TestCampaignCLI:
    def test_submit_status_list_dag_roundtrip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TUNE_THEN_SCALE))
        with ServiceHTTPServer(tmp_path / "svc", workers=2,
                               shards=NSHARDS) as srv:
            rc = main(["campaign", "submit", "--spec", str(spec_path),
                       "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0
            assert "6 job(s) in 3 stage(s)" in out
            campaign_id = out.split()[1]

            client = ServiceClient(srv.url)
            _wait_campaign(client, campaign_id, "done")

            rc = main(["campaign", "status", campaign_id,
                       "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0
            assert "state=done" in out and "jobs=6" in out
            for stage in ("grid", "pick", "study"):
                assert stage in out

            rc = main(["campaign", "status", campaign_id, "--dag",
                       "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0
            assert out.count("DONE") == 6 and "<-" in out

            rc = main(["campaign", "list", "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0
            assert campaign_id in out and "tune-then-scale" in out

    def test_cancel_cli_is_idempotent(self, tmp_path, capsys):
        with ServiceHTTPServer(tmp_path / "svc", workers=2) as srv:
            client = ServiceClient(srv.url)
            jid = client.submit("probe", {"behavior": "ok"}).new[0]
            client.wait([jid], timeout=60)
            rc = main(["cancel", jid, "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0  # terminal cancel is a no-op success
            assert "already" in out and "DONE" in out
