"""HPLConfig validation and the error hierarchy."""

from __future__ import annotations

import pytest

from repro.config import BcastVariant, HPLConfig, PFactVariant, Schedule
from repro.errors import (
    AbortError,
    CommError,
    ConfigError,
    DeadlockError,
    ReproError,
    ScheduleError,
    SingularMatrixError,
    SpmdError,
    VerificationError,
)


class TestConfig:
    def test_defaults_match_rochpl(self):
        cfg = HPLConfig(n=1024, nb=512, p=4, q=2)
        assert cfg.pfact is PFactVariant.RIGHT
        assert cfg.rfact is PFactVariant.RIGHT
        assert cfg.ndiv == 2 and cfg.nbmin == 16
        assert cfg.bcast is BcastVariant.ONE_RING_M
        assert cfg.schedule is Schedule.SPLIT_UPDATE
        assert cfg.split_fraction == 0.5
        assert cfg.depth == 1

    def test_derived_quantities(self):
        cfg = HPLConfig(n=100, nb=32, p=2, q=3)
        assert cfg.nranks == 6
        assert cfg.nblocks == 4  # ceil(100/32)
        assert cfg.total_flops == pytest.approx(2 / 3 * 100**3 + 1.5 * 100**2)

    def test_replace(self):
        cfg = HPLConfig(n=64, nb=8, p=2, q=2)
        cfg2 = cfg.replace(nb=16)
        assert cfg2.nb == 16 and cfg.nb == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=0),
            dict(nb=0),
            dict(p=0),
            dict(q=0),
            dict(ndiv=1),
            dict(nbmin=0),
            dict(depth=2),
            dict(split_fraction=1.5),
            dict(split_fraction=-0.1),
            dict(fact_threads=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        base = dict(n=64, nb=8, p=2, q=2)
        base.update(kwargs)
        with pytest.raises(ConfigError):
            HPLConfig(**base)

    def test_lookahead_needs_depth(self):
        with pytest.raises(ConfigError):
            HPLConfig(n=64, nb=8, p=2, q=2, schedule=Schedule.LOOKAHEAD, depth=0)

    def test_classic_with_depth_zero_ok(self):
        HPLConfig(n=64, nb=8, p=2, q=2, schedule=Schedule.CLASSIC, depth=0)

    def test_frozen(self):
        cfg = HPLConfig(n=64, nb=8, p=2, q=2)
        with pytest.raises(Exception):
            cfg.n = 128


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            CommError, DeadlockError, AbortError, ConfigError, ScheduleError,
            SingularMatrixError, VerificationError,
        ):
            assert issubclass(exc, ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_spmd_error_message_names_ranks(self):
        err = SpmdError({2: ValueError("x"), 0: KeyError("y")})
        assert "0, 2" in str(err)
        assert "KeyError" in str(err)  # lowest rank's error is summarized


class TestSerialization:
    def test_round_trip_preserves_every_field(self):
        cfg = HPLConfig(
            n=96, nb=16, p=2, q=3, pfact=PFactVariant.CROUT,
            bcast=BcastVariant.BLONG, schedule=Schedule.LOOKAHEAD,
            split_fraction=0.3, fact_threads=4, seed=7,
        )
        assert HPLConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_encodes_enums_by_value(self):
        d = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        assert d["pfact"] == "right"
        assert d["schedule"] == "split"
        assert all(not isinstance(v, Schedule) for v in d.values())

    def test_from_dict_accepts_enum_values_and_members(self):
        base = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        by_value = HPLConfig.from_dict({**base, "schedule": "lookahead"})
        by_member = HPLConfig.from_dict(
            {**base, "schedule": Schedule.LOOKAHEAD}
        )
        assert by_value == by_member

    def test_from_dict_rejects_unknown_fields(self):
        base = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        with pytest.raises(ConfigError, match="unknown"):
            HPLConfig.from_dict({**base, "does_not_exist": 1})

    def test_from_dict_rejects_bad_enum_value(self):
        base = HPLConfig(n=64, nb=8, p=2, q=2).to_dict()
        with pytest.raises(ConfigError, match="schedule"):
            HPLConfig.from_dict({**base, "schedule": "bogus"})

    def test_config_key_is_stable_and_content_addressed(self):
        a = HPLConfig(n=64, nb=8, p=2, q=2)
        b = HPLConfig(n=64, nb=8, p=2, q=2)
        c = a.replace(nb=16)
        assert a.config_key() == b.config_key()
        assert a.config_key() != c.config_key()
        assert len(a.config_key()) == 64  # sha256 hex
