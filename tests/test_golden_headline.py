"""Golden regression pins for the paper's headline numbers.

Unlike the shape assertions in test_perf.py (which allow wide ranges),
these pin the simulator's *current* Fig. 7 / Fig. 8 outputs tightly, so
any model or engine change that moves a headline number fails loudly and
must update the pin deliberately.  All pins run on the fast engine; a
cross-check asserts the full engine lands on the identical floats.
"""

from __future__ import annotations

import pytest

from repro.machine.frontier import crusher_cluster
from repro.perf import PerfConfig, simulate_run
from repro.perf.scaling import weak_scaling, weak_scaling_efficiency

REL = 1e-9


@pytest.fixture(scope="module")
def fig7_report():
    """The paper's single-node Fig. 7 run: N=256k, NB=512, 4x2, split."""
    cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)
    return simulate_run(cfg, crusher_cluster(1), fidelity="fast")


class TestFig7Golden:
    def test_hidden_time_fraction_pinned(self, fig7_report):
        """Paper: ~75 % of runtime in the fully-hidden regime."""
        assert fig7_report.hidden_time_fraction == pytest.approx(
            0.7629118310573169, rel=REL
        )
        assert 0.70 <= fig7_report.hidden_time_fraction <= 0.80

    def test_hidden_iteration_fraction_pinned(self, fig7_report):
        """Paper (Sec. V): about half the iterations are fully hidden."""
        assert fig7_report.hidden_iteration_fraction == pytest.approx(
            0.484, rel=REL
        )

    def test_single_node_score_pinned(self, fig7_report):
        """~80 % of the node's 196 TFLOPS DGEMM ceiling."""
        assert fig7_report.score_tflops == pytest.approx(
            157.09513660735203, rel=REL
        )

    def test_early_regime_throughput_pinned(self, fig7_report):
        """Paper: ~90 % of the DGEMM ceiling while updates stay fat."""
        early = fig7_report.early_regime_tflops()
        assert early == pytest.approx(181.3091112130893, rel=REL)
        assert early / 196.0 > 0.90

    def test_fast_and_full_engines_agree_bitwise(self, fig7_report):
        cfg = fig7_report.cfg
        full = simulate_run(cfg, crusher_cluster(1), fidelity="full")
        assert full.makespan == fig7_report.makespan
        assert full.score_tflops == fig7_report.score_tflops
        assert full.hidden_time_fraction == fig7_report.hidden_time_fraction


class TestFig8Golden:
    @pytest.fixture(scope="class")
    def points(self):
        return weak_scaling([1, 128], fidelity="fast")

    def test_128_node_efficiency_pinned(self, points):
        """Paper: >90 % weak-scaling efficiency out to 128 nodes."""
        eff = weak_scaling_efficiency(points)[-1]
        assert eff == pytest.approx(0.9447822429641267, rel=REL)
        assert eff > 0.90

    def test_128_node_score_pinned(self, points):
        """Paper's Frontier headline: ~17.75 PFLOPS territory."""
        final = points[-1]
        assert final.nnodes == 128
        assert final.tflops == pytest.approx(18997.84902689919, rel=REL)
        assert 15_000 <= final.tflops <= 21_000
