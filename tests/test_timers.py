"""Phase timers and iteration ledgers."""

from __future__ import annotations

import pytest

from repro.blas.kernels import FLOPS, dscal_inplace
from repro.hpl.timers import IterLedger, PhaseRecord, Timers

import numpy as np


@pytest.fixture(autouse=True)
def reset_flops():
    FLOPS.take()
    yield
    FLOPS.take()


class TestTimers:
    def test_phase_captures_flops(self):
        timers = Timers()
        with timers.iteration(0):
            with timers.phase("UPDATE"):
                dscal_inplace(np.ones(100), 2.0)
        assert timers.iters[0].phases["UPDATE"].flops == 100

    def test_phase_captures_wall_time(self):
        timers = Timers()
        with timers.iteration(0):
            with timers.phase("FACT"):
                sum(range(10_000))
        assert timers.iters[0].phases["FACT"].seconds > 0

    def test_nested_phases_attribute_inner_flops_inward_only(self):
        timers = Timers()
        with timers.iteration(0):
            with timers.phase("OUTER"):
                dscal_inplace(np.ones(10), 2.0)
                with timers.phase("INNER"):
                    dscal_inplace(np.ones(30), 2.0)
        ledger = timers.iters[0]
        assert ledger.phases["INNER"].flops == 30
        # the outer phase measured everything inside its span
        assert ledger.phases["OUTER"].flops == 40

    def test_phase_outside_iteration_is_noop(self):
        timers = Timers()
        with timers.phase("X"):
            dscal_inplace(np.ones(5), 2.0)
        assert timers.iters == []

    def test_repeated_phase_accumulates(self):
        timers = Timers()
        with timers.iteration(3):
            for _ in range(4):
                with timers.phase("RS"):
                    dscal_inplace(np.ones(10), 2.0)
        assert timers.iters[0].phases["RS"].flops == 40
        assert timers.iters[0].k == 3

    def test_transfer_recording(self):
        timers = Timers()
        with timers.iteration(0):
            timers.transfer(d2h_bytes=100)
            timers.transfer(h2d_bytes=50)
        rec = timers.iters[0].phases["TRANSFER"]
        assert rec.d2h_bytes == 100 and rec.h2d_bytes == 50

    def test_transfer_outside_iteration_ignored(self):
        timers = Timers()
        timers.transfer(d2h_bytes=100)
        assert timers.iters == []

    def test_total_aggregates_over_iterations(self):
        timers = Timers()
        for k in range(3):
            with timers.iteration(k):
                with timers.phase("UPDATE"):
                    dscal_inplace(np.ones(10), 2.0)
        assert timers.total("UPDATE").flops == 30
        assert timers.total("MISSING").flops == 0


class TestRecords:
    def test_phase_record_iadd(self):
        a = PhaseRecord(seconds=1.0, flops=10, d2h_bytes=5, h2d_bytes=2)
        a += PhaseRecord(seconds=0.5, flops=30, d2h_bytes=1, h2d_bytes=1)
        assert (a.seconds, a.flops, a.d2h_bytes, a.h2d_bytes) == (1.5, 40, 6, 3)

    def test_ledger_get_creates_once(self):
        ledger = IterLedger(0)
        rec = ledger.get("X")
        rec.flops = 5
        assert ledger.get("X").flops == 5
