"""Hypothesis properties of the chunked result-streaming codec.

The streaming path (worker -> coordinator -> client) is only as sound
as its framing codec, so the codec's invariants get generative coverage
at 200 examples each -- well past the suite's default profile:

* **Round-trip** -- for ANY byte string (empty included) and ANY chunk
  size down to one byte, splitting with :func:`iter_chunks` and feeding
  the chunks through a :class:`ChunkAssembler` reproduces the input
  exactly, whether the sink is memory or a spool file.  Sizes that
  straddle chunk boundaries (``k*chunk_size - 1 .. + 1``) are drawn
  explicitly, since off-by-ones live exactly there.
* **Integrity** -- flipping any single byte of any chunk is rejected by
  the per-chunk sha256 before the sink is touched, and a finish whose
  declared size or whole-stream hash disagrees with what arrived is
  rejected too.
* **Ordering** -- a replayed, skipped, or otherwise out-of-order offset
  raises ``bad_offset`` without corrupting the verified prefix.
* **Result encoding** -- ``decode_result(encode_result(r)) == r`` for
  arbitrary JSON-object results, and the encoding is canonical (equal
  dicts encode to equal bytes regardless of key order).
"""

from __future__ import annotations

import io
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChunkIntegrityError, ChunkOffsetError, MalformedRequestError
from repro.service import ChunkAssembler, decode_result, encode_result, iter_chunks
from repro.service.streams import chunk_sha256, stream_sha256

_blobs = st.binary(max_size=4096)
_chunk_sizes = st.integers(min_value=1, max_value=257)

# JSON-object results: scalars, and one level of list/dict nesting --
# enough to cover what runners actually return.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_results = st.dictionaries(
    st.text(max_size=10),
    st.one_of(_scalars, st.lists(_scalars, max_size=5),
              st.dictionaries(st.text(max_size=10), _scalars, max_size=5)),
    max_size=8,
)


def _assemble(data: bytes, chunk_size: int, sink=None) -> ChunkAssembler:
    asm = ChunkAssembler(sink)
    for chunk in iter_chunks(data, chunk_size):
        asm.feed(chunk.offset, chunk.data, chunk.sha256)
    asm.finish(len(data), stream_sha256(data))
    return asm


class TestRoundTrip:
    @given(data=_blobs, chunk_size=_chunk_sizes)
    @settings(max_examples=200, deadline=None)
    def test_split_and_reassemble_is_identity(self, data, chunk_size):
        asm = _assemble(data, chunk_size)
        assert asm.getvalue() == data
        assert asm.bytes_received == len(data)

    @given(chunk_size=_chunk_sizes,
           k=st.integers(min_value=1, max_value=5),
           delta=st.integers(min_value=-1, max_value=1))
    @settings(max_examples=200, deadline=None)
    def test_boundary_straddling_sizes(self, chunk_size, k, delta):
        """Sizes of k*chunk_size - 1, exactly k chunks, and one byte over."""
        size = max(0, k * chunk_size + delta)
        data = bytes(i % 251 for i in range(size))
        chunks = list(iter_chunks(data, chunk_size))
        assert len(chunks) == (size + chunk_size - 1) // chunk_size
        assert sum(len(c.data) for c in chunks) == size
        # Every chunk but the last is full; offsets tile [0, size).
        for i, c in enumerate(chunks):
            assert c.offset == i * chunk_size
            if i < len(chunks) - 1:
                assert len(c.data) == chunk_size
        assert _assemble(data, chunk_size).getvalue() == data

    @given(data=_blobs, chunk_size=_chunk_sizes)
    @settings(max_examples=200, deadline=None)
    def test_file_sink_spools_identical_bytes(self, data, chunk_size):
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "spool.part")
            with open(path, "wb") as fh:
                _assemble(data, chunk_size, sink=fh)
            with open(path, "rb") as fh:
                assert fh.read() == data

    def test_empty_stream_is_just_a_finish(self):
        assert list(iter_chunks(b"", 64)) == []
        asm = ChunkAssembler()
        assert asm.finish(0, stream_sha256(b"")) == 0
        assert asm.getvalue() == b""

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            list(iter_chunks(b"xy", 0))


class TestIntegrity:
    @given(data=st.binary(min_size=1, max_size=2048),
           chunk_size=_chunk_sizes,
           pos=st.integers(min_value=0),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=200, deadline=None)
    def test_any_flipped_byte_is_rejected_before_the_sink(
            self, data, chunk_size, pos, flip):
        pos %= len(data)
        corrupt = bytearray(data)
        corrupt[pos] ^= flip
        asm = ChunkAssembler()
        with pytest.raises(ChunkIntegrityError):
            for chunk in iter_chunks(bytes(corrupt), chunk_size):
                # Declared hashes are those of the *original* bytes, as
                # if the flip happened in transit.
                asm.feed(chunk.offset, chunk.data,
                         chunk_sha256(data[chunk.offset:
                                           chunk.offset + chunk_size]))
        # Only chunks before the corrupt one made it into the sink.
        assert asm.getvalue() == data[:asm.bytes_received]
        assert asm.bytes_received <= pos

    @given(data=_blobs, chunk_size=_chunk_sizes,
           delta=st.integers(min_value=-3, max_value=3).filter(bool))
    @settings(max_examples=200, deadline=None)
    def test_finish_rejects_wrong_size(self, data, chunk_size, delta):
        asm = ChunkAssembler()
        for chunk in iter_chunks(data, chunk_size):
            asm.feed(chunk.offset, chunk.data, chunk.sha256)
        with pytest.raises(ChunkOffsetError):
            asm.finish(len(data) + delta, stream_sha256(data))

    @given(data=_blobs, chunk_size=_chunk_sizes)
    @settings(max_examples=200, deadline=None)
    def test_finish_rejects_wrong_stream_hash(self, data, chunk_size):
        asm = ChunkAssembler()
        for chunk in iter_chunks(data, chunk_size):
            asm.feed(chunk.offset, chunk.data, chunk.sha256)
        with pytest.raises(ChunkIntegrityError):
            asm.finish(len(data), stream_sha256(data + b"!"))


class TestOrdering:
    @given(data=st.binary(min_size=2, max_size=2048),
           chunk_size=st.integers(min_value=1, max_value=64),
           skew=st.integers(min_value=-5, max_value=5).filter(bool))
    @settings(max_examples=200, deadline=None)
    def test_out_of_order_offset_is_rejected(self, data, chunk_size, skew):
        chunks = list(iter_chunks(data, chunk_size))
        asm = ChunkAssembler()
        asm.feed(chunks[0].offset, chunks[0].data, chunks[0].sha256)
        bad = max(0, chunks[0].offset + len(chunks[0].data) + skew)
        if bad == asm.bytes_received:  # skew happened to cancel out
            bad += 1
        with pytest.raises(ChunkOffsetError):
            asm.feed(bad, chunks[-1].data, chunks[-1].sha256)
        # The verified prefix survives the rejected frame.
        assert asm.getvalue() == chunks[0].data

    @given(data=st.binary(min_size=1, max_size=512),
           chunk_size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_replayed_chunk_is_rejected(self, data, chunk_size):
        chunks = list(iter_chunks(data, chunk_size))
        asm = ChunkAssembler()
        for chunk in chunks:
            asm.feed(chunk.offset, chunk.data, chunk.sha256)
        with pytest.raises(ChunkOffsetError):
            asm.feed(chunks[-1].offset, chunks[-1].data, chunks[-1].sha256)


class TestResultEncoding:
    @given(result=_results)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trip(self, result):
        assert decode_result(encode_result(result)) == result

    @given(result=_results)
    @settings(max_examples=200, deadline=None)
    def test_encoding_is_canonical(self, result):
        shuffled = dict(reversed(list(result.items())))
        assert encode_result(result) == encode_result(shuffled)

    def test_non_object_results_are_rejected(self):
        with pytest.raises(MalformedRequestError):
            encode_result(["not", "a", "dict"])
        with pytest.raises(MalformedRequestError):
            decode_result(b"[1,2,3]")
        with pytest.raises(ChunkIntegrityError):
            decode_result(b"{truncated")
