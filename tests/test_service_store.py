"""Job store: claims, transitions, and persistence across restarts."""

from __future__ import annotations

import pytest

from repro.errors import UnknownJobError
from repro.service import Job, JobState, JobStore
from repro.service.cache import payload_key


def _job(i: int, **kwargs) -> Job:
    payload = {"behavior": "ok", "i": i}
    return Job(
        id=f"job-{i:04d}", kind="probe", payload=payload,
        key=payload_key("probe", payload), created=float(i), **kwargs,
    )


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "svc")


class TestBasics:
    def test_add_get_round_trip(self, store):
        job = _job(1, timeout=2.5, max_retries=7)
        store.add(job)
        got = store.get("job-0001")
        assert got.payload == {"behavior": "ok", "i": 1}
        assert got.state is JobState.PENDING
        assert got.timeout == 2.5
        assert got.max_retries == 7

    def test_get_unknown_id_raises(self, store):
        with pytest.raises(UnknownJobError):
            store.get("nope")

    def test_counts_cover_every_state(self, store):
        store.add(_job(1))
        counts = store.counts()
        assert counts["PENDING"] == 1
        assert set(counts) == {s.value for s in JobState}


class TestClaim:
    def test_claim_oldest_first_and_marks_running(self, store):
        store.add(_job(2))
        store.add(_job(1))
        job = store.claim("w0")
        assert job.id == "job-0001"  # created earlier
        assert job.state is JobState.RUNNING
        assert job.attempts == 1
        assert job.worker == "w0"
        assert store.get("job-0001").state is JobState.RUNNING

    def test_claim_skips_jobs_in_backoff(self, store):
        store.add(_job(1, not_before=1e12))  # far future
        assert store.claim("w0") is None

    def test_claim_empty_queue_returns_none(self, store):
        assert store.claim("w0") is None

    def test_running_jobs_are_not_reclaimed(self, store):
        store.add(_job(1))
        assert store.claim("w0") is not None
        assert store.claim("w1") is None


class TestTransitions:
    def test_done_records_result_key(self, store):
        store.add(_job(1))
        store.claim("w0")
        done = store.mark_done("job-0001", "abc123")
        assert done.state is JobState.DONE
        assert done.result_key == "abc123"

    def test_requeue_returns_job_to_pending_with_backoff(self, store):
        store.add(_job(1))
        store.claim("w0")
        back = store.requeue("job-0001", "boom", not_before=1e12)
        assert back.state is JobState.PENDING
        assert back.error == "boom"
        assert store.claim("w1") is None  # still backing off

    def test_cancel_only_hits_pending(self, store):
        store.add(_job(1))
        store.add(_job(2))
        store.claim("w0")  # job-0001 now RUNNING
        assert store.cancel("job-0001") is False
        assert store.cancel("job-0002") is True
        assert store.get("job-0002").state is JobState.CANCELLED


class TestPersistence:
    def test_queue_survives_restart(self, store, tmp_path):
        """A fresh JobStore on the same workdir sees identical state."""
        store.add(_job(1))
        store.add(_job(2))
        store.claim("w0")
        store.mark_done("job-0001", "k1")
        store.close()

        reopened = JobStore(tmp_path / "svc")  # the simulated restart
        assert reopened.get("job-0001").state is JobState.DONE
        assert reopened.get("job-0001").result_key == "k1"
        assert reopened.get("job-0002").state is JobState.PENDING
        # the restarted store can keep going where the old one stopped
        assert reopened.claim("w0").id == "job-0002"

    def test_event_log_records_the_lifecycle(self, store):
        store.add(_job(1))
        store.claim("w0")
        store.mark_done("job-0001", "k1")
        events = [e["event"] for e in store.events()
                  if e["job"] == "job-0001"]
        assert events == ["submitted", "claimed", "done"]
