"""The measured (numeric-engine) per-iteration breakdown."""

from __future__ import annotations

import pytest

from repro.config import HPLConfig
from repro.hpl.api import run_hpl
from repro.perf.measured import (
    format_measured_table,
    measured_breakdown,
    measured_chart,
)


@pytest.fixture(scope="module")
def result():
    return run_hpl(HPLConfig(n=128, nb=8, p=2, q=2))


class TestMeasuredBreakdown:
    def test_one_row_per_iteration(self, result):
        rows = measured_breakdown(result.timers)
        assert [r.k for r in rows] == list(range(16))

    def test_update_work_decays_quadratically_faster_than_fact(self, result):
        """The arithmetic behind the paper's two regimes: per-iteration
        UPDATE work decays quadratically with the trailing size, FACT work
        only linearly, so FACT eventually dominates the iteration.

        Baseline is iteration 1 (iteration 0 carries the folded-in
        preamble FACT of panel 0)."""
        rows = measured_breakdown(result.timers)
        first, late = rows[1], rows[-3]
        upd_ratio = late.flops["UPDATE"] / first.flops["UPDATE"]
        fact_ratio = late.flops["FACT"] / first.flops["FACT"]
        assert upd_ratio < 0.5 * fact_ratio

    def test_update_share_falls_over_the_run(self, result):
        rows = measured_breakdown(result.timers)
        # the final iteration is degenerate (RHS column only); compare an
        # interior tail row against the start
        assert rows[0].update_share > rows[-3].update_share
        assert rows[0].update_share > 0.85  # early regime: UPDATE dominates

    def test_flops_sum_matches_timers_totals(self, result):
        rows = measured_breakdown(result.timers)
        total_update = sum(r.flops.get("UPDATE", 0.0) for r in rows)
        expected = sum(t.total("UPDATE").flops for t in result.timers)
        assert total_update == pytest.approx(expected)

    def test_transfer_bytes_aggregated(self, result):
        rows = measured_breakdown(result.timers)
        assert sum(r.d2h_bytes for r in rows) > 0
        assert sum(r.d2h_bytes for r in rows) == sum(
            r.h2d_bytes for r in rows
        )

    def test_preamble_folds_into_iteration_zero(self, result):
        rows = measured_breakdown(result.timers)
        # the look-ahead preamble FACT (k=-1) must appear under k=0
        assert rows[0].flops.get("FACT", 0.0) > 0

    def test_table_and_chart_render(self, result):
        rows = measured_breakdown(result.timers)
        table = format_measured_table(rows, stride=2)
        assert "UPDATE Mf" in table and "upd %" in table
        chart = measured_chart(rows)
        assert "UPDATE Mflop" in chart and "FACT Mflop" in chart
