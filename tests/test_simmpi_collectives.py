"""Collective algorithm semantics, across sizes, roots, and algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import BcastVariant
from repro.errors import CommError

from .conftest import spmd

ALL_BCASTS = [v.value for v in BcastVariant]
SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestBcast:
    @pytest.mark.parametrize("algo", ALL_BCASTS)
    @pytest.mark.parametrize("size", SIZES)
    def test_every_rank_gets_array(self, algo, size):
        def main(comm):
            payload = np.arange(23.0) if comm.rank == comm.size - 1 else None
            return comm.bcast(payload, root=comm.size - 1, algo=algo)

        for out in spmd(size, main):
            assert np.array_equal(out, np.arange(23.0))

    @pytest.mark.parametrize("algo", ALL_BCASTS)
    def test_every_root(self, algo):
        size = 5

        def main(comm):
            got = []
            for root in range(comm.size):
                value = ("obj", root) if comm.rank == root else None
                got.append(comm.bcast(value, root=root, algo=algo))
            return got

        for out in spmd(size, main):
            assert out == [("obj", r) for r in range(size)]

    @pytest.mark.parametrize("algo", ALL_BCASTS)
    def test_2d_array_payload(self, algo):
        def main(comm):
            payload = np.ones((4, 6), order="F") * 2 if comm.rank == 0 else None
            return comm.bcast(payload, root=0, algo=algo)

        for out in spmd(4, main):
            assert out.shape == (4, 6) and np.all(out == 2.0)

    def test_unknown_algo_raises(self):
        def main(comm):
            with pytest.raises(CommError):
                comm.bcast(1, root=0, algo="bogus")

        spmd(2, main)

    def test_bad_root_raises(self):
        def main(comm):
            with pytest.raises(CommError):
                comm.bcast(1, root=7)

        spmd(2, main)

    def test_back_to_back_broadcasts_do_not_cross(self):
        def main(comm):
            a = comm.bcast(1 if comm.rank == 0 else None, root=0, algo="1ring")
            b = comm.bcast(2 if comm.rank == 0 else None, root=0, algo="1ring")
            return (a, b)

        for out in spmd(4, main):
            assert out == (1, 2)


class TestReductions:
    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_sum_scalar(self, size):
        out = spmd(size, lambda c: c.allreduce(c.rank + 1, op="sum"))
        assert out == [size * (size + 1) // 2] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_max_min(self, size):
        def main(comm):
            return (
                comm.allreduce(comm.rank, op="max"),
                comm.allreduce(comm.rank, op="min"),
            )

        assert spmd(size, main) == [(size - 1, 0)] * size

    def test_allreduce_array_sum(self):
        def main(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), op="sum")

        for out in spmd(5, main):
            assert np.array_equal(out, np.full(3, 10.0))

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=6))
    def test_allreduce_sum_matches_python_sum(self, values):
        out = spmd(len(values), lambda c: c.allreduce(values[c.rank], op="sum"))
        assert out == [sum(values)] * len(values)

    def test_allreduce_custom_maxloc(self):
        def maxloc(a, b):
            return a if (a[0], -a[1]) >= (b[0], -b[1]) else b

        vals = [3.0, 9.0, 9.0, 1.0]

        def main(comm):
            return comm.allreduce((vals[comm.rank], comm.rank), op=maxloc)

        # ties break to the lower index, deterministically on every rank
        assert spmd(4, main) == [(9.0, 1)] * 4

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_to_root(self, size):
        def main(comm):
            return comm.reduce(comm.rank + 1, op="sum", root=size - 1)

        out = spmd(size, main)
        assert out[size - 1] == size * (size + 1) // 2
        assert all(v is None for v in out[: size - 1])

    def test_unknown_op_raises(self):
        def main(comm):
            with pytest.raises(CommError):
                comm.allreduce(1, op="median")

        spmd(2, main)


class TestGatherScatter:
    @pytest.mark.parametrize("size", SIZES)
    def test_gather(self, size):
        out = spmd(size, lambda c: c.gather(c.rank**2, root=0))
        assert out[0] == [r**2 for r in range(size)]
        assert all(v is None for v in out[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        out = spmd(size, lambda c: c.allgather(c.rank))
        assert out == [list(range(size))] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_scatter(self, size):
        def main(comm):
            objs = [f"item{r}" for r in range(size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert spmd(size, main) == [f"item{r}" for r in range(size)]

    def test_scatter_wrong_count_raises(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(CommError):
                    comm.scatter([1], root=0)
                raise RuntimeError("expected")  # unblock peers deterministically
            comm.recv(0)

        from repro.errors import SpmdError

        with pytest.raises(SpmdError):
            spmd(2, main)

    @pytest.mark.parametrize("size", SIZES)
    def test_scatterv_variable_chunks(self, size):
        def main(comm):
            chunks = None
            if comm.rank == 0:
                chunks = [np.full(r + 1, float(r)) for r in range(size)]
            return comm.scatterv(chunks, root=0)

        out = spmd(size, main)
        for r, chunk in enumerate(out):
            assert np.array_equal(chunk, np.full(r + 1, float(r)))

    @pytest.mark.parametrize("size", SIZES)
    def test_allgatherv_reassembles(self, size):
        def main(comm):
            chunk = np.arange(comm.rank + 1, dtype=float) + 100 * comm.rank
            return comm.allgatherv(chunk)

        for out in spmd(size, main):
            assert len(out) == size
            for r, part in enumerate(out):
                assert np.array_equal(part, np.arange(r + 1, dtype=float) + 100 * r)

    def test_allgatherv_2d_fortran_chunks(self):
        def main(comm):
            chunk = np.asfortranarray(np.full((comm.rank, 3), float(comm.rank)))
            parts = comm.allgatherv(chunk)
            return np.concatenate(parts, axis=0)

        for out in spmd(4, main):
            assert out.shape == (0 + 1 + 2 + 3, 3)

    @given(st.integers(1, 6), st.integers(0, 20))
    def test_gatherv_roundtrip(self, size, extra):
        def main(comm):
            chunk = np.full(comm.rank + extra, float(comm.rank))
            parts = comm.gatherv(chunk, root=0)
            if comm.rank == 0:
                return np.concatenate(parts)
            return None

        out = spmd(size, main)[0]
        expected = np.concatenate(
            [np.full(r + extra, float(r)) for r in range(size)]
        )
        assert np.array_equal(out, expected)


class TestBarrier:
    @pytest.mark.parametrize("size", SIZES)
    def test_barrier_completes(self, size):
        def main(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(spmd(size, main))

    def test_barrier_orders_sides(self):
        """Post-barrier receives see pre-barrier sends."""

        def main(comm):
            if comm.rank == 0:
                comm.send("early", 1)
            comm.barrier()
            if comm.rank == 1:
                assert comm.iprobe(0)
                return comm.recv(0)

        assert spmd(2, main)[1] == "early"
