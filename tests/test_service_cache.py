"""Result cache: content addressing, atomic storage, and submit-time reuse."""

from __future__ import annotations

import hashlib
import json
import os

from repro.service import JobState, ResultCache, Service, Sweep, payload_key

FACT_PAYLOAD = {"nb": 32, "thread_counts": [1, 2], "m_multiples": [1, 2]}


class TestPayloadKey:
    def test_insensitive_to_dict_ordering(self):
        a = payload_key("sim", {"n": 64, "nb": 8})
        b = payload_key("sim", {"nb": 8, "n": 64})
        assert a == b

    def test_kind_is_part_of_the_key(self):
        assert payload_key("sim", {"n": 64}) != payload_key("run", {"n": 64})

    def test_payload_content_is_part_of_the_key(self):
        assert payload_key("sim", {"n": 64}) != payload_key("sim", {"n": 65})


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = payload_key("fact", FACT_PAYLOAD)
        cache.put(key, "fact", FACT_PAYLOAD, {"score": 1.5})
        record = cache.get(key)
        assert record["result"] == {"score": 1.5}
        assert record["kind"] == "fact"
        assert key in cache
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert "0" * 64 not in cache

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = payload_key("fact", FACT_PAYLOAD)
        cache.put(key, "fact", FACT_PAYLOAD, {"v": 1})
        cache.put(key, "fact", FACT_PAYLOAD, {"v": 2})
        assert cache.get(key)["result"] == {"v": 2}
        assert len(cache) == 1

    def test_large_result_spills_to_a_blob_and_round_trips(self, tmp_path):
        """put() past inline_max writes a sidecar blob; get() is
        indistinguishable from the inline path, and the record carries
        a size/sha descriptor instead of the result body.
        """
        cache = ResultCache(tmp_path, inline_max=64)
        key = payload_key("sim", {"n": 1})
        big = {"blob": "y" * 500}
        cache.put(key, "sim", {"n": 1}, big)
        assert cache.get(key)["result"] == big
        info = cache.result_info(key)
        assert info["inline"] is False and info["size"] > 64
        fh, size = cache.open_result(key)
        try:
            raw = fh.read()
        finally:
            fh.close()
        assert len(raw) == size == info["size"]
        assert hashlib.sha256(raw).hexdigest() == info["sha256"]
        assert json.loads(raw) == big
        # Blob sidecars are storage detail, not cache entries.
        assert len(cache) == 1


class TestCorruptionRecovery:
    """Regression: a half-written or corrupted cache file is a MISS.

    A crash between creat() and the final rename used to be able to
    leave bytes get() would crash on (json.JSONDecodeError escaping to
    every submit-time cache probe); any unreadable record must instead
    read as absent so the job simply re-runs.
    """

    def _put_one(self, cache) -> str:
        key = payload_key("fact", FACT_PAYLOAD)
        cache.put(key, "fact", FACT_PAYLOAD, {"score": 1.5})
        return key

    def test_truncated_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put_one(cache)
        path = cache._path(key)
        with open(path, "rb") as fh:
            whole = fh.read()
        with open(path, "wb") as fh:
            fh.write(whole[:len(whole) // 2])  # torn write
        assert cache.get(key) is None
        assert cache.meta(key) is None
        assert cache.result_info(key) is None
        assert cache.open_result(key) is None

    def test_garbage_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put_one(cache)
        for garbage in (b"", b"\x00\xff\x00garbage", b'["not an object"]'):
            with open(cache._path(key), "wb") as fh:
                fh.write(garbage)
            assert cache.get(key) is None

    def test_corrupt_miss_recovers_on_next_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put_one(cache)
        with open(cache._path(key), "wb") as fh:
            fh.write(b"{torn")
        assert cache.get(key) is None
        cache.put(key, "fact", FACT_PAYLOAD, {"score": 2.5})
        assert cache.get(key)["result"] == {"score": 2.5}

    def test_missing_or_corrupt_blob_sidecar_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, inline_max=16)
        key = payload_key("sim", {"n": 2})
        cache.put(key, "sim", {"n": 2}, {"blob": "y" * 200})
        os.unlink(cache._blob_path(key))
        assert cache.get(key) is None
        assert cache.open_result(key) is None


class TestSubmitTimeReuse:
    def test_identical_resubmission_is_served_from_cache(self, tmp_path):
        """Acceptance: resubmitting a completed config runs zero jobs."""
        service = Service(tmp_path / "svc")
        first = service.submit("fact", FACT_PAYLOAD)
        assert len(first.new) == 1
        summary = service.run_workers(n=1, max_seconds=60)
        assert summary.completed == 1

        claims_before = sum(
            1 for e in service.store.events() if e["event"] == "claimed"
        )
        again = service.submit("fact", FACT_PAYLOAD)
        assert again.cached and not again.new and not again.deduped
        # the cached job is DONE immediately, with the same result
        job = service.job(again.cached[0])
        assert job.state is JobState.DONE
        assert job.cached is True
        assert service.result(again.cached[0]) == service.result(first.new[0])
        # and nothing new ever entered RUNNING
        claims_after = sum(
            1 for e in service.store.events() if e["event"] == "claimed"
        )
        assert claims_after == claims_before

    def test_sweep_resubmission_is_all_cache_hits(self, tmp_path):
        service = Service(tmp_path / "svc")
        sweep = Sweep(
            kind="fact",
            axes={"nb": [16, 32, 64]},
            base={"thread_counts": [1, 2], "m_multiples": [1, 2]},
        )
        first = service.submit_sweep(sweep)
        assert len(first.new) == 3
        service.run_workers(n=2, max_seconds=60)

        again = service.submit_sweep(sweep)
        assert len(again.cached) == 3
        assert not again.new and not again.deduped
        counts = service.store.counts()
        assert counts["RUNNING"] == 0 and counts["PENDING"] == 0

    def test_different_payload_misses_the_cache(self, tmp_path):
        service = Service(tmp_path / "svc")
        service.submit("fact", FACT_PAYLOAD)
        service.run_workers(n=1, max_seconds=60)
        other = service.submit("fact", {**FACT_PAYLOAD, "nb": 48})
        assert other.new and not other.cached
