"""Core time-sharing bindings (paper Section III.B)."""

from __future__ import annotations

import pytest

from repro.binding import (
    compute_bindings,
    crusher_topology,
    validate_bindings,
)
from repro.binding.topology import CRUSHER_GCD_TO_CCD, NodeTopology
from repro.errors import ConfigError

ALL_LOCAL_GRIDS = [(1, 8), (2, 4), (4, 2), (8, 1)]


class TestTopology:
    def test_crusher_defaults(self):
        topo = crusher_topology()
        assert topo.cores == 64 and topo.ccds == 8 and topo.gpus == 8
        assert topo.cores_per_ccd == 8

    def test_gcd_ccd_mapping_is_a_bijection(self):
        assert sorted(CRUSHER_GCD_TO_CCD) == list(range(8))

    def test_ccd_cores_partition_socket(self):
        topo = crusher_topology()
        cores = [c for ccd in range(8) for c in topo.ccd_cores(ccd)]
        assert sorted(cores) == list(range(64))

    def test_nearest_cores(self):
        topo = crusher_topology()
        # GCD 0 -> CCD 6 -> cores 48-55
        assert topo.nearest_cores(0) == list(range(48, 56))

    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeTopology(cores=60, ccds=8)
        with pytest.raises(ConfigError):
            NodeTopology(gcd_to_ccd=(0, 1, 2, 9, 4, 5, 6, 7))
        with pytest.raises(ConfigError):
            crusher_topology().ccd_cores(8)
        with pytest.raises(ConfigError):
            crusher_topology().nearest_cores(8)


class TestBindings:
    @pytest.mark.parametrize("pl,ql", ALL_LOCAL_GRIDS)
    def test_invariants_hold(self, pl, ql):
        bindings = compute_bindings(pl, ql)
        validate_bindings(bindings)

    @pytest.mark.parametrize("pl,ql", ALL_LOCAL_GRIDS)
    def test_thread_count_formula(self, pl, ql):
        """T = 1 + Cbar/pl and a FACT phase uses pl + Cbar cores."""
        bindings = compute_bindings(pl, ql)
        cbar = 64 - 8
        assert all(b.nthreads == 1 + cbar // pl for b in bindings)
        fact_cores = set()
        col0 = [b for b in bindings if b.col == 0]
        for b in col0:
            fact_cores.update(b.cores)
        assert len(fact_cores) == pl + cbar

    def test_paper_2x4_example(self):
        """Sec III.B: 2x4 grid; naive partition leaves 42 idle cores, the
        time-shared binding uses 58 in FACT + 6 waiting roots = all 64."""
        bindings = compute_bindings(2, 4)
        assert bindings[0].nthreads == 29
        used_in_fact = 2 * 29
        waiting_roots = 8 - 2
        assert used_in_fact + waiting_roots == 64

    def test_p_by_one_reduces_to_partition(self):
        """8x1: no sharing possible; every rank gets its own 8 cores."""
        bindings = compute_bindings(8, 1)
        assert all(b.nthreads == 8 for b in bindings)
        all_cores = set()
        for b in bindings:
            assert not all_cores & set(b.cores)
            all_cores.update(b.cores)
        assert len(all_cores) == 64

    def test_one_by_q_maximizes_sharing(self):
        """1x8: at most one rank ever factors, so all 57 cores are shared."""
        bindings = compute_bindings(1, 8)
        assert all(b.nthreads == 57 for b in bindings)
        pools = {b.pool_cores for b in bindings}
        assert len(pools) == 1  # every rank shares the same pool

    def test_root_in_nearest_ccd(self):
        topo = crusher_topology()
        for b in compute_bindings(4, 2, topo):
            assert b.root_core in topo.nearest_cores(b.rank)

    def test_same_row_shares_same_group(self):
        bindings = compute_bindings(4, 2)
        for b in bindings:
            peers = [x for x in bindings if x.row == b.row]
            assert all(p.pool_cores == b.pool_cores for p in peers)

    def test_locality_seeding(self):
        """A row's pool prefers cores from its own ranks' CCDs."""
        topo = crusher_topology()
        bindings = compute_bindings(4, 2, topo)
        for b in bindings:
            own_ccd_cores = set(topo.nearest_cores(b.rank))
            # the rank's nearest CCD contributes to its row's pool
            assert own_ccd_cores & set(b.pool_cores)

    def test_column_major_placement(self):
        bindings = compute_bindings(2, 4, row_major=False)
        validate_bindings(bindings)
        assert [b.row for b in bindings] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_wrong_rank_count_rejected(self):
        with pytest.raises(ConfigError):
            compute_bindings(2, 2)  # 4 ranks on an 8-GCD node

    def test_validate_catches_overlap(self):
        from repro.binding.coremap import Binding

        bad = [
            Binding(rank=0, row=0, col=0, root_core=0, pool_cores=(2, 3)),
            Binding(rank=1, row=1, col=0, root_core=1, pool_cores=(3, 4)),
        ]
        with pytest.raises(ConfigError, match="share pool cores"):
            validate_bindings(bad)

    def test_validate_catches_root_in_pool(self):
        from repro.binding.coremap import Binding

        bad = [Binding(rank=0, row=0, col=0, root_core=2, pool_cores=(2, 3))]
        with pytest.raises(ConfigError, match="root core inside"):
            validate_bindings(bad)
