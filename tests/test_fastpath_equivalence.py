"""Exhaustive fast-vs-full engine equivalence.

The closed-form vectorized timeline (``fidelity="fast"``) must reproduce
the per-task object engine (``fidelity="full"``) not approximately but to
1e-9 relative on every reported number -- and, on a pinned config matrix,
bit-exactly.  The Hypothesis layer sweeps random problem sizes, grids,
node-local tilings, all three schedules, every broadcast variant, all
swap algorithms, and the whole split-fraction range.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BcastVariant, Schedule, SwapVariant
from repro.machine.frontier import crusher_cluster
from repro.perf import PerfConfig, simulate_run
from repro.perf.fastledger import run_cost_arrays

REL = 1e-9
ABS = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL, abs_tol=ABS)


def assert_reports_equivalent(cfg, cluster):
    full = simulate_run(cfg, cluster, fidelity="full")
    fast = simulate_run(cfg, cluster, fidelity="fast")
    assert _close(fast.makespan, full.makespan), (
        f"makespan {fast.makespan!r} != {full.makespan!r}"
    )
    assert _close(fast.score_tflops, full.score_tflops)
    assert len(fast.iterations) == len(full.iterations)
    for fi, si in zip(fast.iterations, full.iterations):
        assert fi.k == si.k
        for name in ("time", "gpu_active", "fact", "mpi", "transfer"):
            a, b = getattr(fi, name), getattr(si, name)
            assert _close(a, b), f"iter {fi.k} {name}: {a!r} != {b!r}"
    return fast, full


@st.composite
def perf_configs(draw):
    nb = draw(st.sampled_from([64, 128, 256, 512]))
    nblocks = draw(st.integers(min_value=1, max_value=24))
    # ragged tails included: n need not be a multiple of nb
    off = draw(st.integers(min_value=0, max_value=nb - 1))
    n = max(1, nblocks * nb - off)
    p = draw(st.sampled_from([1, 2, 3, 4, 8]))
    q = draw(st.sampled_from([1, 2, 3, 4]))
    pl = draw(st.sampled_from([d for d in range(1, p + 1) if p % d == 0]))
    ql = draw(st.sampled_from([d for d in range(1, q + 1) if q % d == 0]))
    schedule = draw(st.sampled_from(list(Schedule)))
    split_fraction = draw(
        st.one_of(
            st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    bcast = draw(st.sampled_from(list(BcastVariant)))
    swap = draw(st.sampled_from(list(SwapVariant)))
    swap_threshold = draw(st.sampled_from([16, 64, 256]))
    fact_threads = draw(st.sampled_from([0, 1, 7]))
    return PerfConfig(
        n=n, nb=nb, p=p, q=q, pl=pl, ql=ql,
        schedule=schedule, split_fraction=split_fraction,
        bcast=bcast, swap=swap, swap_threshold=swap_threshold,
        fact_threads=fact_threads,
    )


class TestHypothesisEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(perf_configs())
    def test_fast_matches_full_everywhere(self, cfg):
        nodes = (cfg.p // cfg.pl) * (cfg.q // cfg.ql)
        assert_reports_equivalent(cfg, crusher_cluster(nodes))


# A deterministic matrix where we claim the *stronger* property: the
# vectorized engine follows the scalar one's IEEE operation order, so
# every reported float is bit-identical, not merely 1e-9-close.
EXACT_MATRIX = [
    PerfConfig(n=40960, nb=512, p=4, q=2, pl=4, ql=2),
    PerfConfig(n=40960, nb=512, p=4, q=2, pl=4, ql=2,
               schedule=Schedule.LOOKAHEAD),
    PerfConfig(n=40960, nb=512, p=4, q=2, pl=4, ql=2,
               schedule=Schedule.CLASSIC),
    PerfConfig(n=25000, nb=384, p=8, q=4, pl=4, ql=2,
               swap=SwapVariant.BINEXCH),
    PerfConfig(n=25000, nb=384, p=8, q=4, pl=2, ql=4,
               swap=SwapVariant.MIX, swap_threshold=128),
    PerfConfig(n=7777, nb=256, p=2, q=2, pl=2, ql=2,
               split_fraction=0.0),
    PerfConfig(n=7777, nb=256, p=2, q=2, pl=2, ql=2,
               split_fraction=1.0),
    PerfConfig(n=513, nb=512, p=1, q=1, pl=1, ql=1),
    PerfConfig(n=512, nb=512, p=1, q=1, pl=1, ql=1,
               schedule=Schedule.CLASSIC),
    PerfConfig(n=30000, nb=512, p=4, q=4, pl=2, ql=2,
               bcast=BcastVariant.BLONG, fact_threads=7),
]


class TestBitExactMatrix:
    @pytest.mark.parametrize(
        "cfg", EXACT_MATRIX,
        ids=lambda c: f"{c.schedule.value}-n{c.n}-nb{c.nb}-{c.p}x{c.q}",
    )
    def test_bit_identical_reports(self, cfg):
        nodes = (cfg.p // cfg.pl) * (cfg.q // cfg.ql)
        cluster = crusher_cluster(nodes)
        full = simulate_run(cfg, cluster, fidelity="full")
        fast = simulate_run(cfg, cluster, fidelity="fast")
        assert fast.makespan == full.makespan
        assert fast.score_tflops == full.score_tflops
        assert len(fast.iterations) == len(full.iterations)
        for fi, si in zip(fast.iterations, full.iterations):
            assert fi.k == si.k
            assert fi.time == si.time
            assert fi.gpu_active == si.gpu_active
            assert fi.fact == si.fact
            assert fi.mpi == si.mpi
            assert fi.transfer == si.transfer


class TestFastPathContracts:
    def test_cost_arrays_expand_to_run_costs(self):
        """CostArrays.to_iter_costs() round-trips to the scalar ledger."""
        from repro.perf.ledger import run_costs

        cfg = PerfConfig(n=13000, nb=512, p=4, q=2, pl=4, ql=2)
        cluster = crusher_cluster(1)
        scalar = [c for c in run_costs(cfg, cluster)]
        arrays = run_cost_arrays(cfg, cluster)
        expanded = arrays.to_iter_costs()
        assert len(expanded) == len(scalar)
        for a, b in zip(expanded, scalar):
            assert a == b

    def test_cost_arrays_are_memoized(self):
        cfg = PerfConfig(n=8192, nb=512, p=2, q=2, pl=2, ql=2)
        cluster = crusher_cluster(1)
        assert run_cost_arrays(cfg, cluster) is run_cost_arrays(cfg, cluster)

    def test_fidelity_knob_on_config(self):
        cfg = PerfConfig(n=4096, nb=512, p=2, q=2, pl=2, ql=2,
                         fidelity="full")
        cluster = crusher_cluster(1)
        via_cfg = simulate_run(cfg, cluster)  # honors cfg.fidelity="full"
        via_arg = simulate_run(cfg, cluster, fidelity="fast")
        assert via_cfg.makespan == via_arg.makespan

    def test_bad_fidelity_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            PerfConfig(n=4096, nb=512, p=2, q=2, pl=2, ql=2,
                       fidelity="approximate")
        cfg = PerfConfig(n=4096, nb=512, p=2, q=2, pl=2, ql=2)
        with pytest.raises(ConfigError):
            simulate_run(cfg, crusher_cluster(1), fidelity="turbo")
