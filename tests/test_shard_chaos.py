"""Cross-shard chaos: kill workers and the coordinator, prove recovery.

The sharded coordinator's crash-safety claims, exercised with real
processes and real SIGKILL (no cooperative shutdown):

* **SIGKILLed worker, 3 shards** -- a fleet member dies holding a
  lease; the job's shard requeues it exactly once (one
  ``lease_expired`` in the merged audit), a survivor completes it, and
  every event for the job lives in the event log of the one shard its
  key routes to: jobs never migrate between shards.
* **SIGKILLed coordinator mid-submit** -- the serve process dies
  partway through a 40-point submission batch; a new coordinator over
  the same shard workdirs accepts a full resubmission and content-key
  dedup guarantees no shard ends up holding two active jobs for one
  key, with every row on its routed shard.
* **Soak** -- two ``repro workers --url`` processes drain a 60-job
  sweep from a 3-shard coordinator: zero duplicate executions, zero
  lease expiries, both workers participate, all three shards carried
  load.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from repro.service import JobState, Service, Sweep, shard_index
from repro.service.cache import payload_key
from repro.service.http import ServiceClient

NSHARDS = 3


def _start_serve(workdir, shards: int = NSHARDS) -> tuple[subprocess.Popen,
                                                          str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir", str(workdir),
         "--shards", str(shards), "--port", "0", "--workers", "0",
         "--backoff", "0.01"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
    )
    line = proc.stdout.readline()
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return proc, url


def _start_worker(url: str, *, n: int = 2, ttl: float = 30.0,
                  name: str = "") -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro", "workers", "--url", url,
           "-n", str(n), "--ttl", str(ttl), "--backoff", "0.01"]
    if name:
        cmd += ["--name", name]
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
    )


def _stop(proc: subprocess.Popen | None) -> None:
    if proc is not None and proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


class TestSigkilledWorkerOnShards:
    def test_requeue_exactly_once_lands_on_the_same_shard(self, tmp_path):
        """Kill a fleet member mid-lease on a 3-shard coordinator: the
        shard holding the job requeues it exactly once, a survivor
        finishes it, and no other shard ever saw the job.
        """
        proc, url = _start_serve(tmp_path / "svc")
        victim = survivor = None
        try:
            client = ServiceClient(url)
            jid = client.submit(
                "probe", {"behavior": "hang_once", "seconds": 120.0}
            ).new[0]
            home = shard_index(client.job(jid).key, NSHARDS)

            victim = _start_worker(url, n=1, ttl=1.5, name="victim")
            deadline = time.monotonic() + 60.0
            while client.job(jid).state != "RUNNING":
                assert time.monotonic() < deadline, "job never claimed"
                time.sleep(0.05)
            victim.kill()
            victim.wait(timeout=30)

            survivor = _start_worker(url, n=1, ttl=5.0, name="survivor")
            view = client.wait([jid], timeout=120)[jid]
            assert view.state == "DONE"
            assert view.result["attempt"] == 2
            assert view.job.worker == "survivor"
            survivor.wait(timeout=60)
        finally:
            _stop(victim)
            _stop(survivor)
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)

        service = Service(tmp_path / "svc")
        assert service.nshards == NSHARDS
        # Merged audit: claimed twice (victim + survivor), requeued by
        # lease expiry exactly once, done exactly once.
        kinds = [e["event"] for e in service.store.events()
                 if e.get("job") == jid]
        assert kinds.count("claimed") == 2
        assert kinds.count("lease_expired") == 1
        assert kinds.count("done") == 1
        # Same-shard requeue: the job's whole history lives in its
        # routed shard's log; every other shard has zero trace of it.
        for i, shard in enumerate(service.store.shards):
            mine = [e for e in shard.events() if e.get("job") == jid]
            if i == home:
                assert len(mine) == len(kinds)
            else:
                assert mine == []
        assert service.store.shards[home].get(jid).state is JobState.DONE


class TestSigkilledCoordinator:
    def test_no_duplicate_active_jobs_after_kill_and_resubmit(
            self, tmp_path):
        """SIGKILL the coordinator while a 40-point batch is being
        submitted, restart it over the same shards, resubmit the full
        batch: per content key at most one active job exists anywhere,
        and every row sits on its routed shard.
        """
        payloads = [{"n": 1024 * (i + 1), "nb": 64, "p": 2, "q": 2}
                    for i in range(40)]
        proc, url = _start_serve(tmp_path / "svc")
        client = ServiceClient(url)
        # SIGKILL the coordinator partway through the batch, so the
        # rest of the submissions die against a vanished server.
        landed = 0
        try:
            for i, payload in enumerate(payloads):
                if i == 15:
                    proc.kill()
                    proc.wait(timeout=30)
                client.submit("sim", payload)
                landed += 1
        except Exception:
            pass  # the coordinator went away mid-batch, as intended
        assert landed < len(payloads), "kill landed after the whole batch"

        # A fresh coordinator over the same workdirs: resubmit all 40.
        proc2, url2 = _start_serve(tmp_path / "svc")
        try:
            client2 = ServiceClient(url2)
            receipt_new = receipt_deduped = 0
            for payload in payloads:
                r = client2.submit("sim", payload)
                receipt_new += len(r.new)
                receipt_deduped += len(r.deduped)
            # Everything that survived the crash deduplicates; the rest
            # queue fresh.  Either way the full grid is active exactly
            # once.
            assert receipt_new + receipt_deduped == len(payloads)
            assert receipt_deduped >= landed
        finally:
            proc2.send_signal(signal.SIGINT)
            proc2.communicate(timeout=30)

        service = Service(tmp_path / "svc")
        assert service.nshards == NSHARDS
        active_by_key: dict[str, list[str]] = {}
        for i, shard in enumerate(service.store.shards):
            for job in shard.list():
                # Routing invariant: a row only ever lives on its shard.
                assert shard_index(job.key, NSHARDS) == i, job.id
                if job.state in (JobState.PENDING, JobState.RUNNING):
                    active_by_key.setdefault(job.key, []).append(job.id)
        expected_keys = {payload_key("sim", p) for p in payloads}
        assert set(active_by_key) == expected_keys
        # THE crash-safety claim: no shard holds a duplicate active job.
        dupes = {k: v for k, v in active_by_key.items() if len(v) > 1}
        assert dupes == {}


class TestShardedFleetSoak:
    def test_two_workers_drain_60_jobs_with_zero_duplicates(self, tmp_path):
        """The acceptance soak: a 3-shard coordinator feeds a 60-job
        sweep to two remote worker processes; the merged audit logs
        prove every job was claimed and executed exactly once, no lease
        expired, both workers took part, and all three shards held work.
        """
        proc, url = _start_serve(tmp_path / "svc")
        workers = []
        try:
            client = ServiceClient(url)
            receipt = client.submit_sweep(
                Sweep(kind="probe", axes={"tag": list(range(60))},
                      base={"behavior": "sleep", "seconds": 0.2}),
                timeout=60.0,
            )
            ids = receipt.new
            assert len(ids) == 60
            workers = [_start_worker(url, n=2, ttl=10.0, name=f"host{i}")
                       for i in range(2)]
            views = client.wait(ids, timeout=240)
            assert all(v.state == "DONE" for v in views.values())
            for w in workers:
                out, _ = w.communicate(timeout=120)
                assert w.returncode == 0, out
                assert "finished" in out
        finally:
            for w in workers:
                _stop(w)
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)

        service = Service(tmp_path / "svc")
        events = service.store.events()
        for jid in ids:
            mine = [e["event"] for e in events if e.get("job") == jid]
            assert mine.count("claimed") == 1, (jid, mine)
            assert mine.count("done") == 1, (jid, mine)
            assert mine.count("lease_expired") == 0, (jid, mine)
        # Both fleet members actually drained a share of the queue.
        claimers = {e["worker"] for e in events if e["event"] == "claimed"}
        assert len(claimers) == 2
        # All three shards carried load (60 hashed keys leave a shard
        # empty with probability ~(2/3)^60 ~ 3e-11: deterministic here).
        per_shard = [shard.counts()["DONE"]
                     for shard in service.store.shards]
        assert all(n > 0 for n in per_shard)
        assert sum(per_shard) == 60
