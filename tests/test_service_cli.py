"""The service CLI: submit --sweep / workers / status / results / cancel."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SWEEP_ARGS = [
    "--sweep", "--kind", "sim",
    "-N", "512,1024", "-NB", "64,128", "-P", "2", "-Q", "2",
    "--frac", "0.3,0.5",
]


@pytest.fixture
def workdir(tmp_path):
    return str(tmp_path / "svc")


def _submit(workdir, capsys) -> str:
    rc = main(["submit", "--workdir", workdir, *SWEEP_ARGS])
    out = capsys.readouterr().out
    assert rc == 0
    return out


class TestEndToEnd:
    def test_sweep_submit_workers_results(self, workdir, capsys):
        """Acceptance: an 8-point sweep completes end-to-end."""
        out = _submit(workdir, capsys)
        assert "submitted 8 new job(s)" in out

        rc = main(["workers", "--workdir", workdir, "-n", "2",
                   "--max-seconds", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 completed, 0 failed" in out
        assert "8 done" in out

        rc = main(["status", "--workdir", workdir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 pending" in out and "8 done" in out
        assert out.count("DONE") == 8

        rc = main(["results", "--workdir", workdir, "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        results = json.loads(out)
        assert len(results) == 8
        assert all(r["score_tflops"] > 0 for r in results.values())

    def test_resubmitted_sweep_is_all_cache_hits(self, workdir, capsys):
        _submit(workdir, capsys)
        main(["workers", "--workdir", workdir, "-n", "2",
              "--max-seconds", "120"])
        capsys.readouterr()

        out = _submit(workdir, capsys)
        assert "submitted 0 new job(s), 8 served from cache" in out

    def test_cancel_pending_jobs(self, workdir, capsys):
        _submit(workdir, capsys)
        rc = main(["cancel", "--workdir", workdir, "--all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cancelled 8 of 8" in out

        main(["status", "--workdir", workdir])
        assert "8 cancelled" in capsys.readouterr().out


class TestUnknownJobIds:
    """Unknown ids are bad input: one-line error, exit 2, no traceback."""

    def test_status_on_unknown_id_exits_2(self, workdir, capsys):
        _submit(workdir, capsys)
        rc = main(["status", "--workdir", workdir, "nosuchjob"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err == "error: no such job: nosuchjob\n"
        assert "Traceback" not in captured.err

    def test_results_on_unknown_id_exits_2(self, workdir, capsys):
        _submit(workdir, capsys)
        rc = main(["results", "--workdir", workdir, "nosuchjob"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err == "error: no such job: nosuchjob\n"
        assert "Traceback" not in captured.err

    def test_status_with_known_ids_prints_their_rows(self, workdir, capsys):
        _submit(workdir, capsys)
        main(["status", "--workdir", workdir])
        some_id = capsys.readouterr().out.splitlines()[2].split()[0]
        rc = main(["status", "--workdir", workdir, some_id])
        out = capsys.readouterr().out
        assert rc == 0
        assert some_id in out and "PENDING" in out


class TestSubmitValidation:
    def test_multi_value_axis_without_sweep_flag_is_rejected(
            self, workdir, capsys):
        rc = main(["submit", "--workdir", workdir, "--kind", "sim",
                   "-N", "512,1024"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--sweep" in err

    def test_bad_run_config_fails_at_submit_not_in_workers(
            self, workdir, capsys):
        """A bad grid corner exits 2 with one clean line, pre-queue."""
        rc = main(["submit", "--workdir", workdir, "--kind", "run",
                   "-N", "0"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "n must be positive" in captured.err
        assert "Traceback" not in captured.err
        # nothing was queued
        main(["status", "--workdir", workdir])
        assert "0 pending" in capsys.readouterr().out

    def test_unparseable_value_list_is_a_config_error(self, workdir, capsys):
        rc = main(["submit", "--workdir", workdir, "-N", "12,potato"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
