"""Communicator split/dup semantics and traffic statistics."""

from __future__ import annotations

import numpy as np

from repro.simmpi import Fabric, run_spmd

from .conftest import spmd


class TestSplit:
    def test_split_into_rows(self):
        def main(comm):
            row = comm.rank // 3
            sub = comm.split(color=row, key=comm.rank % 3)
            return (sub.rank, sub.size, sub.allreduce(comm.rank, op="sum"))

        out = spmd(6, main)
        # ranks 0,1,2 -> row 0; ranks 3,4,5 -> row 1
        assert [o[:2] for o in out] == [(0, 3), (1, 3), (2, 3)] * 2
        assert [o[2] for o in out] == [3, 3, 3, 12, 12, 12]

    def test_split_key_reorders_ranks(self):
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            return sub.rank

        assert spmd(4, main) == [3, 2, 1, 0]

    def test_split_none_color_returns_none(self):
        def main(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if comm.rank == 0:
                return sub is None
            return sub.size

        out = spmd(3, main)
        assert out[0] is True and out[1:] == [2, 2]

    def test_subcomm_isolated_from_parent(self):
        """Messages in a sub-communicator never match parent receives."""

        def main(comm):
            sub = comm.split(color=0, key=comm.rank)
            if comm.rank == 0:
                sub.send("sub", 1, tag=7)
                comm.send("parent", 1, tag=7)
            else:
                from_parent = comm.recv(0, tag=7)
                from_sub = sub.recv(0, tag=7)
                return (from_parent, from_sub)

        assert spmd(2, main)[1] == ("parent", "sub")

    def test_nested_splits(self):
        def main(comm):
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            pair = half.split(color=0, key=half.rank)
            return pair.allreduce(1, op="sum")

        assert spmd(4, main) == [2, 2, 2, 2]

    def test_dup_gives_fresh_context(self):
        def main(comm):
            dup = comm.dup()
            assert dup.size == comm.size and dup.rank == comm.rank
            if comm.rank == 0:
                dup.send(1, 1, tag=2)
            elif comm.rank == 1:
                return dup.recv(0, tag=2)

        assert spmd(2, main)[1] == 1

    def test_world_rank_preserved_through_split(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.world_rank

        assert spmd(4, main) == [0, 1, 2, 3]


class TestStats:
    def test_send_bytes_counted_by_phase(self):
        fabric = Fabric(2, watchdog=30.0)

        def main(comm):
            if comm.rank == 0:
                with comm.phase("RS"):
                    comm.send(np.zeros(100), 1)  # 800 bytes
                comm.send(np.zeros(10), 1)  # 80 bytes, phase "other"
            else:
                comm.recv(0)
                comm.recv(0)

        run_spmd(2, main, fabric=fabric)
        stats = fabric.stats[0]
        assert stats.phases["RS"].bytes_sent == 800
        assert stats.phases["RS"].msgs_sent == 1
        assert stats.phases["other"].bytes_sent == 80
        assert stats.total.bytes_sent == 880

    def test_recv_counted(self):
        fabric = Fabric(2, watchdog=30.0)

        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), 1)
            else:
                with comm.phase("LBCAST"):
                    comm.recv(0)

        run_spmd(2, main, fabric=fabric)
        assert fabric.stats[1].phases["LBCAST"].bytes_recv == 32

    def test_phase_nesting_restores_label(self):
        fabric = Fabric(1, watchdog=30.0)

        def main(comm):
            with comm.phase("A"):
                with comm.phase("B"):
                    pass
                assert comm.stats.current_phase == "A"
            assert comm.stats.current_phase == "other"

        run_spmd(1, main, fabric=fabric)

    def test_reset(self):
        fabric = Fabric(2, watchdog=30.0)

        def main(comm):
            if comm.rank == 0:
                comm.send(1, 1)
            else:
                comm.recv(0)

        run_spmd(2, main, fabric=fabric)
        fabric.stats[0].reset()
        assert fabric.stats[0].total.msgs_sent == 0
