"""Kernel correctness and flop accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.blas.kernels import (
    FLOPS,
    dgemm_update,
    dger_update,
    dscal_inplace,
    flops_dgemm,
    flops_getrf,
    flops_trsm,
    idamax,
    unit_lower_solve_inplace,
    upper_solve,
)


@pytest.fixture(autouse=True)
def reset_flops():
    FLOPS.take()
    yield
    FLOPS.take()


class TestDgemm:
    def test_default_subtract(self, rng):
        a = rng.standard_normal((5, 3))
        b = rng.standard_normal((3, 4))
        c = rng.standard_normal((5, 4))
        expected = c - a @ b
        dgemm_update(c, a, b)
        assert np.allclose(c, expected)

    def test_add_mode(self, rng):
        a = rng.standard_normal((4, 2))
        b = rng.standard_normal((2, 4))
        c = np.zeros((4, 4))
        dgemm_update(c, a, b, alpha=1.0, beta=1.0)
        assert np.allclose(c, a @ b)

    def test_general_alpha_beta(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        c = rng.standard_normal((3, 3))
        expected = 0.5 * c + 2.0 * (a @ b)
        dgemm_update(c, a, b, alpha=2.0, beta=0.5)
        assert np.allclose(c, expected)

    def test_inplace_on_view(self, rng):
        """The update must mutate a column slice of a larger matrix."""
        full = np.asfortranarray(rng.standard_normal((6, 8)))
        ref = full.copy()
        a = rng.standard_normal((6, 2))
        b = rng.standard_normal((2, 3))
        dgemm_update(full[:, 3:6], a, b)
        assert np.allclose(full[:, 3:6], ref[:, 3:6] - a @ b)
        assert np.array_equal(full[:, :3], ref[:, :3])

    def test_zero_extent_noop(self):
        c = np.ones((0, 4))
        dgemm_update(c, np.ones((0, 2)), np.ones((2, 4)))
        assert FLOPS.count == 0

    def test_k_zero_scales_only(self):
        c = np.ones((2, 2))
        dgemm_update(c, np.ones((2, 0)), np.ones((0, 2)), beta=0.5)
        assert np.allclose(c, 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dgemm_update(np.ones((2, 2)), np.ones((2, 3)), np.ones((2, 2)))

    def test_flop_count(self, rng):
        dgemm_update(
            np.zeros((5, 7)), rng.standard_normal((5, 3)), rng.standard_normal((3, 7))
        )
        assert FLOPS.count == 2 * 5 * 7 * 3


class TestOtherKernels:
    def test_dger(self, rng):
        a = rng.standard_normal((4, 3))
        x, y = rng.standard_normal(4), rng.standard_normal(3)
        expected = a - np.outer(x, y)
        dger_update(a, x, y)
        assert np.allclose(a, expected)

    def test_dscal(self):
        x = np.arange(4.0)
        dscal_inplace(x, 2.0)
        assert np.array_equal(x, np.arange(4.0) * 2)

    def test_idamax_magnitude_first_tie(self):
        assert idamax(np.array([1.0, -5.0, 5.0, 2.0])) == 1
        assert idamax(np.array([0.0])) == 0

    def test_idamax_empty(self):
        with pytest.raises(ValueError):
            idamax(np.empty(0))

    def test_unit_lower_solve(self, rng):
        l = np.tril(rng.standard_normal((5, 5)), -1) + np.eye(5)
        b = rng.standard_normal((5, 3))
        expected = np.linalg.solve(l, b)
        work = b.copy()
        unit_lower_solve_inplace(l, work)
        assert np.allclose(work, expected)

    def test_unit_lower_solve_ignores_upper_junk(self, rng):
        """Only the strictly-lower part may be referenced (packed storage)."""
        l = np.tril(rng.standard_normal((4, 4)), -1) + np.eye(4)
        packed = l + np.triu(np.full((4, 4), 99.0), 1)
        b = rng.standard_normal((4, 2))
        expected = np.linalg.solve(l, b)
        work = b.copy()
        unit_lower_solve_inplace(packed, work)
        assert np.allclose(work, expected)

    def test_unit_lower_solve_1d(self, rng):
        l = np.tril(rng.standard_normal((4, 4)), -1) + np.eye(4)
        b = rng.standard_normal(4)
        work = b.copy()
        unit_lower_solve_inplace(l, work)
        assert np.allclose(work, np.linalg.solve(l, b))

    def test_upper_solve(self, rng):
        u = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal(5)
        assert np.allclose(upper_solve(u, b), np.linalg.solve(u, b))


class TestFlopFormulas:
    @given(st.integers(1, 100), st.integers(1, 100), st.integers(1, 100))
    def test_dgemm_formula(self, m, n, k):
        assert flops_dgemm(m, n, k) == 2.0 * m * n * k

    def test_getrf_square_is_two_thirds_cubed(self):
        assert flops_getrf(30, 30) == pytest.approx(30**3 * 2 / 3)

    @given(st.integers(1, 50), st.integers(1, 50))
    def test_getrf_monotone_in_m(self, n, extra):
        m = n + extra
        assert flops_getrf(m, n) > flops_getrf(m - 1, n)

    def test_trsm_formula(self):
        assert flops_trsm(10, 4) == 400.0


class TestFlopCounterThreading:
    def test_per_thread_isolation(self):
        import threading

        FLOPS.take()
        dscal_inplace(np.ones(10), 2.0)  # 10 flops on main

        seen = {}

        def worker():
            seen["initial"] = FLOPS.count
            dscal_inplace(np.ones(5), 2.0)
            seen["after"] = FLOPS.count

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen == {"initial": 0, "after": 5}
        assert FLOPS.take() == 10
