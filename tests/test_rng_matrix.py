"""The jump-ahead LCG and the distributed matrix generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid import ProcessGrid
from repro.hpl import rng
from repro.hpl.matrix import DistMatrix, generate_global

from .conftest import spmd


def _sequential_states(seed: int, count: int) -> list[int]:
    x = rng._initial_state(seed)
    out = []
    for _ in range(count):
        out.append(x)
        x = (rng.MULT * x + rng.INCR) & ((1 << 64) - 1)
    return out


class TestLCG:
    @given(st.integers(0, 2**32), st.integers(0, 200))
    def test_jump_matches_sequential(self, seed, k):
        seq = _sequential_states(seed, k + 1)
        assert rng.state_at(seed, k) == seq[k]

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_jump_composes(self, a, b):
        aa, ca = rng.lcg_jump(a)
        ab, cb = rng.lcg_jump(b)
        aab, cab = rng.lcg_jump(a + b)
        mask = (1 << 64) - 1
        assert (ab * aa) & mask == aab
        assert (ab * ca + cb) & mask == cab

    def test_jump_zero_is_identity(self):
        assert rng.lcg_jump(0) == (1, 0)

    def test_negative_jump_rejected(self):
        with pytest.raises(ValueError):
            rng.lcg_jump(-1)

    @given(st.integers(0, 2**20), st.integers(0, 500), st.integers(0, 64))
    def test_random_values_windows_agree(self, seed, start, count):
        full = rng.random_values(seed, 0, start + count)
        window = rng.random_values(seed, start, count)
        assert np.array_equal(window, full[start:])

    def test_range_and_distribution(self):
        v = rng.random_values(7, 0, 50_000)
        assert v.min() >= -0.5 and v.max() < 0.5
        assert abs(v.mean()) < 0.01
        assert abs(v.std() - np.sqrt(1 / 12)) < 0.01  # uniform on unit width

    def test_different_seeds_decorrelate(self):
        a = rng.random_values(1, 0, 1000)
        b = rng.random_values(2, 0, 1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_empty_count(self):
        assert rng.random_values(1, 10, 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            rng.random_values(1, 0, -1)


class TestDistMatrix:
    @pytest.mark.parametrize("p,q", [(1, 1), (2, 2), (3, 2), (2, 3), (1, 4), (4, 1)])
    @pytest.mark.parametrize("n,nb", [(20, 4), (17, 5), (8, 16)])
    def test_distribution_independent_of_grid(self, p, q, n, nb):
        """Every grid assembles the same global augmented matrix."""
        a_ref, b_ref = generate_global(n, seed=3)

        def main(comm):
            grid = ProcessGrid(comm, p, q)
            mat = DistMatrix(grid, n, nb, seed=3)
            return mat.gather_global()

        full = spmd(p * q, main)[0]
        assert np.allclose(full[:, :n], a_ref)
        assert np.allclose(full[:, n], b_ref)

    def test_local_shapes(self):
        def main(comm):
            grid = ProcessGrid(comm, 2, 3)
            mat = DistMatrix(grid, 20, 4, seed=1)
            return (mat.a.shape, len(mat.row_pos), len(mat.col_pos))

        out = spmd(6, main)
        total_cells = sum(s[0] * s[1] for s, _, _ in out)
        assert total_cells == 20 * 21
        for shape, nrows, ncols in out:
            assert shape == (nrows, ncols)

    def test_fortran_order(self):
        def main(comm):
            grid = ProcessGrid(comm, 1, 1)
            mat = DistMatrix(grid, 8, 4)
            return mat.a.flags["F_CONTIGUOUS"]

        assert spmd(1, main)[0]

    def test_index_helpers(self):
        def main(comm):
            grid = ProcessGrid(comm, 2, 1)
            mat = DistMatrix(grid, 16, 4)
            # rank 0 owns rows 0-3 and 8-11; rank 1 owns 4-7 and 12-15
            if grid.myrow == 0:
                return (mat.local_row_of(8), mat.local_rows_from(5), mat.mloc)
            return (mat.local_row_of(12), mat.local_rows_from(5), mat.mloc)

        out = spmd(2, main)
        assert out[0] == (4, 4, 8)
        assert out[1] == (4, 1, 8)

    def test_seed_changes_matrix(self):
        a1, _ = generate_global(12, 1)
        a2, _ = generate_global(12, 2)
        assert not np.allclose(a1, a2)

    def test_validation(self):
        def main(comm):
            grid = ProcessGrid(comm, 1, 1)
            with pytest.raises(ValueError):
                DistMatrix(grid, 0, 4)
            with pytest.raises(ValueError):
                DistMatrix(grid, 4, 0)

        spmd(1, main)

    def test_matrix_well_conditioned_enough(self):
        """HPL random matrices must be solvable; sanity-check conditioning."""
        a, _ = generate_global(64, 42)
        assert np.linalg.cond(a) < 1e6
