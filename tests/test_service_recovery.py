"""Crash recovery: a supervisor killed mid-job must not lose the job.

A real worker-pool process (subprocess, SIGKILL -- no chance to clean
up) is murdered while its child is mid-probe.  The next pool to open
the workdir must recover the orphaned RUNNING row, retry it exactly
once, and leave the whole story readable in the JSONL event log.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import JobState, Service

_POOL_SCRIPT = """
import sys
from repro.service import WorkerPool
WorkerPool(sys.argv[1], nworkers=1, backoff_base=0.01).run(
    drain=False, max_seconds=120)
"""


def _wait_for_event(service: Service, name: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(e["event"] == name for e in service.store.events()):
            return
        time.sleep(0.05)
    raise AssertionError(f"no {name!r} event within {timeout}s")


@pytest.fixture
def service(tmp_path):
    return Service(tmp_path / "svc", backoff_base=0.01)


def test_killed_supervisor_orphan_is_recovered_and_retried_once(service):
    # hang_once: sleeps through attempt 1 (the one we kill), returns ok
    # on attempt 2 -- so recovery is observable and fast.
    receipt = service.submit(
        "probe", {"behavior": "hang_once", "seconds": 45.0}, max_retries=2
    )
    jid = receipt.new[0]

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _POOL_SCRIPT, service.workdir], env=env
    )
    try:
        # The pool claims the job and launches the hanging child ...
        _wait_for_event(service, "launched")
        assert service.job(jid).state is JobState.RUNNING
    finally:
        # ... and dies without any chance to mark or requeue it.
        proc.kill()
        proc.wait(timeout=30)

    orphan = service.job(jid)
    assert orphan.state is JobState.RUNNING  # nobody cleaned up
    assert orphan.attempts == 1

    # The next pool recovers the orphan and the retry completes.
    summary = service.run_workers(n=1, max_seconds=60)
    assert summary.completed == 1
    job = service.job(jid)
    assert job.state is JobState.DONE
    assert job.attempts == 2  # the killed attempt + exactly one retry
    assert service.result(jid)["attempt"] == 2

    # The whole story is in the event log: exactly one orphan requeue,
    # exactly two claims (the killed attempt and the retry).
    events = [e for e in service.store.events() if e["job"] == jid]
    requeues = [e for e in events if e["event"] == "requeued"]
    assert len(requeues) == 1
    assert "orphaned by a dead worker pool" in requeues[0]["error"]
    assert sum(1 for e in events if e["event"] == "claimed") == 2
    assert sum(1 for e in events if e["event"] == "done") == 1


def test_recovery_does_not_touch_terminal_jobs(service):
    """Only RUNNING rows are requeued at pool startup."""
    done = service.submit("probe", {"behavior": "ok"})
    service.run_workers(n=1, max_seconds=60)
    cancelled = service.submit("probe", {"behavior": "sleep",
                                         "seconds": 30.0})
    service.cancel(cancelled.new)

    before = {jid: service.job(jid).attempts
              for jid in (done.new[0], cancelled.new[0])}
    service.run_workers(n=1, max_seconds=60)  # recover=True by default
    assert service.job(done.new[0]).state is JobState.DONE
    assert service.job(cancelled.new[0]).state is JobState.CANCELLED
    for jid, attempts in before.items():
        assert service.job(jid).attempts == attempts
