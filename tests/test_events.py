"""The event-feed primitives: cursors, log tailing, merge, broker.

The feed's contract is *exactly-once resumability over plain JSONL
audit logs*: every event carries a cursor that resumes just past it,
offsets survive restarts and compactions (``events.base`` folds
discarded bytes in), torn tails from a SIGKILLed writer are sealed and
skipped without desynchronizing offsets, and the shard merge never
reorders one shard's file order.  The Hypothesis property at the bottom
pins the core invariant under a live writer: a reader tailing the log
concurrently with appends sees every record exactly once, whole, in
write order.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BadCursorError, EventsTruncatedError
from repro.service import JobStore
from repro.service.events import (
    BEGIN,
    NOW,
    EventBroker,
    EventFilter,
    decode_cursor,
    decode_queue_cursor,
    encode_cursor,
    encode_queue_cursor,
)
from repro.service.views import EventView


class TestCursorTokens:
    def test_roundtrip(self):
        for offsets in ([0], [0, 0, 0], [17, 0, 123456789]):
            token = encode_cursor(offsets)
            assert decode_cursor(token, len(offsets)) == offsets
            assert "=" not in token  # unpadded: URL- and header-safe

    @pytest.mark.parametrize("token", [
        "not-base64!!", "", "AAAA", encode_queue_cursor(5),
    ])
    def test_junk_is_bad_cursor(self, token):
        with pytest.raises(BadCursorError):
            decode_cursor(token, 1)

    def test_wrong_shard_count_is_bad_cursor(self):
        token = encode_cursor([0, 0])
        with pytest.raises(BadCursorError, match="2 shard"):
            decode_cursor(token, 3)

    def test_negative_offsets_rejected(self):
        import base64
        raw = json.dumps({"v": 1, "o": [-1]}).encode()
        token = base64.urlsafe_b64encode(raw).decode().rstrip("=")
        with pytest.raises(BadCursorError):
            decode_cursor(token, 1)

    def test_queue_cursor_roundtrip_and_cross_rejection(self):
        token = encode_queue_cursor(40)
        assert decode_queue_cursor(token) == 40
        with pytest.raises(BadCursorError):
            decode_queue_cursor(encode_cursor([0]))  # event token on queue
        with pytest.raises(BadCursorError):
            decode_queue_cursor("garbage")


class TestStoreLog:
    def test_offsets_advance_and_resume(self, tmp_path):
        store = JobStore(tmp_path)
        store._event("j1", "submitted")
        store._event("j2", "submitted")
        batch, end = store.read_events(0)
        assert [r["job"] for r, _ in batch] == ["j1", "j2"]
        assert end == store.events_end()
        # Resuming from each record's offset yields exactly the suffix.
        mid = batch[0][1]
        tail, _ = store.read_events(mid)
        assert [r["job"] for r, _ in tail] == ["j2"]
        assert store.read_events(end)[0] == []

    def test_offset_past_end_is_bad_cursor(self, tmp_path):
        store = JobStore(tmp_path)
        store._event("j1", "submitted")
        with pytest.raises(BadCursorError):
            store.read_events(store.events_end() + 1)

    def test_truncation_folds_into_base(self, tmp_path):
        store = JobStore(tmp_path)
        store._event("j1", "submitted")
        store._event("j1", "done")
        end = store.events_end()
        base = store.truncate_events()
        assert base == end == store.events_base() == store.events_end()
        # Offsets from before the compaction are truncated, not bad.
        with pytest.raises(EventsTruncatedError):
            store.read_events(0)
        # The log keeps working and offsets stay monotonic.
        store._event("j2", "submitted")
        batch, new_end = store.read_events(base)
        assert [r["job"] for r, _ in batch] == ["j2"]
        assert new_end > base

    def test_torn_tail_is_left_then_sealed(self, tmp_path):
        store = JobStore(tmp_path)
        store._event("j1", "submitted")
        end = store.events_end()
        with open(store.events_path, "ab") as fh:
            fh.write(b'{"job": "torn", "event": "half')  # no newline
        # A live reader never consumes the torn tail.
        batch, pos = store.read_events(0)
        assert [r["job"] for r, _ in batch] == ["j1"] and pos == end
        # Reopening the workdir (the restart path) seals the tail; the
        # sealed junk line is skipped but still advances the offset.
        reopened = JobStore(tmp_path)
        reopened._event("j2", "submitted")
        batch, pos = reopened.read_events(0)
        assert [r["job"] for r, _ in batch] == ["j1", "j2"]
        assert pos == reopened.events_end()


def _broker(tmp_path, nshards=1):
    from repro.service.shard import ShardedStore, shard_workdirs
    if nshards == 1:
        store = JobStore(tmp_path)
    else:
        store = ShardedStore(shard_workdirs(tmp_path, nshards))
    return store, EventBroker(store)


class TestBroker:
    def test_merge_preserves_per_shard_order(self, tmp_path):
        store, broker = _broker(tmp_path, nshards=3)
        shards = store.event_stores()
        # Interleave appends across shards; timestamps may collide.
        for i in range(12):
            shards[i % 3]._event(f"j{i}", "submitted", seq=i)
        views, offsets = broker.read(broker.begin_offsets())
        assert len(views) == 12
        for shard in range(3):
            seqs = [v.data["seq"] for v in views if v.shard == shard]
            assert seqs == sorted(seqs), "shard file order violated"
        assert offsets == broker.end_offsets()

    def test_every_cursor_is_an_exact_resume_point(self, tmp_path):
        store, broker = _broker(tmp_path, nshards=3)
        shards = store.event_stores()
        for i in range(10):
            shards[i % 3]._event(f"j{i}", "submitted", seq=i)
        views, _ = broker.read(broker.begin_offsets())
        for i, view in enumerate(views):
            offsets = decode_cursor(view.cursor, broker.nshards)
            rest, _ = broker.read(offsets)
            assert [v.data["seq"] for v in rest] == \
                [v.data["seq"] for v in views[i + 1:]]

    def test_limit_cuts_cleanly(self, tmp_path):
        store, broker = _broker(tmp_path, nshards=3)
        shards = store.event_stores()
        for i in range(9):
            shards[i % 3]._event(f"j{i}", "submitted", seq=i)
        collected, offsets = [], broker.begin_offsets()
        while True:
            views, offsets = broker.read(offsets, limit=2)
            if not views:
                break
            collected.extend(views)
        assert sorted(v.data["seq"] for v in collected) == list(range(9))

    def test_filters_match_and_still_advance(self, tmp_path):
        store, broker = _broker(tmp_path)
        store._event("a", "submitted", state="PENDING")
        store._event("b", "submitted", state="PENDING")
        store._event("a", "done", state="DONE")
        f = EventFilter.build(job_ids={"a"})
        views, offsets = broker.read(broker.begin_offsets(), filter=f)
        assert [v.kind for v in views] == ["submitted", "done"]
        assert offsets == broker.end_offsets()  # b's event consumed too
        # States fold case; kinds are exact.
        f = EventFilter.build(states={"done"})
        views, _ = broker.read(broker.begin_offsets(), filter=f)
        assert [v.job_id for v in views] == ["a"]
        f = EventFilter.build(kinds={"submitted"})
        views, _ = broker.read(broker.begin_offsets(), filter=f)
        assert [v.job_id for v in views] == ["a", "b"]

    def test_poll_times_out_then_wakes_on_append(self, tmp_path):
        store, broker = _broker(tmp_path)
        views, token, timed_out = broker.poll(NOW, timeout=0.05)
        assert views == [] and timed_out
        # An append from another thread wakes a blocked poll promptly.
        def append():
            store._event("late", "submitted")
        timer = threading.Timer(0.1, append)
        timer.start()
        try:
            views, token, timed_out = broker.poll(token, timeout=10.0)
        finally:
            timer.cancel()
        assert not timed_out and [v.job_id for v in views] == ["late"]

    def test_sentinels_and_bad_tokens(self, tmp_path):
        store, broker = _broker(tmp_path)
        store._event("j", "submitted")
        assert broker.resolve(BEGIN) == broker.begin_offsets()
        assert broker.resolve(None) == broker.begin_offsets()
        assert broker.resolve(NOW) == broker.end_offsets()
        with pytest.raises(BadCursorError):
            broker.resolve("junk-token")


class TestEventView:
    def test_roundtrip_and_terminal(self):
        view = EventView(cursor="c", t=1.0, job_id="j", kind="done",
                        state="DONE", shard=0, data={"worker": "w"})
        again = EventView.from_dict(view.to_dict())
        assert again == view and again.terminal
        assert not EventView.from_dict(
            {"cursor": "c", "t": 1.0, "job": "j", "event": "claimed",
             "state": "RUNNING"}).terminal


# -- the live-writer property -----------------------------------------

_events = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.sampled_from(["submitted", "claimed", "done"])),
    min_size=1, max_size=40,
)


@settings(max_examples=20, deadline=None)
@given(events=_events)
def test_concurrent_tail_sees_every_line_whole_and_once(tmp_path_factory,
                                                        events):
    """Tailing under a live writer: no torn, lost, or duplicated lines.

    A writer thread appends the drawn events while the reader tails the
    log with cursor reads in a loop.  The concatenated batches must be
    exactly the written sequence -- whole records, write order, no
    duplicates -- regardless of how the reads interleave with appends.
    """
    tmp_path = tmp_path_factory.mktemp("tail")
    store = JobStore(tmp_path)

    def write():
        for i, (job, kind) in enumerate(events):
            store._event(job, kind, seq=i)

    writer = threading.Thread(target=write)
    collected: list[tuple[dict, int]] = []
    offset = store.events_base()
    writer.start()
    try:
        while True:
            batch, offset = store.read_events(offset, limit=7)
            collected.extend(batch)
            if not writer.is_alive() and len(collected) >= len(events):
                break
    finally:
        writer.join()
    # One final read: nothing further may appear after writer exit.
    batch, offset = store.read_events(offset)
    collected.extend(batch)
    assert [(r["job"], r["event"], r["seq"]) for r, _ in collected] == \
        [(job, kind, i) for i, (job, kind) in enumerate(events)]
    assert offset == store.events_end()
