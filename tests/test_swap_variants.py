"""HPL's SWAP algorithm family: binary exchange vs spread-roll vs mix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HPLConfig, SwapVariant
from repro.errors import ConfigError
from repro.grid import ProcessGrid
from repro.hpl.driver import swap_algo
from repro.hpl.matrix import DistMatrix
from repro.hpl.rowswap import RowSwapper, compute_swap_plan

from .conftest import reference_solution, spmd


class TestBinexchAllgather:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8])
    def test_binexch_equals_long(self, p):
        """Both algorithms assemble identical U and write identical rows."""
        n, nb = 40, 4
        j0, jb = 4, 4
        ipiv = np.array([9, 17, 6, 33], dtype=np.int64)
        plan = compute_swap_plan(ipiv, j0, jb)

        def main(comm, algo):
            grid = ProcessGrid(comm, p, 1)
            mat = DistMatrix(grid, n, nb, seed=5)
            lo = mat.local_cols_from(j0 + jb)
            sw = RowSwapper(mat, plan, lo, mat.nloc_aug, algo=algo)
            sw.gather()
            sw.communicate()
            sw.scatter_back()
            sw.store_u(sw.u)
            return mat.gather_global(), sw.u

        full_long, u_long = spmd(p, main, "long")[0]
        full_bin, u_bin = spmd(p, main, "binexch")[0]
        assert np.array_equal(full_long, full_bin)
        assert np.array_equal(u_long, u_bin)

    def test_unknown_algo_rejected(self):
        def main(comm):
            grid = ProcessGrid(comm, 1, 1)
            mat = DistMatrix(grid, 8, 2, seed=1)
            plan = compute_swap_plan(np.array([1, 3], dtype=np.int64), 0, 2)
            with pytest.raises(ValueError):
                RowSwapper(mat, plan, 2, 4, algo="quantum")

        spmd(1, main)


class TestSwapSelection:
    def test_swap_algo_policy(self):
        cfg_long = HPLConfig(n=64, nb=8, p=2, q=2, swap=SwapVariant.LONG)
        cfg_bin = HPLConfig(n=64, nb=8, p=2, q=2, swap=SwapVariant.BINEXCH)
        cfg_mix = HPLConfig(
            n=64, nb=8, p=2, q=2, swap=SwapVariant.MIX, swap_threshold=16
        )
        assert swap_algo(cfg_long, 4) == "long"
        assert swap_algo(cfg_bin, 4000) == "binexch"
        assert swap_algo(cfg_mix, 16) == "binexch"
        assert swap_algo(cfg_mix, 17) == "long"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            HPLConfig(n=64, nb=8, p=2, q=2, swap_threshold=-1)


class TestEndToEnd:
    @pytest.mark.parametrize("variant", list(SwapVariant))
    @pytest.mark.parametrize("p,q", [(2, 2), (3, 2)])
    def test_solver_correct_under_every_swap(self, variant, p, q):
        from repro.hpl.api import run_hpl

        cfg = HPLConfig(
            n=40, nb=8, p=p, q=q, swap=variant, swap_threshold=3
        )
        result = run_hpl(cfg)
        assert result.passed
        x_ref = reference_solution(40, cfg.seed)
        assert np.allclose(result.x, x_ref, atol=1e-9)

    def test_swap_variant_does_not_change_factorization(self):
        from repro.hpl.api import run_hpl

        runs = {
            v: run_hpl(HPLConfig(n=32, nb=4, p=2, q=2, swap=v, swap_threshold=4))
            for v in SwapVariant
        }
        base = runs[SwapVariant.LONG].x
        for v, r in runs.items():
            assert np.array_equal(r.x, base), v


class TestPerfModel:
    def test_binexch_cheaper_for_narrow_sections(self):
        """The reason MIX exists: latency dominates narrow swaps."""
        from repro.machine.comm_model import CommModel, GridTopology
        from repro.machine.frontier import crusher_cluster

        cm = CommModel(crusher_cluster(2), GridTopology(8, 2, 4, 2))
        members = cm.topo.col_members(0)
        narrow = 8.0 * 512 * 4  # 4-column section
        wide = 8.0 * 512 * 50_000
        assert cm.binexch_allgather_seconds(members, narrow) < (
            cm.allgatherv_seconds(members, narrow)
        )
        assert cm.allgatherv_seconds(members, wide) < (
            cm.binexch_allgather_seconds(members, wide)
        )

    def test_single_member_free(self):
        from repro.machine.comm_model import CommModel, GridTopology
        from repro.machine.frontier import crusher_cluster

        cm = CommModel(crusher_cluster(1), GridTopology(1, 8, 1, 8))
        assert cm.binexch_allgather_seconds([(0, 0)], 100) == 0.0
