"""RS traffic cross-check: measured bytes == plan-derived formulas.

The row swap is the most intricate communication path in the benchmark
(net-permutation planning, per-rank U contributions, root packets).  This
test reruns the swap *planning* from the recorded pivots and computes,
rank by rank, exactly how many bytes the ring allgatherv and the scatterv
must have moved -- then checks the fabric's measured per-phase statistics
agree to the byte.
"""

from __future__ import annotations

import numpy as np

from repro.config import HPLConfig, Schedule
from repro.grid import ProcessGrid
from repro.grid.block_cyclic import num_local_before, numroc
from repro.hpl.driver import factorize
from repro.hpl.matrix import DistMatrix
from repro.hpl.rowswap import compute_swap_plan
from repro.simmpi import Fabric, run_spmd


def _expected_rs_bytes(cfg: HPLConfig, all_ipiv: list[np.ndarray]) -> float:
    """Total RS bytes sent across all ranks, from the swap plans alone."""
    n, nb, p, q = cfg.n, cfg.nb, cfg.p, cfg.q
    total = 0.0
    for k, ipiv in enumerate(all_ipiv):
        j0 = k * nb
        jb = min(nb, n - j0)
        plan = compute_swap_plan(ipiv, j0, jb)
        owners_u = (plan.u_src // nb) % p
        owners_out = (plan.out_dest // nb) % p
        block_owner = (j0 // nb) % p
        for col in range(q):
            nloc = numroc(n + 1, nb, col, q)
            lo = num_local_before(j0 + jb, nb, col, q)
            w = nloc - lo
            # ring allgatherv: rank r forwards blocks r, r-1, ..., r-p+2
            for r in range(p):
                for step in range(p - 1):
                    block = (r - step) % p
                    total += 8.0 * int((owners_u == block).sum()) * w
            # scatterv: root sends each non-root rank its packet
            for r in range(p):
                if r != block_owner:
                    total += 8.0 * int((owners_out == r).sum()) * w
    return total


def test_measured_rs_bytes_match_plans():
    cfg = HPLConfig(n=48, nb=8, p=3, q=2, schedule=Schedule.CLASSIC, depth=0)
    fabric = Fabric(cfg.nranks, watchdog=60.0)

    def main(comm):
        grid = ProcessGrid(comm, cfg.p, cfg.q)
        mat = DistMatrix(grid, cfg.n, cfg.nb, seed=cfg.seed)
        return [ipiv.copy() for ipiv in factorize(mat, cfg).ipiv]

    all_ipiv = run_spmd(cfg.nranks, main, fabric=fabric)[0]
    measured = sum(
        s.phases["RS"].bytes_sent for s in fabric.stats if "RS" in s.phases
    )
    assert measured == _expected_rs_bytes(cfg, all_ipiv)


def test_split_schedule_moves_same_rs_volume():
    """The split schedule reorders RS communication but must move exactly
    the same bytes as the classic schedule (same plans, same sections sum)."""

    def run(schedule):
        cfg = HPLConfig(
            n=48, nb=8, p=2, q=2, schedule=schedule,
            depth=0 if schedule is Schedule.CLASSIC else 1,
        )
        fabric = Fabric(cfg.nranks, watchdog=60.0)

        def main(comm):
            grid = ProcessGrid(comm, cfg.p, cfg.q)
            mat = DistMatrix(grid, cfg.n, cfg.nb, seed=cfg.seed)
            factorize(mat, cfg)

        run_spmd(cfg.nranks, main, fabric=fabric)
        return sum(
            s.phases["RS"].bytes_sent for s in fabric.stats if "RS" in s.phases
        )

    assert run(Schedule.CLASSIC) == run(Schedule.SPLIT_UPDATE) == run(
        Schedule.LOOKAHEAD
    )


def test_binexch_moves_more_bytes_than_ring():
    """Binary exchange trades bandwidth for latency: strictly more bytes
    on the wire than the spread-roll ring for p > 2."""
    from repro.config import SwapVariant

    def run(swap):
        cfg = HPLConfig(n=48, nb=8, p=4, q=1, swap=swap)
        fabric = Fabric(cfg.nranks, watchdog=60.0)

        def main(comm):
            grid = ProcessGrid(comm, cfg.p, cfg.q)
            mat = DistMatrix(grid, cfg.n, cfg.nb, seed=cfg.seed)
            factorize(mat, cfg)

        run_spmd(cfg.nranks, main, fabric=fabric)
        return sum(
            s.phases["RS"].bytes_sent for s in fabric.stats if "RS" in s.phases
        )

    assert run(SwapVariant.BINEXCH) > run(SwapVariant.LONG)
