"""Admission control, the 429 contract, healthz depths, wait deadlines.

Four claims pinned here:

* **Token bucket / controller units** -- refill math, burst caps,
  per-client isolation, idle eviction bounding memory, depth-cache TTL.
* **The 429 wire contract** -- past the watermark submits fail with
  ``overloaded`` + a ``Retry-After`` header while reads, cancels, and
  leases keep working; per-client buckets reject with ``rate_limited``;
  clients retry transparently and a storm never turns into a 500.
* **healthz queue depths under concurrent submits** -- each shard's
  figure is a consistent snapshot of that shard (documented on
  :meth:`ShardedStore.counts`), so depths are never negative, never
  double-count, and the merged total is monotone under a submit-only
  workload, ending exactly at the number submitted.
* **``wait()`` deadline clamp** -- the backoff sleep is clamped to the
  remaining budget, so a short timeout cannot overshoot by a full
  jittered backoff step (both the sync and asyncio clients).
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

import pytest

from repro.errors import (
    BackpressureError,
    OverloadedError,
    RateLimitedError,
)
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.http import (
    AsyncServiceClient,
    ServiceClient,
    ServiceHTTPServer,
    WaitTimeout,
)


def _probe(i, tag="t"):
    return {"behavior": "ok", "tag": f"{tag}{i}"}


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert bucket.take(now=0.0) == 0.0
        assert bucket.take(now=0.0) == 0.0
        assert bucket.take(now=0.0) == 0.0
        wait = bucket.take(now=0.0)
        assert wait == pytest.approx(0.1)
        # After the hinted wait, exactly one token is available again.
        assert bucket.take(now=0.11) == 0.0
        assert bucket.take(now=0.11) > 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.take(now=1000.0) == 0.0
        assert bucket.take(now=1000.0) == 0.0
        assert bucket.take(now=1000.0) > 0.0

    def test_refusal_spends_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=0.0)
        assert bucket.take(now=0.0) == 0.0
        w1 = bucket.take(now=0.0)
        w2 = bucket.take(now=0.0)
        assert w1 == pytest.approx(1.0)
        assert w2 == pytest.approx(1.0)

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
        assert bucket.take(now=0.0) == 0.0
        assert bucket.take(now=1e9) == float("inf")


class TestAdmissionController:
    def test_disabled_gates_admit_everything(self):
        ctl = AdmissionController()
        for i in range(1000):
            ctl.check_submit("c", lambda: 10**9)

    def test_watermark_rejects_with_retry_after(self):
        ctl = AdmissionController(max_queue_depth=5, depth_ttl=0.0,
                                  retry_after=2.5)
        ctl.check_submit("c", lambda: 4)
        with pytest.raises(OverloadedError) as err:
            ctl.check_submit("c", lambda: 5)
        assert err.value.retry_after == 2.5
        assert err.value.code == "overloaded"
        assert err.value.http_status == 429
        assert ctl.stats()["rejected_overloaded"] == 1

    def test_depth_cache_respects_ttl(self):
        reads = []

        def outstanding():
            reads.append(1)
            return 0

        ctl = AdmissionController(max_queue_depth=10, depth_ttl=60.0)
        for _ in range(50):
            ctl.check_submit("c", outstanding)
        assert len(reads) == 1  # one scan per TTL window, not per request

    def test_note_enqueued_advances_cached_depth(self):
        ctl = AdmissionController(max_queue_depth=5, depth_ttl=60.0)
        ctl.check_submit("c", lambda: 0)
        ctl.note_enqueued(5)  # cached figure now at the watermark
        with pytest.raises(OverloadedError):
            ctl.check_submit("c", lambda: 0)

    def test_per_client_buckets_are_independent(self):
        ctl = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        ctl.check_submit("a", lambda: 0)
        with pytest.raises(RateLimitedError) as err:
            ctl.check_submit("a", lambda: 0)
        assert err.value.code == "rate_limited"
        assert err.value.retry_after > 0
        ctl.check_submit("b", lambda: 0)  # other client unaffected
        assert ctl.stats()["rejected_rate_limited"] == 1

    def test_rate_check_runs_before_depth_scan(self):
        # A hammering client must not trigger depth reads.
        ctl = AdmissionController(max_queue_depth=10, rate_limit=1.0,
                                  rate_burst=1.0, depth_ttl=0.0)
        ctl.check_submit("a", lambda: 0)
        with pytest.raises(RateLimitedError):
            ctl.check_submit("a", lambda: (_ for _ in ()).throw(
                AssertionError("depth scanned for a rate-limited client")))

    def test_bucket_eviction_bounds_memory(self):
        from repro.service import admission

        ctl = AdmissionController(rate_limit=100.0)
        cap = admission._MAX_CLIENTS
        for i in range(cap + 50):
            ctl.check_submit(f"c{i}", lambda: 0)
        assert len(ctl._buckets) <= cap

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(rate_limit=-0.5)


@pytest.fixture()
def watermark_server(tmp_path):
    with ServiceHTTPServer(tmp_path / "svc", workers=0,
                           max_queue_depth=5) as srv:
        srv.admission.depth_ttl = 0.0  # exact watermark for the test
        yield srv


class TestOverloadedWire:
    def test_429_overloaded_with_retry_after_header(self, watermark_server):
        client = ServiceClient(watermark_server.url, retry_429=0)
        for i in range(5):
            client.submit("probe", _probe(i))
        with pytest.raises(OverloadedError) as err:
            client.submit("probe", _probe(99))
        assert err.value.retry_after >= 1.0  # header parsed back
        # Batch and sweep submits hit the same gate.
        with pytest.raises(OverloadedError):
            client.submit_many(
                [{"kind": "probe", "payload": _probe(100)}])
        with pytest.raises(OverloadedError):
            client.submit_sweep(
                {"kind": "probe", "axes": {"tag": [1, 2]},
                 "base": {"behavior": "ok"}}, batch=True)

    def test_reads_cancels_and_leases_never_gated(self, watermark_server):
        client = ServiceClient(watermark_server.url, retry_429=0)
        jid = client.submit("probe", _probe(0)).new[0]
        for i in range(1, 5):
            client.submit("probe", _probe(i))
        with pytest.raises(OverloadedError):
            client.submit("probe", _probe(99))
        # Observation and relief traffic still flows.
        assert client.healthz()["queue"]["PENDING"] == 5
        assert client.status().counts["PENDING"] == 5
        assert client.job(jid).state == "PENDING"
        lease, jobs = client.claim("w1", n=2)
        assert lease is not None and len(jobs) == 2
        assert client.cancel(jid) in (True, False)

    def test_draining_below_watermark_readmits(self, watermark_server):
        client = ServiceClient(watermark_server.url, retry_429=0)
        ids = [client.submit("probe", _probe(i)).new[0] for i in range(5)]
        with pytest.raises(OverloadedError):
            client.submit("probe", _probe(99))
        for jid in ids[:3]:
            client.cancel(jid)
        receipt = client.submit("probe", _probe(99))  # now admitted
        assert len(receipt.new) == 1

    def test_transparent_retry_succeeds_after_drain(self, watermark_server):
        client = ServiceClient(watermark_server.url, retry_429=0)
        ids = [client.submit("probe", _probe(i)).new[0] for i in range(5)]
        releaser = threading.Timer(
            0.5, lambda: [client.cancel(j) for j in ids])
        releaser.start()
        try:
            retrying = ServiceClient(watermark_server.url, retry_429=10,
                                     retry_429_cap=0.3)
            receipt = retrying.submit("probe", _probe(7))
            assert len(receipt.new) == 1  # retried through the 429s
        finally:
            releaser.join()

    def test_healthz_reports_admission_stats(self, watermark_server):
        client = ServiceClient(watermark_server.url, retry_429=0)
        for i in range(5):
            client.submit("probe", _probe(i))
        for _ in range(3):
            with pytest.raises(OverloadedError):
                client.submit("probe", _probe(99))
        stats = client.healthz()["admission"]
        assert stats["max_queue_depth"] == 5
        assert stats["rejected_overloaded"] == 3


class TestRateLimitedWire:
    def test_per_client_429_and_other_clients_unaffected(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=0,
                               rate_limit=0.5, rate_burst=2) as srv:
            fast = ServiceClient(srv.url, retry_429=0)
            fast.submit("probe", _probe(1))
            fast.submit("probe", _probe(2))
            with pytest.raises(RateLimitedError) as err:
                fast.submit("probe", _probe(3))
            assert err.value.retry_after >= 1.0
            # A different X-Client-Id has its own bucket.
            other = ServiceClient(srv.url, retry_429=0)
            assert other.client_id != fast.client_id
            assert len(other.submit("probe", _probe(4)).new) == 1
            # Reads are never rate limited.
            for _ in range(10):
                srv_stats = fast.healthz()
            assert srv_stats["admission"]["rate_limit"] == 0.5

    def test_storm_never_500s(self, tmp_path):
        """A storm well past both gates yields only 200s and 429s."""
        with ServiceHTTPServer(tmp_path / "svc", workers=0,
                               max_queue_depth=10, rate_limit=20.0,
                               rate_burst=5) as srv:
            codes: list[int] = []

            def slam(worker: int) -> None:
                client = ServiceClient(srv.url, retry_429=0,
                                       client_id=f"w{worker}")
                for i in range(40):
                    try:
                        client.submit("probe", _probe(i, tag=f"w{worker}-"))
                        codes.append(200)
                    except BackpressureError:
                        codes.append(429)

            threads = [threading.Thread(target=slam, args=(w,))
                       for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(codes) == 160
            assert codes.count(429) > 0  # the gates actually fired
            assert codes.count(200) + codes.count(429) == 160


class TestHealthzDepthSnapshots:
    """The /v1/healthz queue-depth semantics under concurrent submits."""

    NSHARDS = 3
    PER_THREAD = 25
    THREADS = 4

    def test_depths_never_negative_or_double_counted(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc",
                               shards=self.NSHARDS, workers=0) as srv:
            stop = threading.Event()
            observations: list[dict] = []
            failures: list[str] = []

            def poll() -> None:
                client = ServiceClient(srv.url)
                while not stop.is_set():
                    observations.append(client.healthz()["queue"])

            def submit(worker: int) -> None:
                client = ServiceClient(srv.url)
                try:
                    for i in range(self.PER_THREAD):
                        client.submit("probe", _probe(i, tag=f"w{worker}-"))
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"w{worker}: {exc}")

            poller = threading.Thread(target=poll)
            poller.start()
            submitters = [threading.Thread(target=submit, args=(w,))
                          for w in range(self.THREADS)]
            for t in submitters:
                t.start()
            for t in submitters:
                t.join()
            final = ServiceClient(srv.url).healthz()["queue"]
            stop.set()
            poller.join()

            assert not failures, failures
            total_jobs = self.PER_THREAD * self.THREADS
            # Submit-only workload: every observation is non-negative,
            # totals never exceed what was truly submitted (a job is
            # never double-counted), and the merged total is monotone
            # (per-shard reads are consistent; jobs never migrate).
            last_total = 0
            for obs in observations:
                assert all(n >= 0 for n in obs.values()), obs
                total = sum(obs.values())
                assert total <= total_jobs, obs
                assert total >= last_total, (
                    f"merged total went backwards: {last_total} ->"
                    f" {total}")
                last_total = total
            assert sum(final.values()) == total_jobs
            assert final["PENDING"] == total_jobs


class TestWaitDeadlineClamp:
    """A wait() timeout is honored even against a huge backoff step."""

    POLL_INITIAL = 2.0  # >> timeout: the unclamped bug sleeps this long
    TIMEOUT = 0.4

    def test_sync_wait_does_not_overshoot_deadline(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=0) as srv:
            client = ServiceClient(srv.url)
            jid = client.submit("probe", _probe(0)).new[0]  # never runs
            t0 = time.monotonic()
            with pytest.raises(WaitTimeout) as err:
                client.wait([jid], timeout=self.TIMEOUT,
                            poll_initial=self.POLL_INITIAL,
                            poll_max=8.0, jitter=0.25,
                            rng=random.Random(7))
            elapsed = time.monotonic() - t0
            assert err.value.outstanding == [jid]
            # Pre-fix this slept a full jittered 2 s step past the
            # 0.4 s deadline; clamped it ends within ~one poll of it.
            assert elapsed < 1.5, f"overshot the deadline: {elapsed:.2f}s"

    def test_async_wait_does_not_overshoot_deadline(self, tmp_path):
        with ServiceHTTPServer(tmp_path / "svc", workers=0) as srv:
            async def scenario() -> float:
                client = AsyncServiceClient(
                    srv.url, poll_initial=self.POLL_INITIAL,
                    poll_max=8.0, jitter=0.25, rng=random.Random(7))
                receipt = await client.submit("probe", _probe(0))
                t0 = time.monotonic()
                with pytest.raises(WaitTimeout):
                    await client.wait(receipt.new, timeout=self.TIMEOUT)
                return time.monotonic() - t0

            elapsed = asyncio.run(scenario())
            assert elapsed < 1.5, f"overshot the deadline: {elapsed:.2f}s"
