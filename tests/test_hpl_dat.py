"""HPL.dat parsing, config expansion, and the HPL-style output writer."""

from __future__ import annotations

import pathlib

import pytest

from repro.config import BcastVariant, HPLConfig, PFactVariant, Schedule, SwapVariant
from repro.errors import ConfigError
from repro.hpl.dat import HPLDat, encode_tv, parse_hpl_dat

EXAMPLE = pathlib.Path(__file__).parent.parent / "examples" / "HPL.dat"


@pytest.fixture
def example_text() -> str:
    return EXAMPLE.read_text()


class TestParsing:
    def test_example_file_parses(self, example_text):
        dat = parse_hpl_dat(example_text)
        assert dat.ns == [64, 96]
        assert dat.nbs == [8, 16]
        assert dat.grids == [(2, 2), (2, 3)]
        assert dat.row_major is True
        assert dat.threshold == 16.0
        assert dat.pfacts == [PFactVariant.RIGHT]
        assert dat.rfacts == [PFactVariant.RIGHT]
        assert dat.nbmins == [4]
        assert dat.ndivs == [2]
        assert dat.bcasts == [BcastVariant.ONE_RING_M]
        assert dat.depths == [1]
        assert dat.swap is SwapVariant.MIX
        assert dat.swap_threshold == 64
        assert dat.alignment == 8

    def test_all_variant_codes(self, example_text):
        text = example_text.replace(
            "1            # of panel fact\n2            PFACTs",
            "3            # of panel fact\n0 1 2        PFACTs",
        ).replace(
            "1            # of broadcast\n1            BCASTs",
            "5            # of broadcast\n0 2 3 4 5    BCASTs",
        )
        dat = parse_hpl_dat(text)
        assert dat.pfacts == [
            PFactVariant.LEFT, PFactVariant.CROUT, PFactVariant.RIGHT
        ]
        assert dat.bcasts == [
            BcastVariant.ONE_RING,
            BcastVariant.TWO_RING,
            BcastVariant.TWO_RING_M,
            BcastVariant.BLONG,
            BcastVariant.BLONG,
        ]

    def test_column_major_pmap(self, example_text):
        text = example_text.replace(
            "0            PMAP", "1            PMAP"
        )
        assert parse_hpl_dat(text).row_major is False

    def test_truncated_file_rejected(self, example_text):
        head = "\n".join(example_text.splitlines()[:10])
        with pytest.raises(ConfigError, match="truncated"):
            parse_hpl_dat(head)

    def test_too_short_header(self):
        with pytest.raises(ConfigError, match="too short"):
            parse_hpl_dat("just one line")

    def test_unknown_code_rejected(self, example_text):
        text = example_text.replace(
            "2            PFACTs", "7            PFACTs"
        )
        with pytest.raises(ConfigError, match="PFACT"):
            parse_hpl_dat(text)

    def test_count_mismatch_rejected(self, example_text):
        text = example_text.replace("64 96        Ns", "64           Ns")
        with pytest.raises(ConfigError):
            parse_hpl_dat(text)

    def test_missing_trailing_knobs_tolerated(self, example_text):
        lines = example_text.splitlines()
        dat = parse_hpl_dat("\n".join(lines[:-4]))
        assert dat.swap_threshold == 64


class TestConfigExpansion:
    def test_cross_product_size(self, example_text):
        dat = parse_hpl_dat(example_text)
        configs = list(dat.configs())
        assert len(configs) == 2 * 2 * 2  # Ns x NBs x grids

    def test_depth_zero_maps_to_classic(self):
        dat = HPLDat(depths=[0])
        cfg = next(dat.configs())
        assert cfg.schedule is Schedule.CLASSIC and cfg.depth == 0

    def test_depth_one_maps_to_split(self):
        dat = HPLDat(depths=[1])
        cfg = next(dat.configs())
        assert cfg.schedule is Schedule.SPLIT_UPDATE and cfg.depth == 1

    def test_overrides(self, example_text):
        dat = parse_hpl_dat(example_text)
        cfg = next(dat.configs(seed=7, fact_threads=2))
        assert cfg.seed == 7 and cfg.fact_threads == 2

    def test_every_expanded_config_is_valid_and_runs(self, example_text):
        from repro.hpl.api import run_hpl

        dat = parse_hpl_dat(example_text)
        cfg = next(dat.configs())
        assert run_hpl(cfg).passed


class TestTvEncoding:
    def test_encoding_fields(self):
        cfg = HPLConfig(
            n=64, nb=8, p=2, q=2, depth=1,
            bcast=BcastVariant.TWO_RING_M,
            rfact=PFactVariant.CROUT, ndiv=3,
            pfact=PFactVariant.LEFT, nbmin=8,
        )
        assert encode_tv(cfg) == "W13C3L8"

    def test_default_encoding(self):
        cfg = HPLConfig(n=64, nb=8, p=2, q=2)
        assert encode_tv(cfg) == "W11R2R16"


class TestCliDat:
    def test_dat_command_end_to_end(self, capsys, tmp_path, example_text):
        from repro.cli import main

        # shrink to a single fast config
        text = example_text.replace(
            "2            # of problems sizes (N)\n64 96        Ns",
            "1            # of problems sizes (N)\n32           Ns",
        ).replace(
            "2            # of NBs\n8 16         NBs",
            "1            # of NBs\n8            NBs",
        ).replace(
            "2            # of process grids (P x Q)\n2 2          Ps\n2 3          Qs",
            "1            # of process grids (P x Q)\n2            Ps\n2            Qs",
        )
        path = tmp_path / "HPL.dat"
        path.write_text(text)
        rc = main(["dat", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "End of Tests" in out
        assert "PASSED" in out
        assert "1 tests completed and passed" in out


class TestApiParity:
    def test_run_hpl_dat_function(self, tmp_path, example_text):
        from repro import run_hpl_dat

        path = tmp_path / "HPL.dat"
        path.write_text(example_text)
        results = run_hpl_dat(str(path), n=24, nb=4)
        # overrides replace n/nb in every expanded config; the cross
        # product size (2 Ns x 2 NBs x 2 grids) is preserved
        assert len(results) == 8
        assert all(r.passed for r in results)
        assert all(r.config.n == 24 and r.config.nb == 4 for r in results)
