"""Benchmark-level simulation: ledger, Fig. 7 regimes, Fig. 8 scaling,
Fig. 5 sweep, and the report formatters."""

from __future__ import annotations

import pytest

from repro.config import Schedule
from repro.errors import ConfigError
from repro.machine.frontier import crusher_cluster
from repro.perf import (
    PerfConfig,
    choose_grid,
    fact_sweep,
    iteration_costs,
    run_costs,
    simulate_run,
    weak_scaling,
)
from repro.perf.ledger import time_sharing_threads, _sizes
from repro.perf.scaling import node_local_grid, scaled_n, weak_scaling_efficiency


def _small_cfg(**kw) -> PerfConfig:
    base = dict(n=16384, nb=512, p=4, q=2, pl=4, ql=2)
    base.update(kw)
    return PerfConfig(**base)


CLUSTER = crusher_cluster(1)


class TestLedger:
    def test_time_sharing_formula(self):
        """Section III.B: T = 1 + Cbar/pl (paper's worked examples)."""
        assert time_sharing_threads(64, 4, 2) == 15
        assert time_sharing_threads(64, 2, 4) == 29
        assert time_sharing_threads(64, 1, 8) == 57
        assert time_sharing_threads(64, 8, 1) == 8

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ConfigError):
            time_sharing_threads(4, 4, 2)

    def test_section_widths_partition_trailing(self):
        cfg = _small_cfg()
        for k in range(cfg.nblocks - 1):
            sz = _sizes(cfg, k)
            from repro.grid.block_cyclic import num_local_before, numroc

            c_f = (k + 1) % cfg.q
            nloc = numroc(cfg.n + 1, cfg.nb, c_f, cfg.q)
            trailing = nloc - num_local_before((k + 1) * cfg.nb, cfg.nb, c_f, cfg.q)
            assert sz.w_la + sz.w_left + sz.w_right == trailing

    def test_split_mode_transitions_to_lookahead(self):
        cfg = _small_cfg()
        modes = [_sizes(cfg, k).mode for k in range(cfg.nblocks)]
        assert modes[0] == "split"
        assert modes[-2] == "lookahead"
        # one-way transition
        first_la = modes.index("lookahead")
        assert all(m == "lookahead" for m in modes[first_la:])

    def test_right_section_width_fixed_while_split(self):
        """n2 is constant per process column while the split is active (the
        paper's requirement); the two grid columns differ only by the RHS
        column's ownership."""
        cfg = _small_cfg()
        widths_by_col: dict[int, set[int]] = {}
        for k in range(cfg.nblocks):
            sz = _sizes(cfg, k)
            if sz.mode == "split":
                widths_by_col.setdefault(sz.c_f, set()).add(sz.w_right)
        assert widths_by_col
        for widths in widths_by_col.values():
            assert len(widths) == 1

    def test_costs_shrink_with_k(self):
        cfg = _small_cfg()
        c_early = iteration_costs(cfg, CLUSTER, 0)
        c_late = iteration_costs(cfg, CLUSTER, cfg.nblocks - 4)
        early_gpu = c_early.la.dgemm + c_early.left.dgemm + c_early.right.dgemm
        late_gpu = c_late.la.dgemm + c_late.left.dgemm + c_late.right.dgemm
        assert late_gpu < early_gpu / 4
        assert c_late.fact < c_early.fact

    def test_last_iteration_has_no_fact(self):
        cfg = _small_cfg()
        last = iteration_costs(cfg, CLUSTER, cfg.nblocks - 1)
        assert last.fact == 0.0 and last.lbcast == 0.0

    def test_preamble_present_for_overlapped_schedules(self):
        assert run_costs(_small_cfg(), CLUSTER)[0].k == -1
        classic = run_costs(_small_cfg(schedule=Schedule.CLASSIC), CLUSTER)
        assert classic[0].k == 0

    def test_invalid_node_tiling(self):
        with pytest.raises(ConfigError):
            PerfConfig(n=1024, nb=512, p=4, q=2, pl=3, ql=2)


class TestFig7:
    @pytest.fixture(scope="class")
    def report(self):
        cfg = PerfConfig(n=256_000, nb=512, p=4, q=2, pl=4, ql=2)
        return simulate_run(cfg, crusher_cluster(1))

    def test_two_regimes(self, report):
        """Early iterations are GPU-bound (time == GPU active); the tail is
        latency/communication bound -- the paper's central Fig. 7 claim."""
        iters = report.iterations
        assert all(it.hidden for it in iters[:100])
        assert not any(it.hidden for it in iters[-100:])

    def test_transition_near_half(self, report):
        """The paper sees the split update stop hiding around iter 250/500
        with the 50-50 split."""
        first_unhidden = next(it.k for it in report.iterations if not it.hidden)
        assert 200 <= first_unhidden <= 300

    def test_hidden_time_fraction_near_paper(self, report):
        assert 0.65 <= report.hidden_time_fraction <= 0.85  # paper: ~0.75

    def test_hidden_iteration_fraction_near_half(self, report):
        assert 0.40 <= report.hidden_iteration_fraction <= 0.60  # paper: ~0.5

    def test_single_node_score_near_paper(self, report):
        assert 140 <= report.score_tflops <= 170  # paper: 153

    def test_score_is_large_fraction_of_dgemm_ceiling(self, report):
        """Paper: 78 % of the 4 x 49 = 196 TFLOPS achievable limit."""
        assert 0.70 <= report.score_tflops / 196.0 <= 0.85

    def test_early_regime_rate(self, report):
        """Paper: ~175 TFLOPS (~90 % of the limit) while fully hidden."""
        early = report.early_regime_tflops()
        assert 165 <= early <= 196

    def test_tail_dominated_by_fact_and_comm(self, report):
        tail = report.iterations[-20:-1]
        for it in tail:
            assert it.fact + it.mpi + it.transfer > it.gpu_active

    def test_iteration_times_positive_and_decreasing_overall(self, report):
        times = [it.time for it in report.iterations]
        assert all(t > 0 for t in times)
        assert sum(times[-50:]) < sum(times[:50])


class TestScheduleComparison:
    def test_split_beats_lookahead_beats_classic_at_full_size(self):
        """At the HBM-filling problem size the paper targets, each
        optimization layer buys throughput."""
        scores = {}
        for sched in Schedule:
            cfg = PerfConfig(
                n=256_000, nb=512, p=4, q=2, pl=4, ql=2, schedule=sched
            )
            scores[sched] = simulate_run(cfg, CLUSTER).score_tflops
        assert scores[Schedule.SPLIT_UPDATE] > scores[Schedule.LOOKAHEAD]
        assert scores[Schedule.LOOKAHEAD] > scores[Schedule.CLASSIC]

    def test_small_problems_gain_less_from_split(self):
        """When the update cannot hide FACT anyway (small N), the split's
        extra phase structure buys little or nothing -- the reason the
        paper evaluates at HBM-filling N."""
        def gain(n):
            split = PerfConfig(n=n, nb=512, p=4, q=2, pl=4, ql=2)
            la = PerfConfig(
                n=n, nb=512, p=4, q=2, pl=4, ql=2, schedule=Schedule.LOOKAHEAD
            )
            return (
                simulate_run(split, CLUSTER).score_tflops
                / simulate_run(la, CLUSTER).score_tflops
            )

        assert gain(65_536) < gain(256_000)

    def test_fifty_fifty_split_near_optimal_on_node(self):
        """Paper: a 50-50 split works best on a single node."""
        def score(frac):
            cfg = PerfConfig(
                n=256_000, nb=512, p=4, q=2, pl=4, ql=2, split_fraction=frac
            )
            return simulate_run(cfg, CLUSTER).score_tflops

        s50 = score(0.5)
        assert s50 >= score(0.1) and s50 >= score(0.9)


class TestFig8:
    def test_grid_chooser(self):
        assert choose_grid(8) == (4, 2)
        assert choose_grid(16) == (4, 4)
        assert choose_grid(64) == (8, 8)
        assert choose_grid(1024) == (32, 32)
        assert choose_grid(512) == (32, 16)  # 2:1 when not square
        assert choose_grid(1) == (1, 1)

    def test_node_local_grid_maximizes_columns(self):
        assert node_local_grid(4, 4) == (2, 4)
        assert node_local_grid(8, 8) == (1, 8)
        assert node_local_grid(32, 32) == (1, 8)
        assert node_local_grid(4, 2) == (4, 2)

    def test_scaled_n(self):
        assert scaled_n(1, 256_000, 512) == 256_000
        assert scaled_n(4, 256_000, 512) == 512_000
        assert scaled_n(2, 256_000, 512) % 512 == 0

    def test_weak_scaling_shape(self):
        """Fig. 8: >90 % efficiency out to 128 nodes, ~17.75 PFLOPS."""
        points = weak_scaling([1, 4, 16, 128])
        effs = weak_scaling_efficiency(points)
        assert effs[0] == pytest.approx(1.0)
        assert all(e > 0.90 for e in effs)
        assert all(b.tflops > a.tflops for a, b in zip(points, points[1:]))
        final = points[-1]
        assert final.nnodes == 128
        assert 15_000 <= final.tflops <= 21_000  # paper: 17,750

    def test_efficiency_declines_with_scale(self):
        points = weak_scaling([1, 16, 128])
        effs = weak_scaling_efficiency(points)
        assert effs[2] <= effs[1] + 0.02


class TestFig5:
    def test_sweep_structure(self):
        curves = fact_sweep()
        assert [c.threads for c in curves] == [1, 2, 4, 8, 16, 32, 64]
        for c in curves:
            assert len(c.gflops) == len(c.m_values)
            assert all(g > 0 for g in c.gflops)

    def test_paper_shape_claims(self):
        """Multi-threading improves FACT considerably, and many cores help
        even at relatively small sizes (Fig. 5's stated takeaways)."""
        curves = {c.threads: c for c in fact_sweep()}
        big_m = -1
        assert curves[64].gflops[big_m] > 5 * curves[1].gflops[big_m]
        mid_m = curves[1].m_values.index(16 * 512)
        assert curves[16].gflops[mid_m] > 2 * curves[2].gflops[mid_m]

    def test_curves_rise_with_m_until_l3_spills(self):
        """Within L3 residence each curve rises with M; past the spill the
        bandwidth cap may dent high-thread curves, so only the resident
        prefix must be monotone."""
        from repro.machine.frontier import crusher_node

        l3_rows = int(crusher_node().cpu.l3_mb * 1e6 / (8 * 512))
        for c in fact_sweep():
            resident = [g for m, g in zip(c.m_values, c.gflops) if m <= l3_rows]
            assert resident == sorted(resident)
            assert c.gflops[-1] > c.gflops[0]  # overall rising trend


class TestReport:
    def test_formatters_produce_text(self):
        from repro.perf.report import (
            format_breakdown_table,
            format_fact_table,
            format_hpl_line,
            format_run_report,
            format_scaling_table,
        )

        cfg = PerfConfig(n=8192, nb=512, p=4, q=2, pl=4, ql=2)
        report = simulate_run(cfg, CLUSTER)
        assert "8192" in format_run_report(report)
        table = format_breakdown_table(report, stride=4)
        assert "fact_ms" in table and len(table.splitlines()) > 2
        line = format_hpl_line(1000, 512, 2, 2, 10.0, 1.5)
        assert "1000" in line and "512" in line
        points = weak_scaling([1, 2], n_single=16384)
        assert "nodes" in format_scaling_table(points)
        assert "T=64" in format_fact_table(fact_sweep())
