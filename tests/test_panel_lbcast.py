"""Panel pack/unpack and the LBCAST phase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BcastVariant
from repro.hpl.lbcast import broadcast_panel
from repro.hpl.panel import Panel

from .conftest import spmd


def _make_panel(rng, k=3, j0=12, jb=4, m2=10) -> Panel:
    return Panel(
        k=k,
        j0=j0,
        jb=jb,
        w=np.asfortranarray(rng.standard_normal((jb, jb))),
        ipiv=np.arange(j0, j0 + jb, dtype=np.int64) + 1,
        l2=np.asfortranarray(rng.standard_normal((m2, jb))),
    )


class TestPanelPacking:
    def test_roundtrip(self, rng):
        panel = _make_panel(rng)
        back = Panel.unpack(panel.pack())
        assert back.k == panel.k and back.j0 == panel.j0 and back.jb == panel.jb
        assert np.array_equal(back.w, panel.w)
        assert np.array_equal(back.ipiv, panel.ipiv)
        assert np.array_equal(back.l2, panel.l2)

    def test_empty_l2(self, rng):
        panel = _make_panel(rng, m2=0)
        back = Panel.unpack(panel.pack())
        assert back.l2.shape == (0, 4)

    def test_nbytes_matches_pack(self, rng):
        panel = _make_panel(rng)
        assert panel.pack().nbytes == panel.nbytes

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Panel(k=0, j0=0, jb=3, w=np.zeros((2, 2)),
                  ipiv=np.zeros(3, dtype=np.int64), l2=np.zeros((4, 3)))
        with pytest.raises(ValueError):
            Panel(k=0, j0=0, jb=2, w=np.zeros((2, 2)),
                  ipiv=np.zeros(3, dtype=np.int64), l2=np.zeros((4, 2)))
        with pytest.raises(ValueError):
            Panel(k=0, j0=0, jb=2, w=np.zeros((2, 2)),
                  ipiv=np.zeros(2, dtype=np.int64), l2=np.zeros((4, 3)))


class TestBroadcastPanel:
    @pytest.mark.parametrize("algo", list(BcastVariant))
    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_all_ranks_receive_equal_panel(self, algo, root, rng):
        src = _make_panel(rng)

        def main(comm):
            panel = src if comm.rank == root else None
            got = broadcast_panel(comm, panel, root, algo)
            return (got.k, got.j0, got.jb, got.w.copy(), got.ipiv.copy(),
                    got.l2.copy())

        for k, j0, jb, w, ipiv, l2 in spmd(3, main):
            assert (k, j0, jb) == (src.k, src.j0, src.jb)
            assert np.array_equal(w, src.w)
            assert np.array_equal(ipiv, src.ipiv)
            assert np.array_equal(l2, src.l2)

    def test_single_rank_row_is_noop(self, rng):
        src = _make_panel(rng)

        def main(comm):
            return broadcast_panel(comm, src, 0, BcastVariant.ONE_RING_M) is src

        assert spmd(1, main)[0]

    def test_traffic_attributed_to_lbcast_phase(self, rng):
        from repro.simmpi import Fabric, run_spmd

        src = _make_panel(rng)
        fabric = Fabric(2, watchdog=30.0)

        def main(comm):
            panel = src if comm.rank == 0 else None
            broadcast_panel(comm, panel, 0, BcastVariant.ONE_RING)
            return None

        run_spmd(2, main, fabric=fabric)
        assert fabric.stats[0].phases["LBCAST"].bytes_sent == src.nbytes
        assert fabric.stats[1].phases["LBCAST"].bytes_recv == src.nbytes
