"""Unit coverage for dependency-aware release (repro.service.dag).

Drives the store and resolver directly -- no worker processes, no HTTP
-- so every ordering is deterministic: parents are completed with
``mark_done``/``mark_failed`` and the terminal hook (installed by
:class:`Service`) must do the rest.  The audit log is the oracle for
exactly-once claims: ``released`` and ``parent_failed`` events are
written only by the guarded UPDATE's single winner.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CycleError,
    ServiceError,
    UnknownJobError,
    UnknownParentError,
)
from repro.service import (
    JobState,
    Service,
    Sweep,
    payload_key,
    shard_index,
)
from repro.service.dag import (
    has_placeholders,
    needs_parent_results,
    resolve_payload,
    toposort,
)
from repro.service.workers import WorkerOptions


def _events(service, name, job_id=None):
    return [e for e in service.store.events()
            if e["event"] == name and (job_id is None or e["job"] == job_id)]


def _submit(service, tag, depends_on=(), **payload):
    receipt = service.submit("probe",
                             {"behavior": "echo", "tag": tag, **payload},
                             depends_on=list(depends_on))
    return (receipt.new or receipt.cached or receipt.deduped)[0]


class TestBlockedSubmission:
    def test_child_starts_blocked_and_releases_on_parent_done(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 1)
        child = _submit(svc, 2, depends_on=[parent])
        assert svc.job(child).state is JobState.BLOCKED
        assert svc.job(child).depends_on == [parent]

        claimed = svc.store.claim("w0")
        assert claimed.id == parent
        svc.store.mark_done(parent, "rk")
        assert svc.job(child).state is JobState.PENDING
        assert len(_events(svc, "released", child)) == 1

    def test_child_of_done_parent_starts_pending(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 1)
        svc.store.claim("w0")
        svc.store.mark_done(parent, "rk")
        child = _submit(svc, 2, depends_on=[parent])
        assert svc.job(child).state is JobState.PENDING

    def test_child_of_failed_parent_is_cancelled_at_submit(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 1)
        svc.store.claim("w0")
        svc.store.mark_failed(parent, "boom")
        child = _submit(svc, 2, depends_on=[parent])
        assert svc.job(child).state is JobState.CANCELLED
        assert len(_events(svc, "parent_failed", child)) == 1

    def test_unknown_parent_rejected_before_enqueue(self, tmp_path):
        svc = Service(tmp_path / "svc")
        before = svc.store.counts()
        with pytest.raises(UnknownParentError):
            _submit(svc, 1, depends_on=["nope"])
        assert svc.store.counts() == before

    def test_blocked_jobs_are_not_claimable(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 1)
        child = _submit(svc, 2, depends_on=[parent])
        first = svc.store.claim("w0")
        assert first.id == parent
        # The only other job is BLOCKED: nothing to claim.
        assert svc.store.claim("w0") is None
        assert svc.job(child).state is JobState.BLOCKED

    def test_sweep_submission_carries_depends_on(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 1)
        receipt = svc.submit_sweep(
            Sweep(kind="probe", axes={"tag": [10, 11]},
                  base={"behavior": "echo"}),
            depends_on=[parent],
        )
        for jid in receipt.new:
            job = svc.job(jid)
            assert job.state is JobState.BLOCKED
            assert job.depends_on == [parent]


class TestDiamond:
    def test_diamond_child_waits_for_both_parents(self, tmp_path):
        svc = Service(tmp_path / "svc")
        root = _submit(svc, 0)
        left = _submit(svc, 1, depends_on=[root])
        right = _submit(svc, 2, depends_on=[root])
        join = _submit(svc, 3, depends_on=[left, right])

        svc.store.claim("w0")
        svc.store.mark_done(root, "rk")
        assert svc.job(left).state is JobState.PENDING
        assert svc.job(right).state is JobState.PENDING
        assert svc.job(join).state is JobState.BLOCKED

        svc.store.claim("w0")
        svc.store.mark_done(left, "rk")
        assert svc.job(join).state is JobState.BLOCKED  # right not DONE
        svc.store.claim("w0")
        svc.store.mark_done(right, "rk")
        assert svc.job(join).state is JobState.PENDING
        # Exactly one release despite two parent edges finishing.
        assert len(_events(svc, "released", join)) == 1


class TestFailurePropagation:
    def test_chain_cancelled_exactly_once_with_audit(self, tmp_path):
        svc = Service(tmp_path / "svc")
        a = _submit(svc, 0)
        b = _submit(svc, 1, depends_on=[a])
        c = _submit(svc, 2, depends_on=[b])
        other = _submit(svc, 3)  # unrelated branch

        svc.store.claim("w0")
        svc.store.mark_failed(a, "boom")
        assert svc.job(b).state is JobState.CANCELLED
        assert svc.job(c).state is JobState.CANCELLED
        assert svc.job(other).state is JobState.PENDING
        for jid in (b, c):
            events = _events(svc, "parent_failed", jid)
            assert len(events) == 1
            assert events[0]["parent"] == a

    def test_user_cancel_of_parent_propagates(self, tmp_path):
        svc = Service(tmp_path / "svc")
        a = _submit(svc, 0)
        b = _submit(svc, 1, depends_on=[a])
        flipped, view = svc.cancel_job(a)
        assert flipped and view.state == "CANCELLED"
        assert svc.job(b).state is JobState.CANCELLED

    def test_sibling_branch_survives_one_parents_failure(self, tmp_path):
        svc = Service(tmp_path / "svc")
        root = _submit(svc, 0)
        doomed = _submit(svc, 1, depends_on=[root])
        fine = _submit(svc, 2, depends_on=[root])
        leaf = _submit(svc, 3, depends_on=[fine])

        svc.store.claim("w0")
        svc.store.mark_done(root, "rk")
        svc.store.claim("w0")  # doomed
        svc.store.mark_failed(doomed, "boom")
        svc.store.claim("w0")  # fine
        svc.store.mark_done(fine, "rk")
        assert svc.job(leaf).state is JobState.PENDING


class TestRequeueInterplay:
    def test_requeued_parent_does_not_release_child(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 0)
        child = _submit(svc, 1, depends_on=[parent])
        lease, jobs = svc.store.claim_batch("w0", limit=1, ttl=30.0)
        assert jobs[0].id == parent
        # Attempt 1 of 3 fails: the parent requeues (PENDING), which is
        # not terminal -- the child must stay BLOCKED.
        svc.store.fail_leased(parent, lease.id, "transient")
        assert svc.job(parent).state is JobState.PENDING
        assert svc.job(child).state is JobState.BLOCKED
        assert not _events(svc, "released", child)

    def test_lease_expiry_requeue_does_not_release_child(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 0)
        child = _submit(svc, 1, depends_on=[parent])
        svc.store.claim_batch("w0", limit=1, ttl=30.0, now=1000.0)
        recovered = svc.store.expire_leases(now=2000.0)
        assert [j.id for j in recovered] == [parent]
        assert svc.job(parent).state is JobState.PENDING
        assert svc.job(child).state is JobState.BLOCKED

    def test_budget_exhausted_parent_cancels_child(self, tmp_path):
        svc = Service(tmp_path / "svc")
        receipt = svc.submit("probe", {"behavior": "echo", "tag": 0},
                             max_retries=0)
        parent = receipt.new[0]
        child = _submit(svc, 1, depends_on=[parent])
        lease, _ = svc.store.claim_batch("w0", limit=1, ttl=30.0)
        svc.store.fail_leased(parent, lease.id, "fatal")
        assert svc.job(parent).state is JobState.FAILED
        assert svc.job(child).state is JobState.CANCELLED


class TestIdempotentCancel:
    def test_cancel_terminal_job_returns_view_not_error(self, tmp_path):
        svc = Service(tmp_path / "svc")
        jid = _submit(svc, 0)
        svc.store.claim("w0")
        svc.store.mark_done(jid, "rk")
        flipped, view = svc.cancel_job(jid)
        assert flipped is False
        assert view.state == "DONE"
        # And again -- truly idempotent.
        assert svc.cancel_job(jid) == (False, view)

    def test_cancel_blocked_job_flips_it(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 0)
        child = _submit(svc, 1, depends_on=[parent])
        flipped, view = svc.cancel_job(child)
        assert flipped and view.state == "CANCELLED"

    def test_cancel_unknown_job_is_404(self, tmp_path):
        svc = Service(tmp_path / "svc")
        with pytest.raises(UnknownJobError):
            svc.cancel_job("nope")

    def test_sharded_cancel_is_idempotent(self, tmp_path):
        svc = Service(tmp_path / "svc", shards=3)
        jid = _submit(svc, 0)
        assert svc.store.cancel(jid) is True
        assert svc.store.cancel(jid) is False
        flipped, view = svc.cancel_job(jid)
        assert flipped is False and view.state == "CANCELLED"


class TestParentAwareKeys:
    def test_same_payload_different_parents_different_keys(self, tmp_path):
        svc = Service(tmp_path / "svc")
        p1 = _submit(svc, 1)
        p2 = _submit(svc, 2)
        c1 = _submit(svc, 9, depends_on=[p1])
        c2 = _submit(svc, 9, depends_on=[p2])
        assert c1 != c2
        assert svc.job(c1).key != svc.job(c2).key

    def test_parent_order_does_not_change_the_key(self):
        a = payload_key("probe", {"x": 1}, parents=("p1", "p2"))
        b = payload_key("probe", {"x": 1}, parents=("p2", "p1"))
        assert a == b

    def test_empty_parents_key_is_backward_compatible(self):
        assert payload_key("probe", {"x": 1}) == \
            payload_key("probe", {"x": 1}, parents=())


class TestCountsAndOutstanding:
    def test_blocked_counts_in_outstanding(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 0)
        _submit(svc, 1, depends_on=[parent])
        counts = svc.store.counts()
        assert counts["BLOCKED"] == 1 and counts["PENDING"] == 1
        assert svc.store.outstanding() == 2

    def test_sharded_outstanding_includes_blocked(self, tmp_path):
        svc = Service(tmp_path / "svc", shards=3)
        parent = _submit(svc, 0)
        _submit(svc, 1, depends_on=[parent])
        assert svc.store.outstanding() == 2
        assert svc.store.counts()["BLOCKED"] == 1


class TestRecoverySweep:
    def test_service_open_sweeps_orphaned_blocked_jobs(self, tmp_path):
        svc = Service(tmp_path / "svc")
        parent = _submit(svc, 0)
        child = _submit(svc, 1, depends_on=[parent])
        # Simulate a coordinator dying between the parent's terminal
        # commit and the child's release: complete the parent with the
        # hook disconnected.
        svc.store.on_terminal = None
        svc.store.claim("w0")
        svc.store.mark_done(parent, "rk")
        assert svc.job(child).state is JobState.BLOCKED

        reopened = Service(tmp_path / "svc")  # __init__ runs dag.sweep()
        assert reopened.job(child).state is JobState.PENDING
        assert len(_events(reopened, "released", child)) == 1

    def test_sweep_cascades_cancellations_to_fixpoint(self, tmp_path):
        svc = Service(tmp_path / "svc")
        a = _submit(svc, 0)
        b = _submit(svc, 1, depends_on=[a])
        c = _submit(svc, 2, depends_on=[b])
        svc.store.on_terminal = None
        svc.store.claim("w0")
        svc.store.mark_failed(a, "boom")

        released, cancelled = svc.dag.sweep()
        assert released == []
        assert set(cancelled) == {b, c}
        # A second sweep finds nothing left to do.
        assert svc.dag.sweep() == ([], [])


class TestCrossShardRelease:
    def test_parent_on_one_shard_releases_child_on_another(self, tmp_path):
        svc = Service(tmp_path / "svc", shards=3)
        parent = _submit(svc, 0)
        # Hunt for a child payload that lands on a different shard than
        # its parent -- the content key folds the parent id in, so a few
        # tags suffice.
        nshards = svc.nshards
        pshard = shard_index(svc.job(parent).key, nshards)
        child = None
        for tag in range(1, 50):
            key = payload_key("probe", {"behavior": "echo", "tag": tag},
                              parents=(parent,))
            if shard_index(key, nshards) != pshard:
                child = _submit(svc, tag, depends_on=[parent])
                break
        assert child is not None
        assert shard_index(svc.job(child).key, nshards) != pshard

        claimed = svc.store.claim("w0")
        assert claimed.id == parent
        svc.store.mark_done(parent, "rk")
        assert svc.job(child).state is JobState.PENDING
        assert len(_events(svc, "released", child)) == 1


class TestWorkersEndToEnd:
    def test_three_stage_chain_drains_with_winner_resolution(self, tmp_path):
        svc = Service(tmp_path / "svc")
        grid = svc.submit_sweep(Sweep(kind="probe", axes={"tag": [1, 5, 3]},
                                      base={"behavior": "echo"})).new
        pick = svc.submit("reduce", {"metric": "tag", "mode": "max"},
                          depends_on=grid).new[0]
        study = svc.submit("probe", {"behavior": "echo",
                                     "tag": {"$winner": "tag"}, "x": 7},
                           depends_on=[pick]).new[0]

        summary = svc.run_workers(WorkerOptions(n=2, drain=True))
        assert summary.counts["DONE"] == 5
        assert summary.counts["FAILED"] == 0
        reduced = svc.result_view(pick).result
        assert reduced["value"] == 5
        assert reduced["winner_payload"]["tag"] == 5
        assert svc.result_view(study).result == {"tag": 5, "x": 7}

    def test_reduce_with_min_mode(self, tmp_path):
        svc = Service(tmp_path / "svc")
        grid = svc.submit_sweep(Sweep(kind="probe", axes={"tag": [4, 2, 8]},
                                      base={"behavior": "echo"})).new
        pick = svc.submit("reduce", {"metric": "tag", "mode": "min"},
                          depends_on=grid).new[0]
        svc.run_workers(WorkerOptions(n=2, drain=True))
        assert svc.result_view(pick).result["value"] == 2

    def test_reduce_without_parents_fails_cleanly(self, tmp_path):
        svc = Service(tmp_path / "svc")
        jid = svc.submit("reduce", {"metric": "x"}, max_retries=0).new[0]
        svc.run_workers(WorkerOptions(n=1, drain=True))
        job = svc.job(jid)
        assert job.state is JobState.FAILED
        assert "parent" in job.error


class TestDagHelpers:
    def test_toposort_orders_parents_first(self):
        order = toposort(["c", "b", "a"], {"c": ["b"], "b": ["a"]})
        assert order == ["a", "b", "c"]

    def test_toposort_detects_cycles(self):
        with pytest.raises(CycleError):
            toposort(["a", "b"], {"a": ["b"], "b": ["a"]})
        with pytest.raises(CycleError):
            toposort(["a"], {"a": ["a"]})

    def test_toposort_ignores_foreign_parents(self):
        # Parent ids outside the node set (already-persisted jobs)
        # cannot complete a cycle and are skipped.
        assert toposort(["a"], {"a": ["external"]}) == ["a"]

    def test_placeholder_detection_and_resolution(self):
        payload = {"nb": {"$winner": "nb"}, "n": 4096,
                   "list": [{"$winner": "p"}]}
        assert has_placeholders(payload)
        assert not has_placeholders({"n": 1, "nested": {"a": [1, 2]}})
        results = {"p1": {"payload": {}, "result": {
            "winner_payload": {"nb": 256, "p": 4}}}}
        resolved = resolve_payload(payload, results)
        assert resolved == {"nb": 256, "n": 4096, "list": [4]}

    def test_resolve_missing_winner_field_raises(self):
        results = {"p1": {"payload": {}, "result": {
            "winner_payload": {"nb": 256}}}}
        with pytest.raises(ServiceError):
            resolve_payload({"x": {"$winner": "missing"}}, results)

    def test_needs_parent_results(self, tmp_path):
        svc = Service(tmp_path / "svc")
        plain = svc.job(_submit(svc, 0))
        assert not needs_parent_results(plain)
        parent = plain.id
        reduce_job = svc.job(svc.submit(
            "reduce", {"metric": "tag"}, depends_on=[parent]).new[0])
        assert needs_parent_results(reduce_job)
