"""Batch-submit chaos: SIGKILL the coordinator mid-``/v1/jobs/batch``.

The batch endpoint commits one transaction per shard, so a coordinator
killed partway through a large batch may leave *some* shards holding
their slice and others holding nothing -- that is the allowed failure
mode.  What must never happen, and what this suite proves with a real
``repro serve`` subprocess and a real SIGKILL:

* after restart, **no shard holds two active jobs for one content
  key** (a partially landed batch never manifests as duplicates), and
  every surviving row sits on the shard its key routes to;
* **resubmitting the identical batch dedups cleanly**: one round-trip
  later every point of the sweep is active exactly once, whether its
  first copy survived the crash or not -- which is why a client may
  blindly retry a batch whose connection died.
"""

from __future__ import annotations

import signal
import threading
import time

from repro.service import JobState, Service, shard_index
from repro.service.cache import payload_key
from repro.service.http import ServiceClient

from .test_shard_chaos import _start_serve, _stop

NSHARDS = 3
NJOBS = 2000


def _batch():
    return [{"kind": "sim",
             "payload": {"n": 256 * (i + 1), "nb": 64, "p": 2, "q": 2}}
            for i in range(NJOBS)]


class TestSigkilledCoordinatorMidBatch:
    def test_partial_batch_never_duplicates_and_resubmit_dedups(
            self, tmp_path):
        submissions = _batch()
        proc, url = _start_serve(tmp_path / "svc")
        outcome: dict = {}

        def submit_batch() -> None:
            try:
                client = ServiceClient(url, timeout=60.0)
                outcome["receipts"] = client.submit_many(submissions)
            except Exception as exc:  # noqa: BLE001 - the point
                outcome["error"] = exc

        try:
            thread = threading.Thread(target=submit_batch)
            thread.start()
            # Let the request reach the per-shard insert loop, then
            # yank the coordinator out from under it.
            time.sleep(0.15)
            proc.kill()
            proc.wait(timeout=30)
            thread.join(timeout=120)
            assert not thread.is_alive(), "batch submit never returned"
        finally:
            _stop(proc)

        # Offline audit of whatever survived: per-shard routing holds
        # and no key is active twice, no matter where the kill landed.
        expected_keys = {payload_key("sim", s["payload"])
                         for s in submissions}
        service = Service(tmp_path / "svc")
        assert service.nshards == NSHARDS
        survivors = self._active_by_key(service)
        assert set(survivors) <= expected_keys
        assert {k: v for k, v in survivors.items() if len(v) > 1} == {}
        service.store.close()

        # A fresh coordinator over the same shards accepts a blind
        # retry of the identical batch in one round-trip.
        proc2, url2 = _start_serve(tmp_path / "svc")
        try:
            client2 = ServiceClient(url2, timeout=120.0)
            receipts = client2.submit_many(submissions)
        finally:
            proc2.send_signal(signal.SIGINT)
            proc2.communicate(timeout=30)

        assert len(receipts) == NJOBS
        new = sum(len(r.new) for r in receipts)
        deduped = sum(len(r.deduped) for r in receipts)
        assert new + deduped == NJOBS  # every point exactly once
        assert deduped == len(survivors)  # survivors dedup, gaps refill

        service = Service(tmp_path / "svc")
        active = self._active_by_key(service)
        assert set(active) == expected_keys
        assert {k: v for k, v in active.items() if len(v) > 1} == {}
        service.store.close()

    @staticmethod
    def _active_by_key(service) -> dict[str, list[str]]:
        active: dict[str, list[str]] = {}
        for i, shard in enumerate(service.store.shards):
            for job in shard.list():
                assert shard_index(job.key, NSHARDS) == i, job.id
                if job.state in (JobState.BLOCKED, JobState.PENDING,
                                 JobState.RUNNING):
                    active.setdefault(job.key, []).append(job.id)
        return active
